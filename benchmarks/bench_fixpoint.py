"""EXP-6 (paper section 3.2): fixpoint query evaluation strategies.

Regenerates the classical comparison the paper's citations ([2], [9])
revolve around: naive vs seminaive least-fixpoint evaluation, across graph
families — where seminaive wins and by how much should match the
literature's shape (linear vs quadratic in rounds).
"""

import pytest

from repro import fixpoint, growing_iteration, semi_naive


def chain(n):
    return {i: ([i + 1] if i + 1 < n else []) for i in range(n)}


def binary_tree(depth):
    edges = {}
    total = 2 ** (depth + 1) - 1
    for i in range(total):
        kids = [k for k in (2 * i + 1, 2 * i + 2) if k < total]
        edges[i] = kids
    return edges


def dense(n, out_degree=8):
    return {i: [(i * 7 + j) % n for j in range(out_degree)]
            for i in range(n)}


GRAPHS = {
    "chain200": chain(200),
    "tree_depth10": binary_tree(10),
    "dense500": dense(500),
}


class TestStrategies:
    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_semi_naive(self, benchmark, name):
        edges = GRAPHS[name]
        result = benchmark(lambda: semi_naive([0], lambda x: edges[x]))
        assert len(result) == len(edges)

    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_naive(self, benchmark, name):
        edges = GRAPHS[name]

        def naive():
            return fixpoint([0], lambda s: [t for x in s.snapshot()
                                            for t in edges[x]])

        result = benchmark(naive)
        assert len(result) == len(edges)

    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_growing_iteration(self, benchmark, name):
        """The paper's surface idiom; should track semi-naive closely."""
        edges = GRAPHS[name]

        def visit(x, working):
            for y in edges[x]:
                working.insert(y)

        result = benchmark(lambda: growing_iteration([0], visit))
        assert len(result) == len(edges)


class TestPersistentFixpoint:
    def test_parts_explosion_on_disk(self, benchmark, db):
        """The closure over real persistent objects (BOM of ~120 parts)."""
        from repro import OdeObject, SetField, StringField

        class FxPart(OdeObject):
            name = StringField(default="")
            uses = SetField("FxPart")

        db.create(FxPart, exist_ok=True)
        parts = [db.pnew(FxPart, name="p%d" % i) for i in range(120)]
        with db.transaction():
            for i, part in enumerate(parts[:-2]):
                part.uses.insert(parts[i + 1].oid)
                part.uses.insert(parts[i + 2].oid)
                part.uses = part.uses

        root = parts[0].oid
        result = benchmark(
            lambda: semi_naive([root], lambda r: db.deref(r).uses))
        assert len(result) == 120
