"""EXP-2/EXP-5 (paper sections 2.5, 3.1.1): cluster scans and hierarchies.

Measures type-extent scan throughput against extent size, and the cost of
the deep (``person*``) form against the shallow one, reproducing the shape
of the income-averaging program.
"""

import pytest

from conftest import (BenchFaculty, BenchItem, BenchPerson, BenchStudent,
                      populate_items)


@pytest.fixture
def hierarchy_db(db):
    db.create(BenchPerson, exist_ok=True)
    db.create(BenchStudent, exist_ok=True)
    db.create(BenchFaculty, exist_ok=True)
    with db.transaction():
        for i in range(300):
            db.pnew(BenchPerson, name="p%d" % i)
        for i in range(150):
            db.pnew(BenchStudent, name="s%d" % i)
        for i in range(50):
            db.pnew(BenchFaculty, name="f%d" % i)
    return db


class TestScanScaling:
    @pytest.mark.parametrize("n", [100, 500, 2000])
    def test_scan(self, benchmark, db, n):
        populate_items(db, n)
        handle = db.cluster(BenchItem)
        result = benchmark(lambda: sum(1 for _ in handle))
        assert result == n

    @pytest.mark.parametrize("n", [100, 500, 2000])
    def test_scan_cold_cache(self, benchmark, db, n):
        populate_items(db, n)
        handle = db.cluster(BenchItem)

        def cold_scan():
            db._cache.clear()
            return sum(1 for _ in handle)

        assert benchmark(cold_scan) == n


class TestHierarchy:
    def test_shallow_extent(self, benchmark, hierarchy_db):
        handle = hierarchy_db.cluster(BenchPerson)
        assert benchmark(lambda: sum(1 for _ in handle)) == 300

    def test_deep_extent(self, benchmark, hierarchy_db):
        handle = hierarchy_db.cluster(BenchPerson)
        assert benchmark(lambda: sum(1 for _ in handle.deep())) == 500

    def test_income_program(self, benchmark, hierarchy_db):
        """The 3.1.1 program over the whole hierarchy."""
        handle = hierarchy_db.cluster(BenchPerson)

        def incomes():
            total = 0.0
            n = 0
            for p in handle.deep():
                total += p.income()
                n += 1
            return total / n

        result = benchmark(incomes)
        assert result == pytest.approx(
            (300 * 100.0 + 150 * 40.0 + 50 * 200.0) / 500)

    def test_is_type_narrowing(self, benchmark, hierarchy_db):
        handle = hierarchy_db.cluster(BenchPerson)

        def count_students():
            return sum(1 for p in handle.deep()
                       if isinstance(p, BenchStudent))

        assert benchmark(count_students) == 150
