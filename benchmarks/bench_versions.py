"""EXP-7 (paper section 4): versioning costs.

Measures newversion cost as chains grow, generic vs specific dereference,
and chain navigation — the operations the paper's versioning macros map
onto.
"""

import pytest

from repro import (FloatField, OdeObject, StringField, newversion, versions)


class VDoc(OdeObject):
    title = StringField(default="")
    body = StringField(default="")
    rev = FloatField(default=0.0)


@pytest.fixture
def vdb(db):
    db.create(VDoc, exist_ok=True)
    return db


class TestVersionCreation:
    def test_newversion(self, benchmark, vdb):
        doc = vdb.pnew(VDoc, title="t", body="b" * 200)
        benchmark(lambda: newversion(doc))

    @pytest.mark.parametrize("chain_length", [1, 16, 64])
    def test_newversion_vs_chain_length(self, benchmark, vdb, chain_length):
        doc = vdb.pnew(VDoc, title="t", body="b" * 200)
        for _ in range(chain_length - 1):
            newversion(doc)
        benchmark(lambda: newversion(doc))


class TestDereference:
    @pytest.fixture
    def doc_with_history(self, vdb):
        doc = vdb.pnew(VDoc, title="t", body="x" * 100)
        for i in range(20):
            newversion(doc)
            doc.rev = float(i)
        with vdb.transaction():
            pass
        return vdb, doc

    def test_deref_generic_cached(self, benchmark, doc_with_history):
        vdb, doc = doc_with_history
        oid = doc.oid
        benchmark(lambda: vdb.deref(oid).rev)

    def test_deref_generic_cold(self, benchmark, doc_with_history):
        vdb, doc = doc_with_history
        oid = doc.oid

        def cold():
            vdb._cache.clear()
            return vdb.deref(oid).rev

        benchmark(cold)

    def test_deref_specific_old_version(self, benchmark, doc_with_history):
        vdb, doc = doc_with_history
        pinned = versions(doc)[2]

        def cold_pin():
            vdb._vcache.clear()
            return vdb.deref(pinned).rev

        benchmark(cold_pin)


class TestNavigation:
    def test_walk_chain(self, benchmark, vdb):
        doc = vdb.pnew(VDoc, title="t")
        for _ in range(40):
            newversion(doc)

        def walk():
            n = 0
            cursor = vdb.vlast(doc)
            while cursor is not None:
                n += 1
                cursor = vdb.vprev(cursor)
            return n

        assert benchmark(walk) == 41

    def test_versions_listing(self, benchmark, vdb):
        doc = vdb.pnew(VDoc, title="t")
        for _ in range(40):
            newversion(doc)
        assert len(benchmark(lambda: versions(doc))) == 41
