"""Observability overhead guards (PR 4).

The instrumentation contract is that metrics and tracing cost nothing
measurable when tracing is off: counters on hot paths are the same plain
int bumps that existed before (sampled lazily at snapshot time), and the
traced query paths are only entered behind a per-query ``trace()`` flag.

Two guards enforce it:

* ``test_trace_off_within_2pct`` — iterating a query built with
  ``.trace(False)`` must stay within 2% of the identical query that
  never touched the tracing API (min-of-N to shed scheduler noise).
* ``test_traced_forall`` — records the *traced* cost so BENCH diffs
  show what turning tracing on actually buys/costs.
"""

import timeit

import pytest

from conftest import BenchItem, populate_items

from repro import A, forall

N = 5000


@pytest.fixture
def obs_db(db):
    return populate_items(db, N)


def test_trace_off_within_2pct(obs_db):
    handle = obs_db.cluster(BenchItem)

    def untouched():
        return forall(handle).suchthat(A.price < 50.0).count()

    def traced_off():
        return forall(handle).suchthat(A.price < 50.0).trace(False).count()

    # Both sides must take the compiled path: trace(False) is not
    # tracing, so it must not disqualify the plan from codegen — the 2%
    # gate below then holds with the code generator on, not just for
    # the old interpreted pipeline.
    assert "execution: compiled" in (
        forall(handle).suchthat(A.price < 50.0).explain())
    assert "execution: compiled" in (
        forall(handle).suchthat(A.price < 50.0).trace(False).explain())
    assert untouched() == traced_off()  # warm caches, same answer
    base = min(timeit.repeat(untouched, number=3, repeat=7))
    off = min(timeit.repeat(traced_off, number=3, repeat=7))
    # 2% tolerance plus a 200us absolute floor: at this scale a single
    # page fault is bigger than the allowed relative slack.
    assert off <= base * 1.02 + 2e-4, (
        "trace(False) forall %.3fms vs untouched %.3fms (> 2%% overhead)"
        % (off * 1e3, base * 1e3))


def test_traced_forall(benchmark, obs_db):
    handle = obs_db.cluster(BenchItem)

    def traced():
        return forall(handle).suchthat(A.price < 50.0).trace().count()

    result = benchmark(traced)
    assert result == N // 2


def test_untraced_forall(benchmark, obs_db):
    handle = obs_db.cluster(BenchItem)
    q = forall(handle).suchthat(A.price < 50.0)
    result = benchmark(q.count)
    assert result == N // 2


def test_trace_empty_cluster_no_div_zero(db):
    """Per-row averages over an empty cluster must not divide by zero."""
    db.create(BenchItem, exist_ok=True)
    q = db.forall(BenchItem, trace=True).suchthat(A.price < 50.0)
    assert list(q) == []
    text = q.explain(analyze=True)
    assert "rows=0" in text
