"""EXP-1 (paper sections 2.1-2.4): persistence mechanics.

Regenerates the implied comparison of the paper's central promise — the
same code manipulates volatile and persistent objects — by measuring what
persistence costs: object creation, cached reads, cold faults, updates.
"""

import pytest

from conftest import BenchItem, BenchSupplier, populate_items

from repro import Database, Oid


class TestCreation:
    def test_volatile_create(self, benchmark):
        benchmark(lambda: [BenchItem(name="x", price=1.0, qty=1)
                           for _ in range(100)])

    def test_pnew_autocommit(self, benchmark, db):
        db.create(BenchSupplier, exist_ok=True)
        db.create(BenchItem, exist_ok=True)

        def create_one():
            db.pnew(BenchItem, name="x", price=1.0, qty=1)

        benchmark(create_one)

    def test_pnew_batched_in_txn(self, benchmark, db):
        db.create(BenchSupplier, exist_ok=True)
        db.create(BenchItem, exist_ok=True)

        def create_batch():
            with db.transaction():
                for _ in range(100):
                    db.pnew(BenchItem, name="x", price=1.0, qty=1)

        benchmark(create_batch)

    def test_pnew_group_commit(self, benchmark, tmp_path):
        """Same autocommit stream as test_pnew_autocommit, but the WAL
        batches fsyncs across commits (durability="group")."""
        db = Database(str(tmp_path / "grp.odb"), durability="group")
        db.create(BenchItem)

        def create_one():
            db.pnew(BenchItem, name="x", price=1.0, qty=1)

        benchmark(create_one)
        db.close()


class TestReads:
    def test_deref_cached(self, benchmark, db):
        populate_items(db, 500)
        oid = Oid("BenchItem", 250)
        db.deref(oid)  # warm

        benchmark(lambda: db.deref(oid).qty)

    def test_deref_cold_fault(self, benchmark, db):
        populate_items(db, 500)
        oid = Oid("BenchItem", 250)

        def fault():
            db._cache.clear()
            return db.deref(oid).qty

        benchmark(fault)

    def test_volatile_attribute_read(self, benchmark):
        item = BenchItem(name="x", qty=5)
        benchmark(lambda: item.qty)


class TestUpdates:
    def test_update_commit_single(self, benchmark, db):
        populate_items(db, 100)
        item = db.deref(Oid("BenchItem", 50))

        def update():
            with db.transaction():
                item.qty += 1

        benchmark(update)

    def test_update_commit_batch100(self, benchmark, db):
        populate_items(db, 200)
        items = list(db.cluster(BenchItem))[:100]

        def update_all():
            with db.transaction():
                for item in items:
                    item.qty += 1

        benchmark(update_all)

    def test_volatile_update(self, benchmark):
        item = BenchItem(qty=0)

        def bump():
            item.qty += 1

        benchmark(bump)
