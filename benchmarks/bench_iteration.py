"""EXP-4 (paper section 3.1): forall / suchthat / by and the optimizer.

Regenerates the paper's implicit claim that suchthat/by clauses "can be
used to advantage in query optimization": the same queries are measured
as full scans and as index plans (hash equality, B+tree range), across
selectivities, plus the join forms.
"""

import pytest

from conftest import BenchItem, populate_items

from repro import A, V, forall

N = 2000


@pytest.fixture
def plain_db(db):
    return populate_items(db, N)


@pytest.fixture
def indexed_db(db):
    return populate_items(db, N, with_indexes=[("category", "hash"),
                                               ("price", "btree")])


class TestSelection:
    def test_full_scan_eq_10pct(self, benchmark, plain_db):
        q = forall(plain_db.cluster(BenchItem)).suchthat(A.category == 3)
        assert "full scan" in q.explain()
        result = benchmark(q.count)
        assert result == N // 10

    def test_indexed_eq_10pct(self, benchmark, indexed_db):
        q = forall(indexed_db.cluster(BenchItem)).suchthat(A.category == 3)
        assert "eq-lookup" in q.explain()
        result = benchmark(q.count)
        assert result == N // 10

    def test_full_scan_range_5pct(self, benchmark, plain_db):
        q = forall(plain_db.cluster(BenchItem)).suchthat(
            (A.price >= 10.0) & (A.price < 15.0))
        result = benchmark(q.count)
        assert result == N // 20

    def test_indexed_range_5pct(self, benchmark, indexed_db):
        q = forall(indexed_db.cluster(BenchItem)).suchthat(
            (A.price >= 10.0) & (A.price < 15.0))
        assert "range-scan" in q.explain()
        result = benchmark(q.count)
        assert result == N // 20

    def test_indexed_point_lookup(self, benchmark, indexed_db):
        q = forall(indexed_db.cluster(BenchItem)).suchthat(A.price == 42.0)
        result = benchmark(q.count)
        assert result == N // 100

    def test_full_scan_point_lookup(self, benchmark, plain_db):
        q = forall(plain_db.cluster(BenchItem)).suchthat(A.price == 42.0)
        result = benchmark(q.count)
        assert result == N // 100


class TestOrdering:
    def test_by_sort(self, benchmark, plain_db):
        q = forall(plain_db.cluster(BenchItem)).suchthat(
            A.category == 3).by(A.name)
        benchmark(lambda: q.to_list())

    def test_unordered(self, benchmark, plain_db):
        q = forall(plain_db.cluster(BenchItem)).suchthat(A.category == 3)
        benchmark(lambda: q.to_list())


class TestJoin:
    def test_nested_loop_join_100x100(self, benchmark, db):
        populate_items(db, 100)
        items = db.cluster(BenchItem)
        q = forall(items, items).suchthat(
            lambda a, b: a.category == b.category and a.qty < b.qty)
        benchmark(q.count)

    def test_hash_probe_join_emulation(self, benchmark, db):
        """What an index turns the join into: probe per outer row."""
        populate_items(db, 100, with_indexes=[("category", "hash")])
        items = db.cluster(BenchItem)

        def probe_join():
            total = 0
            for a in items:
                matches = forall(items).suchthat(
                    (A.category == a.category) & (A.qty > a.qty))
                total += matches.count()
            return total

        benchmark(probe_join)


class TestEquijoin:
    """Hash equijoin vs nested loop — the section-1 'join queries' answer."""

    @pytest.fixture
    def two_tables(self, db):
        populate_items(db, 400)
        return db

    def test_nested_loop_equijoin(self, benchmark, two_tables):
        items = two_tables.cluster(BenchItem)
        q = forall(items, items).suchthat(
            lambda a, b: a.category == b.category)
        result = benchmark(q.count)
        assert result == 10 * 40 * 40

    def test_hash_equijoin(self, benchmark, two_tables):
        items = two_tables.cluster(BenchItem)
        q = forall(items, items).join_on(A.category, A.category)
        result = benchmark(q.count)
        assert result == 10 * 40 * 40

    def test_fused_hash_equijoin(self, benchmark, two_tables):
        """The optimizer extracts the V[0]==V[1] conjunct itself — no
        explicit join_on — and runs the same hash join."""
        items = two_tables.cluster(BenchItem)
        q = forall(items, items).suchthat(V[0].category == V[1].category)
        assert "fused hash join" in q.explain()
        result = benchmark(q.count)
        assert result == 10 * 40 * 40


class TestCompositeIndex:
    """Composite (vendor, price) index vs the alternatives."""

    N = 2000

    @pytest.fixture
    def composite_db(self, db):
        populate_items(db, self.N,
                       with_indexes=[(("category", "price"), "btree")])
        return db

    def test_prefix_plus_range_via_composite(self, benchmark, composite_db):
        q = forall(composite_db.cluster(BenchItem)).suchthat(
            (A.category == 3) & (A.price >= 10.0) & (A.price < 20.0))
        assert "composite" in q.explain()
        result = benchmark(q.count)
        assert result > 0

    def test_same_query_full_scan(self, benchmark, db):
        populate_items(db, self.N)
        q = forall(db.cluster(BenchItem)).suchthat(
            (A.category == 3) & (A.price >= 10.0) & (A.price < 20.0))
        assert "full scan" in q.explain()
        benchmark(q.count)

    def test_ordered_by_index_no_sort(self, benchmark, db):
        populate_items(db, self.N, with_indexes=[("price", "btree")])
        q = forall(db.cluster(BenchItem)).suchthat(
            (A.price >= 10.0) & (A.price < 30.0)).by(A.price)
        benchmark(lambda: q.to_list())
