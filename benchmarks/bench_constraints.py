"""EXP-8 (paper section 5): constraint checking overhead.

Measures the cost the paper's design imposes: constraints are evaluated
at the end of every public member function and at commit, so the
per-update overhead scales with the number of constraints on the class.
"""

import pytest

from repro import IntField, OdeObject, constraint


def make_class(n_constraints):
    """A counter class with *n_constraints* trivial constraints."""
    namespace = {"value": IntField(default=0)}

    def bump(self):
        self.value += 1
    namespace["bump"] = bump

    for i in range(n_constraints):
        def check(self, _i=i):
            return self.value >= -1 - _i
        check.__name__ = "c%d" % i
        check._is_ode_constraint = True
        namespace["c%d" % i] = check

    from repro.core.objects import OdeMeta
    return OdeMeta("Constrained%d" % n_constraints, (OdeObject,), namespace)


class TestConstraintOverhead:
    @pytest.mark.parametrize("n_constraints", [0, 1, 4, 16])
    def test_volatile_method_call(self, benchmark, n_constraints):
        cls = make_class(n_constraints)
        obj = cls()
        benchmark(obj.bump)

    @pytest.mark.parametrize("n_constraints", [0, 4, 16])
    def test_commit_with_constraints(self, benchmark, db, n_constraints):
        cls = make_class(n_constraints)
        db.create(cls, exist_ok=True)
        obj = db.pnew(cls)

        def txn_update():
            with db.transaction():
                obj.bump()

        benchmark(txn_update)

    def test_violation_and_rollback(self, benchmark, db):
        class Bounded(OdeObject):
            value = IntField(default=0)

            def set_to(self, v):
                self.value = v

            @constraint
            def small(self):
                return self.value < 100

        db.create(Bounded, exist_ok=True)
        obj = db.pnew(Bounded)

        def violate():
            from repro.errors import ConstraintViolation
            try:
                with db.transaction():
                    obj.set_to(500)
            except ConstraintViolation:
                pass

        benchmark(violate)
