"""EXP-9 (paper section 6): trigger machinery costs.

Measures what an active database pays: per-commit condition evaluation as
the number of live activations grows, firing throughput (weak-coupled
action transactions), and timed-trigger clock advances.
"""

import pytest

from repro import IntField, OdeObject, Trigger

sink = []


class Sensor(OdeObject):
    reading = IntField(default=0)

    def record(self, v):
        self.reading = v

    alert = Trigger(
        condition=lambda self, threshold: self.reading > threshold,
        action=lambda self, threshold: sink.append(threshold))

    monitor = Trigger(
        condition=lambda self: self.reading > 10 ** 9,  # never true
        action=lambda self: sink.append(None),
        perpetual=True)

    deadline = Trigger(
        condition=lambda self: self.reading > 10 ** 9,
        action=lambda self: sink.append("hit"),
        within=3600.0,
        timeout_action=lambda self: sink.append("late"))


@pytest.fixture(autouse=True)
def clear_sink():
    sink.clear()


class TestEvaluationOverhead:
    @pytest.mark.parametrize("n_activations", [0, 10, 100])
    def test_commit_with_idle_activations(self, benchmark, db,
                                          n_activations):
        """Cost of a commit that fires nothing, vs live activation count."""
        db.create(Sensor, exist_ok=True)
        sensors = [db.pnew(Sensor) for _ in range(max(n_activations, 1))]
        for s in sensors[:n_activations]:
            s.monitor()

        target = sensors[0]

        def commit():
            with db.transaction():
                target.record(5)

        benchmark(commit)


class TestFiring:
    def test_fire_one_action(self, benchmark, db):
        db.create(Sensor, exist_ok=True)
        s = db.pnew(Sensor)

        def fire():
            s.alert(10)  # activation (condition false now: reading 0)
            with db.transaction():
                s.record(100)   # condition true: fires, runs action txn
            with db.transaction():
                s.record(0)

        benchmark(fire)

    def test_fire_ten_actions(self, benchmark, db):
        db.create(Sensor, exist_ok=True)
        sensors = [db.pnew(Sensor) for _ in range(10)]

        def fire_all():
            for s in sensors:
                s.alert(10)
            with db.transaction():
                for s in sensors:
                    s.record(100)
            with db.transaction():
                for s in sensors:
                    s.record(0)

        benchmark(fire_all)


class TestTimed:
    def test_advance_time_with_deadlines(self, benchmark, db):
        db.create(Sensor, exist_ok=True)
        sensors = [db.pnew(Sensor) for _ in range(20)]
        for s in sensors:
            s.deadline()

        benchmark(lambda: db.advance_time(1.0))
