"""Benchmark-trajectory harness: run the suite, record medians, diff PRs.

Runs the pytest-benchmark suite over ``benchmarks/`` and writes a compact
``BENCH_<date>.json`` next to this file: one entry per benchmark with the
median nanoseconds per operation. Future PRs run the same harness and diff
their file against the last committed one, so the ROADMAP's "fast as the
hardware allows" goal becomes a tracked trajectory instead of a vibe
(VOODB, arXiv:0705.0450, makes the case for reproducible OODB workloads).

Usage::

    PYTHONPATH=src python benchmarks/run_baseline.py            # full suite
    PYTHONPATH=src python benchmarks/run_baseline.py --smoke    # fast subset
    PYTHONPATH=src python benchmarks/run_baseline.py --diff     # vs last file
    PYTHONPATH=src python benchmarks/run_baseline.py --profile  # cProfile top-25

``--diff`` compares against the newest committed ``BENCH_*.json`` (other
than the one being written) and prints per-benchmark speedup ratios.
"""

from __future__ import annotations

import argparse
import datetime
import glob
import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)

#: The subset exercised by ``--smoke`` (and ``make bench-smoke``): the
#: files covering the five tracked groups — iteration, persistence,
#: storage, triggers, multi-threaded throughput — kept small enough to
#: finish in ~30 seconds.
SMOKE_FILES = [
    "bench_iteration.py::TestSelection",
    "bench_iteration.py::TestEquijoin",
    "bench_persistence.py::TestCreation",
    "bench_storage.py",
    "bench_triggers.py",
    "bench_concurrency.py::TestDisjointThroughput",
]

FULL_FILES = ["."]  # the whole benchmarks directory


def run_suite(smoke: bool = False, extra_args=()) -> dict:
    """Run pytest-benchmark, returning {benchmark_name: median_ns}."""
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = os.path.join(tmp, "bench.json")
        targets = SMOKE_FILES if smoke else FULL_FILES
        cmd = [
            sys.executable, "-m", "pytest",
            *targets,
            "--benchmark-only",
            "--benchmark-json=%s" % raw_path,
            "--benchmark-max-time=0.5",
            "--benchmark-min-rounds=3",
            "-q", "-p", "no:cacheprovider",
            *extra_args,
        ]
        env = dict(os.environ)
        src = os.path.join(REPO, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(cmd, cwd=HERE, env=env)
        if proc.returncode not in (0, 5):  # 5 = no tests collected
            raise SystemExit("benchmark run failed (exit %d)" % proc.returncode)
        with open(raw_path) as fh:
            raw = json.load(fh)
    results = {}
    for bench in raw.get("benchmarks", []):
        # fullname is e.g. "bench_iteration.py::TestSelection::test_indexed_eq"
        entry = {
            "median_ns": bench["stats"]["median"] * 1e9,
            "ops_per_sec": bench["stats"]["ops"],
            "rounds": bench["stats"]["rounds"],
        }
        # The db fixture snapshots engine metrics (buffer hit ratio, WAL
        # flushes, lock waits) into extra_info; carry them so a report
        # diff can tell "slower code" apart from "colder cache".
        metrics = bench.get("extra_info", {}).get("metrics")
        if metrics:
            entry["metrics"] = metrics
        results[bench["fullname"]] = entry
    return results


def run_profile(smoke: bool = False, top: int = 25) -> None:
    """Run the suite under cProfile and print the hottest *top* functions.

    Profiles the whole pytest process, so fixture setup is included; the
    cumulative-time ranking still surfaces the engine hot spots (decode,
    pin, lock, scan) clearly above the harness noise.
    """
    import pstats
    with tempfile.TemporaryDirectory() as tmp:
        prof_path = os.path.join(tmp, "bench.prof")
        targets = SMOKE_FILES if smoke else FULL_FILES
        cmd = [
            sys.executable, "-m", "cProfile", "-o", prof_path,
            "-m", "pytest",
            *targets,
            "--benchmark-only",
            "--benchmark-max-time=0.5",
            "--benchmark-min-rounds=3",
            "-q", "-p", "no:cacheprovider",
        ]
        env = dict(os.environ)
        src = os.path.join(REPO, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(cmd, cwd=HERE, env=env)
        if proc.returncode not in (0, 5):
            raise SystemExit("profile run failed (exit %d)" % proc.returncode)
        stats = pstats.Stats(prof_path)
    print("\ntop %d functions by cumulative time:" % top)
    stats.sort_stats("cumulative").print_stats(top)


def write_report(results: dict, label: str = "") -> str:
    date = datetime.date.today().isoformat()
    name = "BENCH_%s%s.json" % (date, ("_" + label) if label else "")
    path = os.path.join(HERE, name)
    payload = {
        "date": date,
        "label": label,
        "python": sys.version.split()[0],
        "benchmarks": {k: round(v["median_ns"], 1)
                       for k, v in sorted(results.items())},
        "detail": results,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def latest_report(exclude: str = "") -> str:
    candidates = [p for p in sorted(glob.glob(os.path.join(HERE, "BENCH_*.json")))
                  if os.path.abspath(p) != os.path.abspath(exclude)]
    return candidates[-1] if candidates else ""


def diff_reports(old_path: str, new_path: str) -> None:
    with open(old_path) as fh:
        old = json.load(fh)["benchmarks"]
    with open(new_path) as fh:
        new = json.load(fh)["benchmarks"]
    print("\n%-72s %12s %12s %8s" % ("benchmark", "old ns", "new ns", "ratio"))
    for name in sorted(set(old) & set(new)):
        ratio = old[name] / new[name] if new[name] else float("inf")
        print("%-72s %12.0f %12.0f %7.2fx" % (name[:72], old[name],
                                              new[name], ratio))
    only_new = sorted(set(new) - set(old))
    if only_new:
        print("\nnew benchmarks (no baseline):")
        for name in only_new:
            print("  %-70s %12.0f ns" % (name[:70], new[name]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the ~30s smoke subset instead of the suite")
    parser.add_argument("--label", default="",
                        help="suffix for the output file name")
    parser.add_argument("--diff", action="store_true",
                        help="diff the new report against the previous one")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top-25 "
                             "functions instead of recording medians")
    args = parser.parse_args(argv)
    if args.profile:
        run_profile(smoke=args.smoke)
        return 0
    results = run_suite(smoke=args.smoke)
    if args.smoke:
        # A partial suite must never become a BENCH_*.json: a later --diff
        # would pick it up as if it were a full baseline.
        print("smoke run ok (%d benchmarks, nothing written)" % len(results))
        return 0
    path = write_report(results, label=args.label)
    print("wrote %s (%d benchmarks)" % (path, len(results)))
    if args.diff:
        previous = latest_report(exclude=path)
        if previous:
            diff_reports(previous, path)
        else:
            print("no previous BENCH_*.json to diff against")
    return 0


if __name__ == "__main__":
    sys.exit(main())
