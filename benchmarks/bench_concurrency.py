"""Concurrency benchmarks: multi-threaded transaction throughput.

Measures what the lock manager and thread-local transaction sessions cost
and buy: single-thread vs multi-thread commit streams on disjoint objects
(lock overhead + latch contention), contended read-modify-write on one hot
object (serialization cost), and concurrent readers against a writer under
group commit. Python threads share the GIL, so these benchmarks bound lock
*overhead* and fairness rather than parallel speedup — the interesting
number is how close N threads stay to 1 thread on the same total work.
"""

import threading

import pytest

from conftest import BenchItem, BenchSupplier

from repro import Database, IntField, OdeObject


class BenchCounter(OdeObject):
    n = IntField(default=0)


def run_threads(workers):
    errors = []

    def guard(fn):
        def wrapped():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
        return wrapped

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestDisjointThroughput:
    """Same total work split across threads on disjoint objects."""

    TOTAL_TXNS = 80

    def _run(self, db, oids, n_threads):
        per_thread = self.TOTAL_TXNS // n_threads

        def writer(oid):
            def work():
                for _ in range(per_thread):
                    def txn():
                        db.deref(oid).n += 1
                    db.run_transaction(txn, retries=20)
            return work

        run_threads([writer(oids[i]) for i in range(n_threads)])

    @pytest.fixture
    def counters(self, db):
        db.create(BenchCounter)
        oids = [db.pnew(BenchCounter).oid for i in range(8)]
        return db, oids

    def test_txn_stream_1_thread(self, benchmark, counters):
        db, oids = counters
        benchmark(lambda: self._run(db, oids, 1))

    def test_txn_stream_4_threads(self, benchmark, counters):
        db, oids = counters
        benchmark(lambda: self._run(db, oids, 4))

    def test_txn_stream_8_threads(self, benchmark, counters):
        db, oids = counters
        benchmark(lambda: self._run(db, oids, 8))


class TestContendedWrites:
    """All threads read-modify-write the same hot object."""

    def test_hot_object_4_threads(self, benchmark, db):
        db.create(BenchCounter)
        oid = db.pnew(BenchCounter).oid

        def run():
            def work():
                for _ in range(10):
                    def txn():
                        db.deref(oid).n += 1
                    db.run_transaction(txn, retries=100)
            run_threads([work] * 4)

        benchmark(run)


class TestReadersWithWriter:
    """Readers deref a working set while one writer commits under group
    durability — the group-commit flush must not stall readers."""

    def test_readers_during_group_commit(self, benchmark, tmp_path):
        db = Database(str(tmp_path / "grp.odb"), durability="group")
        db.create(BenchCounter)
        oids = [db.pnew(BenchCounter).oid for _ in range(16)]

        def run():
            def reader():
                for _ in range(5):
                    def txn():
                        for oid in oids:
                            db.deref(oid)
                    db.run_transaction(txn, retries=50)

            def writer():
                for i in range(10):
                    def txn():
                        db.deref(oids[i % len(oids)]).n += 1
                    db.run_transaction(txn, retries=50)

            run_threads([reader, reader, writer])

        benchmark(run)
        db.close()
