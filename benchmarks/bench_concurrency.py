"""Concurrency benchmarks: multi-threaded transaction throughput.

Measures what the lock manager and thread-local transaction sessions cost
and buy: single-thread vs multi-thread commit streams on disjoint objects
(lock overhead + latch contention), contended read-modify-write on one hot
object (serialization cost), and concurrent readers against a writer under
group commit. Python threads share the GIL, so these benchmarks bound lock
*overhead* and fairness rather than parallel speedup — the interesting
number is how close N threads stay to 1 thread on the same total work.
"""

import math
import os
import threading
import time

import pytest

from conftest import BenchItem, BenchSupplier

from repro import Database, IntField, OdeObject


class BenchCounter(OdeObject):
    n = IntField(default=0)


def run_threads(workers):
    errors = []

    def guard(fn):
        def wrapped():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
        return wrapped

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestDisjointThroughput:
    """Same total work split across threads on disjoint objects."""

    TOTAL_TXNS = 80

    def _run(self, db, oids, n_threads):
        per_thread = self.TOTAL_TXNS // n_threads

        def writer(oid):
            def work():
                for _ in range(per_thread):
                    def txn():
                        db.deref(oid).n += 1
                    db.run_transaction(txn, retries=20)
            return work

        run_threads([writer(oids[i]) for i in range(n_threads)])

    @pytest.fixture
    def counters(self, db):
        db.create(BenchCounter)
        oids = [db.pnew(BenchCounter).oid for i in range(8)]
        return db, oids

    def test_txn_stream_1_thread(self, benchmark, counters):
        db, oids = counters
        benchmark(lambda: self._run(db, oids, 1))

    def test_txn_stream_4_threads(self, benchmark, counters):
        db, oids = counters
        benchmark(lambda: self._run(db, oids, 4))

    def test_txn_stream_8_threads(self, benchmark, counters):
        db, oids = counters
        benchmark(lambda: self._run(db, oids, 8))


class TestContendedWrites:
    """All threads read-modify-write the same hot object."""

    def test_hot_object_4_threads(self, benchmark, db):
        db.create(BenchCounter)
        oid = db.pnew(BenchCounter).oid

        def run():
            def work():
                for _ in range(10):
                    def txn():
                        db.deref(oid).n += 1
                    db.run_transaction(txn, retries=100)
            run_threads([work] * 4)

        benchmark(run)


class TestReadersWithWriter:
    """Readers deref a working set while one writer commits under group
    durability — the group-commit flush must not stall readers."""

    def test_readers_during_group_commit(self, benchmark, tmp_path):
        db = Database(str(tmp_path / "grp.odb"), durability="group")
        db.create(BenchCounter)
        oids = [db.pnew(BenchCounter).oid for _ in range(16)]

        def run():
            def reader():
                for _ in range(5):
                    def txn():
                        for oid in oids:
                            db.deref(oid)
                    db.run_transaction(txn, retries=50)

            def writer():
                for i in range(10):
                    def txn():
                        db.deref(oids[i % len(oids)]).n += 1
                    db.run_transaction(txn, retries=50)

            run_threads([reader, reader, writer])

        benchmark(run)
        db.close()


class _MvccMode:
    """Open a Database with MVCC forced on or off, restoring the env."""

    def __init__(self, path, on):
        self.path, self.on = str(path), on

    def __enter__(self):
        self._prev = os.environ.get("REPRO_MVCC")
        os.environ["REPRO_MVCC"] = "1" if self.on else "0"
        self.db = Database(self.path)
        return self.db

    def __exit__(self, *exc):
        if self._prev is None:
            os.environ.pop("REPRO_MVCC", None)
        else:
            os.environ["REPRO_MVCC"] = self._prev
        if not self.db._closed:
            self.db.close()
        return False


class TestMvccScanReaders:
    """ISSUE 7 headline: snapshot readers stop blocking the writer.

    Two reader threads scan the cluster in a tight transaction loop while
    one writer runs read-modify-write transactions for a fixed wall-clock
    window. Under 2PL the scans' cluster S locks serialize the writer;
    under MVCC (the default) readers take no locks at all. The gate
    compares committed writer transactions across the two modes in the
    same window — the MVCC writer must get at least 2x through.
    """

    N_ROWS = 300
    N_READERS = 2
    WINDOW_S = 0.7

    def _writer_commits(self, path, mvcc_on):
        """Committed writer txns during one readers-vs-writer window."""
        with _MvccMode(path, mvcc_on) as db:
            assert db._mvcc_on == mvcc_on
            db.create(BenchCounter)
            with db.transaction():
                oids = [db.pnew(BenchCounter, n=i).oid
                        for i in range(self.N_ROWS)]
            stop = threading.Event()
            commits = [0]

            def reader():
                while not stop.is_set():
                    def txn():
                        total = sum(o.n for o in db.cluster(BenchCounter))
                        # Application work over the scanned data, inside
                        # the transaction: a 2PL reader holds its cluster
                        # S lock across it (starving writer IX requests);
                        # an MVCC reader holds nothing.
                        time.sleep(0.01)
                        return total
                    db.run_transaction(txn, retries=1000)

            def writer():
                deadline = time.monotonic() + self.WINDOW_S
                try:
                    while time.monotonic() < deadline:
                        def txn():
                            db.deref(oids[commits[0] % self.N_ROWS]).n += 1
                        db.run_transaction(txn, retries=1000)
                        commits[0] += 1
                finally:
                    stop.set()

            run_threads([reader] * self.N_READERS + [writer])
            return commits[0]

    def test_writer_throughput_vs_scanning_readers(self, benchmark,
                                                   tmp_path):
        commits_off = self._writer_commits(tmp_path / "off.odb",
                                           mvcc_on=False)
        runs = []

        def run():
            runs.append(self._writer_commits(
                tmp_path / ("on%d.odb" % len(runs)), mvcc_on=True))

        benchmark.pedantic(run, rounds=1, iterations=1)
        commits_on = runs[-1]
        speedup = commits_on / max(commits_off, 1)
        benchmark.extra_info["metrics"] = {
            "mvcc_writer_commits": commits_on,
            "slock_writer_commits": commits_off,
            "writer_speedup": round(speedup, 2),
        }
        assert commits_on >= 2 * max(commits_off, 1), (
            "MVCC writer throughput gate: %d commits vs %d under S-locks "
            "(%.2fx, need >= 2x)" % (commits_on, commits_off, speedup))

    def test_single_thread_overhead_mvcc(self, benchmark, tmp_path):
        """MVCC bookkeeping off the contended path is noise: the
        geometric-mean single-thread slowdown across create / RMW / scan
        workloads targets <= 5% (asserted at 25% so shared-CI timing
        jitter on these sub-10ms workloads cannot flake the suite; the
        exact ratio is recorded in the BENCH_*.json detail)."""

        def time_mode(path, mvcc_on):
            with _MvccMode(path, mvcc_on) as db:
                db.create(BenchCounter)
                with db.transaction():
                    oids = [db.pnew(BenchCounter, n=i).oid
                            for i in range(200)]

                def w_create():
                    with db.transaction():
                        for i in range(100):
                            db.pnew(BenchCounter, n=i)

                def w_rmw():
                    for oid in oids[:60]:
                        def txn():
                            db.deref(oid).n += 1
                        db.run_transaction(txn)

                def w_scan():
                    with db.transaction():
                        for _ in range(5):
                            sum(o.n for o in db.cluster(BenchCounter))

                best = {}
                for name, fn in (("create", w_create), ("rmw", w_rmw),
                                 ("scan", w_scan)):
                    fn()   # warm caches / first-touch pages
                    samples = []
                    for _ in range(5):
                        t0 = time.perf_counter()
                        fn()
                        samples.append(time.perf_counter() - t0)
                    best[name] = min(samples)
                return best

        off = time_mode(tmp_path / "st_off.odb", mvcc_on=False)
        runs = []

        def run():
            runs.append(time_mode(tmp_path / ("st_on%d.odb" % len(runs)),
                                  mvcc_on=True))

        benchmark.pedantic(run, rounds=1, iterations=1)
        on = runs[-1]
        ratios = {k: on[k] / off[k] for k in off}
        geomean = math.exp(sum(math.log(r) for r in ratios.values())
                           / len(ratios))
        benchmark.extra_info["metrics"] = {
            "geomean_ratio": round(geomean, 4),
            **{("ratio_" + k): round(v, 4) for k, v in ratios.items()},
        }
        assert geomean <= 1.25, (
            "single-thread MVCC overhead gate: geomean %.3fx "
            "(per-workload: %r)" % (geomean, ratios))
