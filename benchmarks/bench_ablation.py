"""Ablation benchmarks for the design choices DESIGN.md calls out.

Two mechanisms were added during development after profiling; each can be
switched off, and these benches measure both settings so the win is
recorded, not just asserted:

* **Decoded-node caches** on the B+tree and the extendible hash index
  (LSN-validated memoisation of decoded page records). Off = decode the
  record on every access.
* **Serial-block allocation** in the Store (object serial numbers are
  reserved from the catalog 64 at a time). Off (block=1) = one catalog
  record rewrite per pnew.
"""

import pytest

from conftest import BenchItem, populate_items

from repro import Oid
from repro.storage.btree import BTree
from repro.storage.hashindex import HashIndex
from repro.storage.store import Store


@pytest.fixture
def caches_disabled():
    saved = (BTree.NODE_CACHE_SIZE, HashIndex.CACHE_SIZE)
    BTree.NODE_CACHE_SIZE = 0
    HashIndex.CACHE_SIZE = 0
    yield
    BTree.NODE_CACHE_SIZE, HashIndex.CACHE_SIZE = saved


@pytest.fixture
def small_serial_blocks():
    saved = Store.SERIAL_BLOCK
    Store.SERIAL_BLOCK = 1
    yield
    Store.SERIAL_BLOCK = saved


def cold_scan(db, n):
    db._cache.clear()
    count = sum(1 for _ in db.cluster(BenchItem))
    assert count == n
    return count


class TestNodeCacheAblation:
    N = 800

    def test_cold_scan_cache_on(self, benchmark, db):
        populate_items(db, self.N)
        benchmark(lambda: cold_scan(db, self.N))

    def test_cold_scan_cache_off(self, benchmark, db, caches_disabled):
        populate_items(db, self.N)
        benchmark(lambda: cold_scan(db, self.N))

    def test_point_deref_cache_on(self, benchmark, db):
        populate_items(db, self.N)
        oid = Oid("BenchItem", self.N // 2)

        def fault():
            db._cache.clear()
            return db.deref(oid).qty

        benchmark(fault)

    def test_point_deref_cache_off(self, benchmark, db, caches_disabled):
        populate_items(db, self.N)
        oid = Oid("BenchItem", self.N // 2)

        def fault():
            db._cache.clear()
            return db.deref(oid).qty

        benchmark(fault)

    def test_btree_probe_cache_on(self, benchmark, db):
        populate_items(db, self.N, with_indexes=[("price", "btree")])
        index = db.store.index("BenchItem", "price")
        benchmark(lambda: index.search(42.0))

    def test_btree_probe_cache_off(self, benchmark, db, caches_disabled):
        populate_items(db, self.N, with_indexes=[("price", "btree")])
        index = db.store.index("BenchItem", "price")
        benchmark(lambda: index.search(42.0))


class TestSerialBlockAblation:
    def test_pnew_batch_blocks_on(self, benchmark, db):
        from conftest import BenchSupplier
        db.create(BenchSupplier, exist_ok=True)
        db.create(BenchItem, exist_ok=True)

        def batch():
            with db.transaction():
                for _ in range(50):
                    db.pnew(BenchItem, name="x", price=1.0)

        benchmark(batch)

    def test_pnew_batch_blocks_off(self, benchmark, db,
                                   small_serial_blocks):
        from conftest import BenchSupplier
        db.create(BenchSupplier, exist_ok=True)
        db.create(BenchItem, exist_ok=True)

        def batch():
            with db.transaction():
                for _ in range(50):
                    db.pnew(BenchItem, name="x", price=1.0)

        benchmark(batch)
