"""Macro workload matrix: smoke gate for CI, full tier for BENCH files.

Unlike the pytest micro-benchmarks, this is a plain script (the macro
scenarios manage their own databases and walltime):

    PYTHONPATH=src python benchmarks/bench_macro.py --smoke
    PYTHONPATH=src python benchmarks/bench_macro.py --full --out benchmarks/BENCH_<date>_pr9.json

``--smoke`` runs a tiny tier of every built-in scenario and enforces
three gates:

* every scenario completes with ops > 0 and per-op percentiles for its
  whole mix;
* the same OLTP scenario survives a ``REPRO_FAULTS`` run in a
  subprocess (faults actually injected, operations still complete);
* instrumentation overhead: paired instrumented/uninstrumented rounds
  on one database must agree within ``MAX_OVERHEAD_PCT`` on the best
  round (interleaving cancels instance-to-instance variance the same
  way ``bench_faults._measured_pair`` does).

``--full`` runs the scenarios at full spec scale and writes a
BENCH-compatible JSON file whose ``benchmarks`` entries are per-op p50
latencies in nanoseconds, with the complete reports under ``detail``.
"""

import json
import os
import subprocess
import sys
import tempfile
import shutil

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Database                                    # noqa: E402
from repro.obs.workload import (WorkloadDriver, get_scenario,  # noqa: E402
                                BUILTIN_SCENARIOS)
from repro.obs.workload.spec import parse_scenario             # noqa: E402

MAX_OVERHEAD_PCT = 3.0
SMOKE_SCALE = 0.15
SMOKE_DURATION = 1.0

#: A fault that injects a recoverable read error mid-run: the driver's
#: ``run_transaction`` retry path must absorb it and keep going. The
#: fault row runs with a tiny buffer pool so reads actually reach the
#: page file (the smoke datasets otherwise fit in the pool entirely).
SMOKE_FAULTS = "pagefile.read.short:short:40"
SMOKE_FAULTS_POOL_PAGES = 16

OVERHEAD_SPEC = {
    "name": "overhead_probe",
    "description": "deref-heavy closed loop, zero think time",
    "dataset": {"items": 300},
    "seed": 77,
    "duration_s": 0.8,
    "clients": [
        {"count": 2, "arrival": "closed", "think_time_ms": 0.0,
         "mix": {"deref": 6, "update": 1, "pnew": 1}},
    ],
}


def _run_scenario(name, scale, duration=None, instrument=True, db_dir=None):
    spec = get_scenario(name).scaled(scale)
    if duration is not None:
        spec = spec.with_duration(duration)
    tmp = db_dir or tempfile.mkdtemp(prefix="bench-macro-")
    db = Database(os.path.join(tmp, "%s.odb" % name))
    try:
        driver = WorkloadDriver(db, spec, instrument=instrument)
        driver.setup()
        return driver.run()
    finally:
        db.close()
        if db_dir is None:
            shutil.rmtree(tmp, ignore_errors=True)


def _check_report(name, report):
    assert report["ops"] > 0, "%s: no operations completed" % name
    mix_ops = set()
    for phase in report["scenario"]["phases"]:
        for group in phase["clients"]:
            mix_ops.update(group["mix"])
    for op in sorted(mix_ops):
        lat = report["latency_ms"].get(op)
        assert lat and lat["count"] > 0, \
            "%s: op %r has no latency samples" % (name, op)
        for key in ("p50", "p90", "p99", "p99.9"):
            assert key in lat, "%s/%s: missing %s" % (name, op, key)
    err_pct = 100.0 * report["errors"] / report["ops"]
    assert err_pct < 25.0, \
        "%s: %.1f%% of operations errored" % (name, err_pct)
    print("  %-12s %6d ops  %7.1f ops/s  %d errors  OK"
          % (name, report["ops"], report["ops_per_s"], report["errors"]))


def _smoke_faults():
    """Re-run the OLTP smoke in a subprocess with a fault armed."""
    tmp = tempfile.mkdtemp(prefix="bench-macro-faults-")
    report_path = os.path.join(tmp, "report.json")
    env = dict(os.environ)
    env["REPRO_FAULTS"] = SMOKE_FAULTS
    env["REPRO_FAULTS_SEED"] = "7"
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(__file__), "..", "src")
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "simulate", "oltp",
             "--scale", str(SMOKE_SCALE),
             "--duration", str(SMOKE_DURATION),
             "--db", os.path.join(tmp, "faults.odb"),
             "--pool-pages", str(SMOKE_FAULTS_POOL_PAGES),
             "--report", report_path],
            env=env, capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, \
            "fault run failed (exit %d):\n%s" % (proc.returncode,
                                                 proc.stderr[-2000:])
        with open(report_path) as fh:
            report = json.load(fh)
        injected = report.get("metrics", {}).get("faults.injected", 0)
        assert injected > 0, "REPRO_FAULTS armed but nothing injected"
        assert report["ops"] > 0, "no operations completed under faults"
        print("  %-12s %6d ops  %d fault(s) injected  OK"
              % ("oltp+faults", report["ops"], injected))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _overhead_gate(rounds=6):
    """Best-round instrumented-vs-stripped throughput gap must be small.

    One database, one dataset; each round runs the probe scenario twice
    — instrumented then uninstrumented — with fresh driver shells that
    share the populated object refs. Gating on the *best* round follows
    the bench_faults argument: one clean round exposes the true cost;
    the others only add scheduler noise.
    """
    spec = parse_scenario(OVERHEAD_SPEC)
    tmp = tempfile.mkdtemp(prefix="bench-macro-ovh-")
    db = Database(os.path.join(tmp, "probe.odb"))
    try:
        base = WorkloadDriver(db, spec, instrument=True)
        base.setup()

        def run_once(instrument):
            drv = WorkloadDriver(db, spec, instrument=instrument)
            drv._refs = base._refs
            drv._roots = base._roots
            drv._trigger_refs = base._trigger_refs
            drv._tokens = base._tokens
            report = drv.run()
            return report["ops_per_s"]

        best_pct = float("inf")
        for _ in range(rounds):
            inst = run_once(True)
            stripped = run_once(False)
            pct = 100.0 * (stripped - inst) / stripped
            best_pct = min(best_pct, pct)
        assert best_pct <= MAX_OVERHEAD_PCT, \
            "instrumentation overhead %.2f%% exceeds %.1f%% budget" \
            % (best_pct, MAX_OVERHEAD_PCT)
        print("  %-12s best-round overhead %+.2f%%  (budget %.1f%%)  OK"
              % ("overhead", best_pct, MAX_OVERHEAD_PCT))
    finally:
        db.close()
        shutil.rmtree(tmp, ignore_errors=True)


def smoke() -> int:
    print("bench_macro --smoke")
    for name in sorted(BUILTIN_SCENARIOS):
        report = _run_scenario(name, SMOKE_SCALE, SMOKE_DURATION)
        _check_report(name, report)
    _smoke_faults()
    _overhead_gate()
    print("bench_macro smoke: all gates passed")
    return 0


def full(out_path, scale=1.0) -> int:
    import datetime
    import platform
    print("bench_macro --full (scale %g)" % scale)
    benchmarks = {}
    detail = {}
    for name in sorted(BUILTIN_SCENARIOS):
        report = _run_scenario(name, scale)
        _check_report(name, report)
        detail[name] = report
        benchmarks["macro/%s/ops_per_s" % name] = report["ops_per_s"]
        for op, lat in sorted(report["latency_ms"].items()):
            for q in ("p50", "p99"):
                if q in lat:
                    benchmarks["macro/%s/%s_%s_ns" % (name, op, q)] = int(
                        lat[q] * 1e6)
    payload = {
        "date": datetime.date.today().isoformat(),
        "label": "macro",
        "python": platform.python_version(),
        "benchmarks": benchmarks,
        "detail": detail,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print("wrote %s (%d entries)" % (out_path, len(benchmarks)))
    return 0


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny tier + fault row + overhead gate")
    parser.add_argument("--full", action="store_true",
                        help="full tier; writes a BENCH json")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="with --full: dataset/client scale factor")
    parser.add_argument("--out", default=None,
                        help="with --full: output BENCH json path")
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    if args.full:
        import datetime
        out = args.out or os.path.join(
            os.path.dirname(__file__),
            "BENCH_%s_macro.json" % datetime.date.today().isoformat())
        return full(out, args.scale)
    parser.error("pass --smoke or --full")


if __name__ == "__main__":
    sys.exit(main())
