"""EXP-11: O++ interpreter overhead vs the direct Python API.

The same workload is run through the language front end and through the
library; the ratio is the cost of the language layer (parse once, then a
tree-walking evaluator per statement).
"""

import pytest

from repro.opp import Interpreter, parse

SCHEMA = r"""
class bitem {
  public:
    char* name;
    double price;
    int qty;
    bitem(char* n, double p, int q) { name = n; price = p; qty = q; }
};
create bitem;
"""

QUERY = r"""
int n = 0;
forall t in bitem suchthat (t->price < 50.0) n++;
"""


class TestParsing:
    def test_parse_schema(self, benchmark):
        benchmark(lambda: parse(SCHEMA))

    def test_parse_large_program(self, benchmark):
        program = SCHEMA + QUERY * 50
        benchmark(lambda: parse(program, known_types={"bitem"}))


class TestExecution:
    @pytest.fixture
    def loaded(self, db):
        interp = Interpreter(db)
        interp.run(SCHEMA)
        interp.run("""
        for (int i = 0; i < 200; i++)
            pnew bitem("part", 1.0 * (i - (i / 100) * 100), i);
        """)
        return db, interp

    def test_query_via_opp(self, benchmark, loaded):
        db, interp = loaded
        benchmark(lambda: interp.run(QUERY))

    def test_query_via_python(self, benchmark, loaded):
        db, interp = loaded
        from repro import A, forall
        from repro.core.objects import class_registry
        cls = class_registry()["bitem"]
        q = forall(db.cluster(cls)).suchthat(A.price < 50.0)
        result = benchmark(q.count)
        assert result == 100

    def test_arithmetic_loop_opp(self, benchmark, loaded):
        db, interp = loaded
        src = """
        int total = 0;
        for (int i = 0; i < 1000; i++) total += i;
        """
        benchmark(lambda: interp.run(src))

    def test_arithmetic_loop_python(self, benchmark):
        def loop():
            total = 0
            for i in range(1000):
                total += i
            return total

        benchmark(loop)

    def test_method_dispatch_opp(self, benchmark, loaded):
        db, interp = loaded
        interp.run("""
        bitem *probe;
        probe = new bitem("x", 1.0, 0);
        """)
        benchmark(lambda: interp.run(
            "for (int i = 0; i < 100; i++) probe->qty;"))
