"""EXP-18: sharded-storage scans — parallel speedup and parity gates.

Benchmarks (pytest-benchmark) track the cold-scan trajectory of the
single-latch baseline vs the shard-parallel executor; ``--gate`` mode
(run by ``make bench-shard-smoke`` and CI) asserts the two acceptance
ratios directly:

* **parity** — a 1-shard store's ``scan_batches`` facade must stay
  within 1.1x of the raw serial page walk it wraps (the sharding layer
  may not tax the common unsharded case), and
* **speedup** — on a >= 4-core machine a 4-shard parallel cold scan
  must beat the 1-shard single-latch cold scan by >= 1.5x. On smaller
  machines the gate is skipped (the executor still runs, there is just
  no parallelism to measure).

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py --benchmark-only
    PYTHONPATH=src python benchmarks/bench_shard.py --gate
"""

import os
import sys
import time

N_OBJECTS = 2000
PAYLOAD = {"pad": "x" * 200}
GATE_ROUNDS = 5
PARITY_LIMIT = 1.10
SPEEDUP_FLOOR = 1.5
MIN_CORES_FOR_SPEEDUP = 4


def build_store(path, shards, n=N_OBJECTS, workers=None):
    from repro.storage.store import Store
    saved = os.environ.get("REPRO_SCAN_WORKERS")
    if workers is not None:
        os.environ["REPRO_SCAN_WORKERS"] = str(workers)
    try:
        store = Store(path, shards=shards)
    finally:
        if workers is not None:
            if saved is None:
                os.environ.pop("REPRO_SCAN_WORKERS", None)
            else:
                os.environ["REPRO_SCAN_WORKERS"] = saved
    txn = store.begin()
    store.create_cluster(txn, "bench")
    for i in range(n):
        serial = store.allocate_serial(txn, "bench")
        record = {"__key": [serial, 0], "n": i}
        record.update(PAYLOAD)
        store.put(txn, "bench", (serial, 0), record, new=True)
    store.commit(txn)
    return store


def drop_caches(store):
    """Force the next scan cold: no pool frames, no decoded-page cache."""
    pools = (store._pool.pools if store.n_shards > 1 else [store._pool])
    for pool in pools:
        pool.flush_all()
        pool.invalidate_all()
    with store._pc_lock:
        store._page_cache.clear()


def cold_scan(store, n=N_OBJECTS):
    drop_caches(store)
    count = sum(len(batch) for batch in store.scan_batches("bench"))
    assert count >= n
    return count


def direct_walk(store, n=N_OBJECTS):
    """The raw serial page walk (the pre-sharding scan), gate and
    facade bypassed — the parity baseline."""
    from repro.storage.heap import HeapFile
    from repro.storage.page import NO_PAGE
    drop_caches(store)
    heap = store._heap("bench", 0)
    count = sum(len(batch) for batch in store._scan_batches_inner(
        heap, store._pool, HeapFile.READAHEAD, NO_PAGE))
    assert count >= n
    return count


# -- pytest-benchmark trajectory ---------------------------------------------


class TestShardColdScan:
    def test_cold_scan_single_shard(self, benchmark, tmp_path):
        store = build_store(str(tmp_path / "one.pages"), shards=None)
        try:
            benchmark(lambda: cold_scan(store))
        finally:
            store.close()

    def test_cold_scan_4shards_parallel(self, benchmark, tmp_path):
        store = build_store(str(tmp_path / "four.pages"), shards=4,
                            workers=4)
        try:
            benchmark(lambda: cold_scan(store))
        finally:
            store.close()

    def test_warm_scan_4shards(self, benchmark, tmp_path):
        store = build_store(str(tmp_path / "warm.pages"), shards=4)
        try:
            cold_scan(store)  # prime
            benchmark(lambda: sum(len(b)
                                  for b in store.scan_batches("bench")))
        finally:
            store.close()


# -- acceptance gates (make bench-shard-smoke / CI) --------------------------


def _best_of(fn, rounds=GATE_ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_gate(tmpdir) -> int:
    failures = []
    one = build_store(os.path.join(tmpdir, "one.pages"), shards=None)
    try:
        facade = _best_of(lambda: cold_scan(one))
        direct = _best_of(lambda: direct_walk(one))
        parity = facade / direct if direct else float("inf")
        print("parity: facade %.1f ms vs direct %.1f ms -> %.3fx "
              "(limit %.2fx)" % (facade * 1e3, direct * 1e3, parity,
                                 PARITY_LIMIT))
        if parity > PARITY_LIMIT:
            failures.append("single-shard facade overhead %.3fx exceeds "
                            "%.2fx" % (parity, PARITY_LIMIT))
        cores = os.cpu_count() or 1
        if cores >= MIN_CORES_FOR_SPEEDUP:
            four = build_store(os.path.join(tmpdir, "four.pages"), shards=4,
                               workers=4)
            try:
                parallel = _best_of(lambda: cold_scan(four))
            finally:
                four.close()
            speedup = facade / parallel if parallel else float("inf")
            print("speedup: 1-shard %.1f ms vs 4-shard %.1f ms -> %.2fx "
                  "(floor %.1fx on %d cores)"
                  % (facade * 1e3, parallel * 1e3, speedup, SPEEDUP_FLOOR,
                     cores))
            if speedup < SPEEDUP_FLOOR:
                failures.append("parallel cold scan %.2fx below the %.1fx "
                                "floor" % (speedup, SPEEDUP_FLOOR))
        else:
            print("speedup gate skipped: %d core(s) < %d"
                  % (cores, MIN_CORES_FOR_SPEEDUP))
    finally:
        one.close()
    for failure in failures:
        print("GATE FAIL: %s" % failure, file=sys.stderr)
    print("shard gate %s" % ("FAILED" if failures else "ok"))
    return 1 if failures else 0


def main(argv=None) -> int:
    import argparse
    import tempfile
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--gate", action="store_true",
                        help="run the parity/speedup acceptance gates")
    args = parser.parse_args(argv)
    if not args.gate:
        parser.error("run under pytest for benchmarks, or pass --gate")
    with tempfile.TemporaryDirectory() as tmpdir:
        return run_gate(tmpdir)


if __name__ == "__main__":
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, "src")
    if os.path.isdir(src) and src not in sys.path:
        sys.path.insert(0, src)
    sys.exit(main())
