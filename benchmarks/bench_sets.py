"""EXP-3 (paper section 2.6): OdeSet operation costs and scaling."""

import pytest

from repro import OdeSet


class TestSetOps:
    @pytest.mark.parametrize("n", [100, 1000, 10000])
    def test_insert_scaling(self, benchmark, n):
        def build():
            s = OdeSet()
            for i in range(n):
                s.insert(i)
            return s

        result = benchmark(build)
        assert len(result) == n

    def test_membership(self, benchmark):
        s = OdeSet(range(10000))
        assert benchmark(lambda: 9999 in s)

    def test_remove_insert_churn(self, benchmark):
        s = OdeSet(range(1000))

        def churn():
            for i in range(100):
                s.remove(i)
                s.insert(i)

        benchmark(churn)

    def test_iteration(self, benchmark):
        s = OdeSet(range(5000))
        assert benchmark(lambda: sum(1 for _ in s)) == 5000

    def test_growth_tolerant_iteration(self, benchmark):
        """The fixpoint-enabling iterator: grow while iterating."""

        def grow_iterate():
            s = OdeSet([0])
            for x in s:
                if x < 2000:
                    s.insert(x + 1)
            return len(s)

        assert benchmark(grow_iterate) == 2001

    def test_union(self, benchmark):
        a = OdeSet(range(0, 2000))
        b = OdeSet(range(1000, 3000))
        assert len(benchmark(lambda: a | b)) == 3000

    def test_operator_insert(self, benchmark):
        def build():
            s = OdeSet()
            for i in range(1000):
                s << i
            return s

        assert len(benchmark(build)) == 1000
