"""Shared benchmark fixtures and the schema used across benchmarks."""

import os

import pytest

from repro import (Database, FloatField, IntField, OdeObject, RefField,
                   StringField)


class BenchSupplier(OdeObject):
    name = StringField(default="")


class BenchItem(OdeObject):
    name = StringField(default="")
    price = FloatField(default=0.0)
    qty = IntField(default=0)
    category = IntField(default=0)
    supplier = RefField("BenchSupplier")


class BenchPerson(OdeObject):
    name = StringField(default="")

    def income(self):
        return 100.0


class BenchStudent(BenchPerson):
    def income(self):
        return 40.0


class BenchFaculty(BenchPerson):
    def income(self):
        return 200.0


@pytest.fixture
def db(tmp_path, request):
    database = Database(str(tmp_path / "bench.odb"))
    yield database
    _embed_metrics(request, database)
    if not database._closed:
        database.close()


def _embed_metrics(request, database):
    """Attach an engine-metrics snapshot to the benchmark's extra_info.

    ``run_baseline.py`` copies this into each BENCH_*.json entry so a
    regression report can distinguish "the code got slower" from "the
    cache stopped hitting".
    """
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is None or database._closed:
        return
    snap = database.metrics.snapshot()
    benchmark.extra_info["metrics"] = {
        "buffer_hit_ratio": round(snap.get("buffer.hit_ratio", 0.0), 4),
        "buffer_hits": snap.get("buffer.hits", 0),
        "buffer_misses": snap.get("buffer.misses", 0),
        "wal_appends": snap.get("wal.appends", 0),
        "wal_syncs": snap.get("wal.syncs", 0),
        "lock_waits": snap.get("lock.waits", 0),
        "lock_deadlocks": snap.get("lock.deadlocks", 0),
        "txn_commits": snap.get("txn.commits", 0),
    }


def populate_items(db, n, with_indexes=()):
    """Standard benchmark dataset: n items, price = i % 100, 10 categories."""
    db.create(BenchSupplier, exist_ok=True)
    db.create(BenchItem, exist_ok=True)
    sup = db.pnew(BenchSupplier, name="acme")
    with db.transaction():
        for i in range(n):
            db.pnew(BenchItem, name="item%06d" % i, price=float(i % 100),
                    qty=i % 1000, category=i % 10, supplier=sup)
    for field, kind in with_indexes:
        db.create_index(BenchItem, field, kind=kind)
    return db
