"""Shared benchmark fixtures and the schema used across benchmarks."""

import os

import pytest

from repro import (Database, FloatField, IntField, OdeObject, RefField,
                   StringField)


class BenchSupplier(OdeObject):
    name = StringField(default="")


class BenchItem(OdeObject):
    name = StringField(default="")
    price = FloatField(default=0.0)
    qty = IntField(default=0)
    category = IntField(default=0)
    supplier = RefField("BenchSupplier")


class BenchPerson(OdeObject):
    name = StringField(default="")

    def income(self):
        return 100.0


class BenchStudent(BenchPerson):
    def income(self):
        return 40.0


class BenchFaculty(BenchPerson):
    def income(self):
        return 200.0


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "bench.odb"))
    yield database
    if not database._closed:
        database.close()


def populate_items(db, n, with_indexes=()):
    """Standard benchmark dataset: n items, price = i % 100, 10 categories."""
    db.create(BenchSupplier, exist_ok=True)
    db.create(BenchItem, exist_ok=True)
    sup = db.pnew(BenchSupplier, name="acme")
    with db.transaction():
        for i in range(n):
            db.pnew(BenchItem, name="item%06d" % i, price=float(i % 100),
                    qty=i % 1000, category=i % 10, supplier=sup)
    for field, kind in with_indexes:
        db.create_index(BenchItem, field, kind=kind)
    return db
