"""EXP-10 (substrate): storage engine characteristics.

The paper never published numbers for its persistent store; these benches
characterise ours so every higher-level number has a substrate baseline:
commit latency vs payload size, index probe vs heap scan, B+tree vs hash
point lookups, recovery time vs log length, buffer pool hit/miss costs.
"""

import os

import pytest

from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.hashindex import HashIndex
from repro.storage.heap import HeapFile
from repro.storage.journal import Journal
from repro.storage.pagefile import PageFile
from repro.storage.recovery import recover
from repro.storage.wal import WriteAheadLog


@pytest.fixture
def stack(tmp_path):
    pagefile = PageFile(str(tmp_path / "pages"))
    pool = BufferPool(pagefile, capacity=128)
    wal = WriteAheadLog(str(tmp_path / "wal"))
    journal = Journal(pool, wal)
    yield pool, wal, journal
    wal.close()
    pagefile.close()


class TestCommitLatency:
    @pytest.mark.parametrize("size", [64, 1024, 16384])
    def test_insert_commit(self, benchmark, stack, size):
        pool, wal, journal = stack
        txn = journal.begin()
        heap = HeapFile.create(journal, txn)
        journal.commit(txn)
        payload = os.urandom(size)

        def insert_commit():
            t = journal.begin()
            heap.insert(t, payload)
            journal.commit(t)

        benchmark(insert_commit)

    def test_batched_inserts_per_commit(self, benchmark, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        heap = HeapFile.create(journal, txn)
        journal.commit(txn)
        payload = os.urandom(256)

        def batch():
            t = journal.begin()
            for _ in range(100):
                heap.insert(t, payload)
            journal.commit(t)

        benchmark(batch)


class TestIndexLookups:
    N = 5000

    @pytest.fixture
    def loaded(self, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        heap = HeapFile.create(journal, txn)
        btree = BTree.create(journal, txn)
        hindex = HashIndex.create(journal, txn)
        rids = {}
        for i in range(self.N):
            rid = heap.insert(txn, b"record-%06d" % i)
            btree.insert(txn, i, tuple(rid))
            hindex.insert(txn, i, tuple(rid))
            rids[i] = rid
        journal.commit(txn)
        return heap, btree, hindex

    def test_btree_point_lookup(self, benchmark, loaded):
        heap, btree, hindex = loaded
        assert benchmark(lambda: btree.search(self.N // 2))

    def test_hash_point_lookup(self, benchmark, loaded):
        heap, btree, hindex = loaded
        assert benchmark(lambda: hindex.search(self.N // 2))

    def test_btree_range_100(self, benchmark, loaded):
        heap, btree, hindex = loaded
        result = benchmark(lambda: list(btree.range(1000, 1100)))
        assert len(result) == 100

    def test_heap_full_scan(self, benchmark, loaded):
        heap, btree, hindex = loaded
        assert benchmark(lambda: sum(1 for _ in heap.scan())) == self.N

    def test_probe_then_heap_read(self, benchmark, loaded):
        from repro.storage.heap import RID
        heap, btree, hindex = loaded

        def point_read():
            rid = hindex.search(self.N // 3)[0]
            return heap.read(RID(*rid))

        assert benchmark(point_read) == b"record-%06d" % (self.N // 3)


class TestRecovery:
    @pytest.mark.parametrize("txns", [10, 100, 500])
    def test_recovery_time_vs_log_length(self, benchmark, tmp_path, txns):
        base = tmp_path / str(txns)
        base.mkdir()

        def build_then_recover():
            page_path = str(base / "pages")
            wal_path = str(base / "wal")
            for p in (page_path, wal_path):
                if os.path.exists(p):
                    os.unlink(p)
            pagefile = PageFile(page_path)
            pool = BufferPool(pagefile, capacity=64)
            wal = WriteAheadLog(wal_path)
            journal = Journal(pool, wal)
            t = journal.begin()
            heap = HeapFile.create(journal, t)
            journal.commit(t)
            for i in range(txns):
                t = journal.begin()
                heap.insert(t, b"x" * 200)
                journal.commit(t)
            # crash: drop the pool, reopen, recover
            wal.close()
            pagefile.close()
            pagefile2 = PageFile(page_path)
            pool2 = BufferPool(pagefile2, capacity=64)
            wal2 = WriteAheadLog(wal_path)
            report = recover(pool2, wal2)
            wal2.close()
            pagefile2.close()
            return report

        report = benchmark.pedantic(build_then_recover, rounds=3,
                                    iterations=1)
        assert report.redone > 0


class TestBufferPool:
    def test_hit_vs_miss(self, benchmark, tmp_path):
        pagefile = PageFile(str(tmp_path / "bp"))
        pool = BufferPool(pagefile, capacity=8)
        from repro.storage.page import PageType
        pages = [pool.new_page(PageType.HEAP) for _ in range(64)]
        pool.flush_all()

        def sweep():
            for page_no in pages:
                with pool.page(page_no):
                    pass

        benchmark(sweep)
        pagefile.close()
