"""Network-server bench: open-loop multi-client driver against a real
``repro serve`` subprocess (EXP-20).

Plain script like ``bench_macro`` (it manages its own server processes
and walltime):

    PYTHONPATH=src python benchmarks/bench_server.py --smoke
    PYTHONPATH=src python benchmarks/bench_server.py --full --out benchmarks/BENCH_<date>_pr10.json

``--smoke`` gates, in order:

* **baseline** — an N-client open-loop OLTP round over TCP completes
  with a throughput floor and a client-observed p99 ceiling;
* **faults** — the same round with ``REPRO_FAULTS`` injecting socket
  read errors in the server: connections drop mid-op, clients reconnect
  and continue, and the run still clears (degraded) floors while faults
  were really injected;
* **overload drill** — a 1-slot server under many clients fast-fails
  with ``ServerOverloadedError`` (no unbounded queueing) while clients
  still make progress through retry.

``--full`` writes a BENCH-compatible JSON of remote throughput and
latency percentiles for the remote-capable scenarios.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import OdeError, ServerOverloadedError     # noqa: E402
from repro.obs.workload.remote import RemoteWorkloadDriver   # noqa: E402
from repro.obs.workload.spec import parse_scenario           # noqa: E402
from repro.server.client import Client                       # noqa: E402

SRC_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "..", "src")

#: Open-loop smoke scenario: 4 clients, Poisson arrivals, OLTP-ish mix.
SMOKE_SPEC = {
    "name": "server_oltp",
    "description": "open-loop remote OLTP",
    "dataset": {"items": 150},
    "seed": 42,
    "duration_s": 3.0,
    "clients": [
        {"count": 4, "arrival": "poisson", "rate": 40,
         "mix": {"deref": 5, "update": 2, "pnew": 1, "scan": 1}},
    ],
}

#: Socket read errors in the server every ~25 recvs: connections drop,
#: clients reconnect. Recoverable by design.
SMOKE_FAULTS = "server.recv.pre:error:25"

SMOKE_MIN_OPS_PER_S = 50.0
SMOKE_MAX_P99_MS = 2000.0
FAULTS_MIN_OPS_PER_S = 20.0


class ServeProc:
    """A ``repro serve`` subprocess with parsed address."""

    def __init__(self, tmpdir, extra_env=None, args=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_FAULTS", None)
        if extra_env:
            env.update(extra_env)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             os.path.join(tmpdir, "bench.odb"), "--port", "0"]
            + list(args),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        line = self.proc.stdout.readline().decode().split()
        assert line[:1] == ["LISTENING"], (
            "server never announced: %r / %s"
            % (line, self.proc.stderr.read().decode()[-800:]))
        self.host, self.port = line[1], int(line[2])

    def stop(self, expect_clean=True):
        self.proc.send_signal(signal.SIGTERM)
        try:
            rc = self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            rc = self.proc.wait(timeout=10)
        stderr = self.proc.stderr.read().decode()
        self.proc.stdout.close()
        self.proc.stderr.close()
        if expect_clean:
            assert rc == 0, ("server exited %d:\n%s" % (rc, stderr[-1500:]))
        return rc


def _run_remote(host, port, spec_dict, duration=None):
    spec = parse_scenario(spec_dict)
    if duration is not None:
        spec = spec.with_duration(duration)
    driver = RemoteWorkloadDriver(host, port, spec)
    try:
        driver.setup()
        return driver.run()
    finally:
        driver.close()


def _worst_p99_ms(report):
    return max((row.get("p99", 0.0)
                for row in report["latency_ms"].values()), default=0.0)


def _smoke_baseline(tmp):
    server = ServeProc(tmp)
    try:
        report = _run_remote(server.host, server.port, SMOKE_SPEC)
    finally:
        server.stop()
    assert report["ops"] > 0, "no remote operations completed"
    assert report["ops_per_s"] >= SMOKE_MIN_OPS_PER_S, (
        "remote throughput %.1f ops/s below the %.0f floor"
        % (report["ops_per_s"], SMOKE_MIN_OPS_PER_S))
    p99 = _worst_p99_ms(report)
    assert p99 <= SMOKE_MAX_P99_MS, (
        "client-observed p99 %.1f ms above the %.0f ms ceiling"
        % (p99, SMOKE_MAX_P99_MS))
    err_pct = 100.0 * report["errors"] / report["ops"]
    assert err_pct < 10.0, "%.1f%% of remote ops errored" % err_pct
    print("  %-14s %6d ops  %7.1f ops/s  worst p99 %7.1f ms  OK"
          % ("baseline", report["ops"], report["ops_per_s"], p99))
    return report


def _smoke_faults(tmp):
    server = ServeProc(tmp, extra_env={"REPRO_FAULTS": SMOKE_FAULTS,
                                       "REPRO_FAULTS_SEED": "7"})
    try:
        report = _run_remote(server.host, server.port, SMOKE_SPEC)
        with Client(server.host, server.port) as probe:
            stats = probe.stats()
    finally:
        server.stop()
    injected = stats.get("events", {}).get("faults_injected",
                                           stats.get("faults_injected", 0))
    if not injected:  # stats layout fallback: search the tree
        def walk(node):
            if isinstance(node, dict):
                for key, val in node.items():
                    if key == "faults_injected" and val:
                        return val
                    found = walk(val)
                    if found:
                        return found
            return 0
        injected = walk(stats)
    assert injected > 0, "REPRO_FAULTS armed but nothing injected"
    assert report["ops"] > 0, "no operations completed under faults"
    assert report["ops_per_s"] >= FAULTS_MIN_OPS_PER_S, (
        "degraded throughput %.1f ops/s below the %.0f floor"
        % (report["ops_per_s"], FAULTS_MIN_OPS_PER_S))
    print("  %-14s %6d ops  %7.1f ops/s  %d fault(s) injected  OK"
          % ("faults", report["ops"], report["ops_per_s"], injected))


def _smoke_overload(tmp):
    """1 execution slot, 6 hammering clients: overload must fast-fail
    (typed, promptly) while work still completes overall."""
    server = ServeProc(tmp, args=["--max-inflight", "1",
                                  "--admission-wait", "0.01",
                                  "--allow-debug-delay"])
    rejects = []
    completions = []
    stop = threading.Event()

    def hammer(idx):
        try:
            client = Client(server.host, server.port)
        except OSError:
            return
        while not stop.is_set():
            try:
                client.ping(delay_ms=30)
                completions.append(idx)
            except ServerOverloadedError:
                rejects.append(idx)
                time.sleep(0.01)
            except (OdeError, OSError):
                return
        client.close()

    try:
        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        time.sleep(3.0)
        stop.set()
        for t in threads:
            t.join(timeout=10)
    finally:
        server.stop()
    assert rejects, "no overload fast-fails under 6x load on 1 slot"
    assert len(completions) > 20, (
        "clients starved: only %d completions" % len(completions))
    assert len(set(completions)) >= 3, (
        "overload fast-fail did not keep multiple clients progressing")
    print("  %-14s %6d completions, %d fast-fail rejects across %d "
          "clients  OK" % ("overload", len(completions), len(rejects),
                           len(set(completions))))


def smoke() -> int:
    print("bench_server --smoke")
    baseline = None
    for gate in (_smoke_baseline, _smoke_faults, _smoke_overload):
        tmp = tempfile.mkdtemp(prefix="bench-server-")
        try:
            result = gate(tmp)
            if gate is _smoke_baseline:
                baseline = result
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    if baseline is not None:  # CI artifact: the client-observed report
        with open("server-report.json", "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
    print("bench_server smoke: all gates passed")
    return 0


def full(out_path, scale=1.0) -> int:
    import datetime
    import platform
    print("bench_server --full (scale %g)" % scale)
    benchmarks = {}
    detail = {}
    # Two rows: a provisioned tier (offered load well under capacity, so
    # the open-loop percentiles measure the server, not the queue) and a
    # deliberately saturated tier (offered > capacity; throughput is the
    # number that matters, latency is queue depth).
    tiers = {
        "oltp": {"count": 8, "rate": 20},
        "saturated": {"count": 8, "rate": 60},
    }
    for tier, knobs in tiers.items():
        spec = dict(SMOKE_SPEC)
        spec["dataset"] = {"items": int(600 * scale)}
        spec["duration_s"] = 8.0
        spec["clients"] = [
            {"count": knobs["count"], "arrival": "poisson",
             "rate": knobs["rate"],
             "mix": {"deref": 5, "update": 2, "pnew": 1, "scan": 1}},
        ]
        tmp = tempfile.mkdtemp(prefix="bench-server-full-")
        try:
            server = ServeProc(tmp)
            try:
                report = _run_remote(server.host, server.port, spec)
            finally:
                server.stop()
            detail["server_%s" % tier] = report
            benchmarks["server/%s/ops_per_s" % tier] = report["ops_per_s"]
            for op, lat in sorted(report["latency_ms"].items()):
                for q in ("p50", "p99"):
                    if q in lat:
                        benchmarks["server/%s/%s_%s_ns" % (tier, op, q)] = \
                            int(lat[q] * 1e6)
            print("  %-10s %6d ops  %7.1f ops/s"
                  % (tier, report["ops"], report["ops_per_s"]))
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    payload = {
        "date": datetime.date.today().isoformat(),
        "host": platform.node(),
        "python": platform.python_version(),
        "benchmarks": benchmarks,
        "detail": detail,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print("wrote %s (%d benchmark keys)" % (out_path, len(benchmarks)))
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--smoke", action="store_true")
    mode.add_argument("--full", action="store_true")
    parser.add_argument("--out", default=None)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()
    if args.smoke:
        return smoke()
    out = args.out or "bench_server_full.json"
    return full(out, scale=args.scale)


if __name__ == "__main__":
    sys.exit(main())
