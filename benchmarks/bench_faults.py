"""Checksum + failpoint overhead guards (PR 5).

The robustness layer's contract is that it is (nearly) free when idle:

* failpoints on the page-file/WAL I/O paths are a ``None``-or-``enabled``
  attribute check per call;
* checksum *verification* runs once per pool admit (cold reads only;
  cache hits never recompute), and *stamping* once per page write.

Two guards enforce the acceptance bound — the instrumented build must
stay within 3% of the same build with checksumming bypassed and the
fault layer detached — and two plain benchmarks record the absolute
costs so BENCH diffs track them over time.
"""

import timeit

import pytest

from conftest import BenchItem, populate_items

from repro import Database
from repro.storage import buffer as buffer_mod

N = 2000


def _measured_pair(tmp_path, workload, prepare, number=3, rounds=10):
    """Time *workload* on ONE database, alternating shipped config and
    robustness-stripped config between rounds; return
    ``(base, overhead)`` where *base* is the stripped-config minimum and
    *overhead* is the smallest per-round (instrumented - stripped) gap.

    Interleaving on a single instance cancels the instance-to-instance
    variance — file layout, allocator state, interpreter warmup — that a
    two-database comparison cannot tell apart from the few-percent
    effect being gated. Pairing the two configs *within* each round and
    gating on the best round's difference additionally cancels
    round-level noise (scheduler, page-cache pressure) that independent
    per-config minima still suffer: one clean round is enough to expose
    the true cost.

    Stripping detaches the fault injector from the page file and WAL and
    swaps the pool's module-level ``verify_checksum`` for a constant.
    Write-side stamping stays on: the gated workloads are read-side, and
    an unstamped file would fail its own close-time reads.
    """
    path = str(tmp_path / "pair.odb")
    db = Database(path)
    populate_items(db, N)
    prepare(db)
    pagefile, wal = db.store._pagefile, db.store._wal
    faults = pagefile._faults
    verify = buffer_mod.verify_checksum
    base = overhead = float("inf")
    try:
        for _ in range(rounds):
            instrumented = timeit.timeit(lambda: workload(db), number=number)
            pagefile._faults = wal._faults = None
            buffer_mod.verify_checksum = lambda buf: True
            try:
                stripped = timeit.timeit(
                    lambda: workload(db), number=number)
            finally:
                pagefile._faults = wal._faults = faults
                buffer_mod.verify_checksum = verify
            base = min(base, stripped)
            overhead = min(overhead, instrumented - stripped)
    finally:
        db.close()
    return base, overhead


def _cold_scan(db):
    db.store._pool.flush_all()
    db.store._pool._frames.clear()
    db._cache.clear()
    db._decoded.clear()
    return sum(1 for _ in db.cluster(BenchItem))


def _hot_deref(db):
    total = 0
    for oid in db._bench_oids:
        total += db.deref(oid).qty
    return total


def _prepare_scan(db):
    assert _cold_scan(db) == N  # prime allocation, keep the pool cold


def _prepare_deref(db):
    db._bench_oids = [obj.oid for obj in db.cluster(BenchItem)][:500]
    _hot_deref(db)  # warm every cache: this benchmark is the hit path


def test_checksums_within_3pct_on_cold_scan(tmp_path):
    base, overhead = _measured_pair(tmp_path, _cold_scan, _prepare_scan)
    # 3% tolerance plus an absolute floor (one page fault outweighs the
    # relative slack at this scale).
    assert overhead <= base * 0.03 + 5e-4, (
        "cold-scan checksum overhead %.3fms on a %.3fms scan (> 3%%)"
        % (overhead * 1e3, base * 1e3))


def test_faultpoints_within_3pct_on_hot_deref(tmp_path):
    base, overhead = _measured_pair(tmp_path, _hot_deref, _prepare_deref)
    assert overhead <= base * 0.03 + 5e-4, (
        "hot-deref fault-layer overhead %.3fms on a %.3fms run (> 3%%)"
        % (overhead * 1e3, base * 1e3))


def test_cold_scan_with_checksums(benchmark, db):
    populate_items(db, N)
    assert benchmark(lambda: _cold_scan(db)) == N


def test_scrub_throughput(benchmark, db):
    populate_items(db, N)
    db.store.checkpoint()

    def scrub():
        return db.scrub()["pages_checked"]

    assert benchmark(scrub) > 0
