"""EXP-17: plan-to-code backend — generated pipelines vs the iterator stack.

Every shape is measured twice: once through the codegen backend (the
default) and once with ``.codegen(False)`` (or ``REPRO_CODEGEN=0`` for
O++ bodies), so a BENCH diff shows exactly what compilation buys per
plan shape — scan/filter, index lookup, fused hash join, aggregation,
and trigger-cascade condition/action bodies.
"""

import pytest

from conftest import BenchItem, populate_items

from repro import A, V, forall
from repro.opp.interp import Interpreter

N = 2000


@pytest.fixture
def plain_db(db):
    return populate_items(db, N)


@pytest.fixture
def indexed_db(db):
    return populate_items(db, N, with_indexes=[("category", "hash")])


class TestFilter:
    def test_scan_filter_compiled(self, benchmark, plain_db):
        q = forall(plain_db.cluster(BenchItem)).suchthat(A.category == 3)
        assert "execution: compiled" in q.explain()
        assert benchmark(q.count) == N // 10

    def test_scan_filter_interpreted(self, benchmark, plain_db):
        q = forall(plain_db.cluster(BenchItem)).suchthat(
            A.category == 3).codegen(False)
        assert "execution: interpreted" in q.explain()
        assert benchmark(q.count) == N // 10

    def test_indexed_filter_compiled(self, benchmark, indexed_db):
        q = forall(indexed_db.cluster(BenchItem)).suchthat(A.category == 3)
        assert benchmark(q.count) == N // 10

    def test_indexed_filter_interpreted(self, benchmark, indexed_db):
        q = forall(indexed_db.cluster(BenchItem)).suchthat(
            A.category == 3).codegen(False)
        assert benchmark(q.count) == N // 10


class TestJoin:
    @pytest.fixture
    def join_db(self, db):
        return populate_items(db, 400)

    def test_fused_join_compiled(self, benchmark, join_db):
        items = join_db.cluster(BenchItem)
        q = forall(items, items).suchthat(V[0].category == V[1].category)
        assert benchmark(q.count) == 10 * 40 * 40

    def test_fused_join_interpreted(self, benchmark, join_db):
        items = join_db.cluster(BenchItem)
        q = forall(items, items).suchthat(
            V[0].category == V[1].category).codegen(False)
        assert benchmark(q.count) == 10 * 40 * 40


class TestAggregate:
    def test_sum_compiled(self, benchmark, plain_db):
        q = forall(plain_db.cluster(BenchItem)).suchthat(A.price < 50.0)

        def agg():
            return sum(item.qty for item in q)

        benchmark(agg)

    def test_sum_interpreted(self, benchmark, plain_db):
        q = forall(plain_db.cluster(BenchItem)).suchthat(
            A.price < 50.0).codegen(False)

        def agg():
            return sum(item.qty for item in q)

        benchmark(agg)


CASCADE_SOURCE = """
class tank {
    public:
        int level;
        int low;
    trigger:
        perpetual watch() : level < low ==> { level = level + 10; };
};

create tank;
persistent tank *t0;
transaction { t0 = pnew tank(100, 5); }
"""


class TestTriggerCascade:
    """Per-commit condition evaluation with compiled vs interpreted bodies.

    A perpetual O++ trigger is activated on many objects; each benchmark
    round commits one write, which re-evaluates every activation's
    condition body. ``REPRO_CODEGEN`` must be set before the class is
    defined — the compile decision is taken in ``_define_class``.
    """

    ACTIVATIONS = 50

    def _setup(self, db):
        interp = Interpreter(db)
        interp.run(CASCADE_SOURCE)
        interp.run("transaction { int i; for (i = 0; i < %d; i = i + 1) "
                   "{ tank* t = pnew tank(100, 5); t->watch(); } }\n"
                   % self.ACTIVATIONS)
        return interp

    def _bench(self, benchmark, interp):
        def commit():
            interp.run("transaction { t0->level = t0->level + 1; }\n")

        benchmark(commit)

    def test_cascade_compiled(self, benchmark, db, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "1")
        self._bench(benchmark, self._setup(db))

    def test_cascade_interpreted(self, benchmark, db, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "0")
        self._bench(benchmark, self._setup(db))
