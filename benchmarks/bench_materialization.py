"""EXP-14: the scan & materialization fast path.

Measures the four layers this optimisation stack adds on top of the
baseline engine:

* **cold clustered scan** — a full iteration with the buffer pool and all
  caches dropped first, so every page comes off disk through the batched
  page-at-a-time pipeline plus readahead;
* **hot repeated scan** — the same iteration with the store's decoded
  page cache warm;
* **hot deref** — repeated pointer chasing with the live-object cache
  cleared each round, so every deref goes through the decoded-object
  cache's LSN-token validation instead of two directory probes, two heap
  reads and two ``decode_value`` calls;
* **clustered vs fragmented** — the same scan over a cluster grown alone
  (contiguous extents) and one grown interleaved with a sibling cluster
  (pages alternate), quantifying what cluster-local placement buys.
"""

import pytest

from conftest import BenchItem, populate_items

from repro import A, forall
from repro.core import IntField, OdeObject, StringField

N = 2000


class BenchShadow(OdeObject):
    """Sibling cluster used to interleave page allocation."""

    name = StringField(default="")
    weight = IntField(default=0)


def _drop_caches(db):
    """Make the next operation cold: object, decoded, page, buffer caches."""
    db._cache.clear()
    db._decoded.clear()
    db.store._page_cache.clear()
    pool = db.store._pool
    pool.flush_all()
    pool.invalidate_all()


@pytest.fixture
def plain_db(db):
    return populate_items(db, N)


@pytest.fixture
def interleaved_db(db):
    """BenchItem pages alternating with BenchShadow pages."""
    db.create(BenchItem, exist_ok=True)
    db.create(BenchShadow, exist_ok=True)
    with db.transaction():
        for i in range(N):
            db.pnew(BenchItem, name="item%06d" % i, price=float(i % 100),
                    qty=i % 1000, category=i % 10)
            db.pnew(BenchShadow, name="pad%06d" % i, weight=i)
    return db


class TestScan:
    def test_cold_clustered_scan(self, benchmark, plain_db):
        handle = plain_db.cluster(BenchItem)

        def scan():
            _drop_caches(plain_db)
            return sum(1 for _ in handle)

        assert benchmark(scan) == N

    def test_hot_repeated_scan(self, benchmark, plain_db):
        handle = plain_db.cluster(BenchItem)
        sum(1 for _ in handle)          # warm every cache

        def scan():
            plain_db._cache.clear()     # re-materialize from page cache
            return sum(1 for _ in handle)

        assert benchmark(scan) == N

    def test_scan_with_compiled_residual(self, benchmark, plain_db):
        q = forall(plain_db.cluster(BenchItem)).suchthat(A.category == 3)
        assert benchmark(q.count) == N // 10


class TestDeref:
    def test_hot_deref(self, benchmark, plain_db):
        oids = list(plain_db.cluster(BenchItem).oids())[:200]
        plain_db._cache.clear()
        for oid in oids:                # warm the decoded cache
            plain_db.deref(oid)

        def chase():
            plain_db._cache.clear()
            total = 0
            for oid in oids:
                total += plain_db.deref(oid).qty
            return total

        benchmark(chase)

    def test_cold_deref(self, benchmark, plain_db):
        oids = list(plain_db.cluster(BenchItem).oids())[:200]

        def chase():
            _drop_caches(plain_db)
            total = 0
            for oid in oids:
                total += plain_db.deref(oid).qty
            return total

        benchmark(chase)


class TestPlacement:
    def test_cold_scan_contiguous(self, benchmark, plain_db):
        handle = plain_db.cluster(BenchItem)

        def scan():
            _drop_caches(plain_db)
            return sum(1 for _ in handle)

        assert benchmark(scan) == N

    def test_cold_scan_interleaved(self, benchmark, interleaved_db):
        handle = interleaved_db.cluster(BenchItem)

        def scan():
            _drop_caches(interleaved_db)
            return sum(1 for _ in handle)

        assert benchmark(scan) == N

    def test_cold_scan_interleaved_after_vacuum(self, benchmark,
                                                interleaved_db):
        interleaved_db.vacuum()
        handle = interleaved_db.cluster(BenchItem)

        def scan():
            _drop_caches(interleaved_db)
            return sum(1 for _ in handle)

        assert benchmark(scan) == N
