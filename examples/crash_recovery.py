"""Crash recovery demonstration: kill the engine mid-flight, lose nothing.

The paper's data model presumes a persistent store that keeps committed
objects safe; this example shows the substrate delivering that promise.
It commits a batch of account transfers, then "crashes" the engine with a
transfer half-done (pages dirty, nothing cleanly closed), reopens the
database, and audits the books.

Run:  python examples/crash_recovery.py
"""

import os
import tempfile

from repro import Database, IntField, OdeObject, StringField, constraint


class Account(OdeObject):
    owner = StringField(default="")
    cents = IntField(default=0)

    @constraint
    def solvent(self):
        return self.cents >= 0


def transfer(db, src, dst, amount):
    with db.transaction():
        src.cents -= amount
        dst.cents += amount


def total(db):
    return sum(a.cents for a in db.cluster(Account))


def main():
    path = os.path.join(tempfile.mkdtemp(), "bank.odb")

    db = Database(path)
    db.create(Account)
    alice = db.pnew(Account, owner="alice", cents=10_000)
    bob = db.pnew(Account, owner="bob", cents=10_000)
    for _ in range(10):
        transfer(db, alice, bob, 250)
    print("after 10 committed transfers: alice=%d bob=%d total=%d"
          % (alice.cents, bob.cents, total(db)))
    assert total(db) == 20_000

    # Begin an 11th transfer but crash before commit — with the dirty
    # pages deliberately pushed to disk, the worst case for recovery.
    from repro.core.database import Transaction
    handle = Transaction(db.store.begin(), db)
    db._txn = handle
    alice.cents -= 9_999
    db._flush(handle.txn_id)
    db.store._pool.flush_all()
    print("crashing with an uncommitted transfer of $99.99 in flight...")
    db.store.crash()
    db._closed = True

    db2 = Database(path)
    report = db2.store.last_recovery
    print("recovery ran: %r" % report)
    accounts = {a.owner: a.cents for a in db2.cluster(Account)}
    print("after recovery: alice=%d bob=%d total=%d"
          % (accounts["alice"], accounts["bob"],
             accounts["alice"] + accounts["bob"]))
    assert accounts["alice"] == 7_500      # the in-flight debit vanished
    assert accounts["alice"] + accounts["bob"] == 20_000
    assert db2.verify() == []
    print("books balance; store verified internally consistent")
    db2.close()


if __name__ == "__main__":
    main()
