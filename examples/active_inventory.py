"""Active inventory: constraints and triggers running a tiny supply chain.

Sections 5 and 6 of the paper: integrity constraints abort violating
transactions; triggers (once-only, perpetual, and timed) make the database
*active* — here they place re-orders, watch for stockouts, and escalate
orders that suppliers fail to deliver within their lead time (driven by
the database's virtual clock).

Run:  python examples/active_inventory.py
"""

import os
import tempfile

from repro import (Database, IntField, OdeObject, StringField, Trigger,
                   constraint)
from repro.errors import ConstraintViolation

EVENTS = []


def record(kind, *detail):
    EVENTS.append((kind,) + detail)
    print("   [event] %s %s" % (kind, " ".join(map(str, detail))))


class StockItem(OdeObject):
    name = StringField(default="")
    qty = IntField(default=0)
    max_inventory = IntField(default=10000)
    reorder_level = IntField(default=0)
    lead_time = IntField(default=48)  # hours

    def consume(self, n):
        self.qty -= n

    def deliver(self, n):
        self.qty += n

    @constraint
    def qty_nonneg(self):
        return self.qty >= 0

    @constraint
    def within_capacity(self):
        return self.qty <= self.max_inventory

    # Once-only: fires when stock dips below the reorder level; the
    # buyer must re-activate after handling it (paper section 6).
    reorder = Trigger(
        condition=lambda self, amount: self.qty <= self.reorder_level,
        action=lambda self, amount: record("REORDER", self.name, amount))

    # Perpetual: keeps watching for total stockout forever.
    stockout = Trigger(
        condition=lambda self: self.qty == 0,
        action=lambda self: record("STOCKOUT", self.name),
        perpetual=True)

    # Timed: if stock hasn't recovered within the lead time, escalate.
    expect_delivery = Trigger(
        condition=lambda self, floor: self.qty >= floor,
        action=lambda self, floor: record("DELIVERED", self.name),
        within=lambda self, floor: float(self.lead_time),
        timeout_action=lambda self, floor: record("LATE", self.name))


def main():
    path = os.path.join(tempfile.mkdtemp(), "active.odb")
    with Database(path) as db:
        db.create(StockItem)
        dram = db.pnew(StockItem, name="512K DRAM", qty=5000,
                       reorder_level=1000, lead_time=48)
        dram.reorder(4000)
        dram.stockout()

        print("1. heavy consumption drives qty below the reorder level:")
        with db.transaction():
            dram.consume(2500)
            dram.consume(1600)  # 900 left
        # -> REORDER fired after commit (weak coupling)

        print("2. we expect the 4000-unit delivery within 48h:")
        dram.expect_delivery(3000)
        db.advance_time(24.0)
        print("   24h later: nothing yet, no event")

        print("3. supplier is late — the deadline passes:")
        db.advance_time(30.0)
        # -> LATE fired

        print("4. delivery finally lands; perpetual stockout never fired:")
        with db.transaction():
            dram.deliver(4000)

        print("5. a constraint violation rolls a whole transaction back:")
        try:
            with db.transaction():
                dram.consume(2000)
                dram.consume(99999)  # would go negative: abort everything
        except ConstraintViolation as exc:
            print("   aborted: %s" % exc)
        print("   qty after rollback: %d (both consumes undone)" % dram.qty)

        print("6. draining to zero fires the perpetual stockout watch:")
        with db.transaction():
            dram.consume(dram.qty)
        with db.transaction():
            dram.deliver(10)
        with db.transaction():
            dram.consume(10)  # zero again: perpetual fires again
        kinds = [e[0] for e in EVENTS]
        assert kinds.count("STOCKOUT") == 2
        assert "REORDER" in kinds and "LATE" in kinds
        print("\nevent log:", kinds)


if __name__ == "__main__":
    main()
