"""Versioned design objects: section 4's CAD scenario.

Engineering databases need multiple versions of each design object. This
example evolves a circuit board through revisions, shows generic vs
specific references, navigates the version chain, prunes history, and
proves old revisions are immutable.

Run:  python examples/versioned_designs.py
"""

import os
import tempfile

from repro import (Database, FloatField, IntField, OdeObject, StringField,
                   newversion, versions, vfirst, vlast)
from repro.errors import NotPersistentError


class Board(OdeObject):
    name = StringField(default="")
    layers = IntField(default=2)
    width_mm = FloatField(default=100.0)
    notes = StringField(default="")


def main():
    path = os.path.join(tempfile.mkdtemp(), "cad.odb")
    with Database(path) as db:
        db.create(Board)

        board = db.pnew(Board, name="controller", layers=2,
                        notes="initial layout")
        rev_a = board.vref  # specific reference: pinned to revision A
        generic = board.oid  # generic reference: always the current rev

        newversion(board)
        board.layers = 4
        board.notes = "rev B: 4-layer for EMI"

        newversion(board)
        board.width_mm = 80.0
        board.notes = "rev C: shrink to 80mm"
        with db.transaction():
            pass

        print("history of %r:" % board.name)
        for vref in versions(board):
            rev = db.deref(vref)
            marker = "*" if vref == board.vref else " "
            print("  %s v%d: %d layers, %.0fmm — %s"
                  % (marker, vref.version, rev.layers, rev.width_mm,
                     rev.notes))

        print("\ngeneric ref sees: %r" % db.deref(generic).notes)
        print("pinned rev A sees: %r" % db.deref(rev_a).notes)

        # Navigation: walk backward from the newest revision.
        print("\nwalking the chain backward:")
        cursor = vlast(board)
        while cursor is not None:
            print("  v%d" % cursor.version)
            cursor = db.vprev(cursor)

        # Old versions are read-only (footnote 16).
        try:
            db.deref(rev_a).layers = 16
        except NotPersistentError as exc:
            print("\nold revisions are immutable: %s" % exc)

        # Prune the middle revision; the chain relinks around it.
        middle = versions(board)[1]
        db.pdelete(middle)
        print("\nafter pruning v%d: chain = %s"
              % (middle.version,
                 [v.version for v in versions(board)]))
        assert db.vnext(vfirst(board)) == board.vref

    # Versions survive reopen.
    with Database(path) as db:
        chain = db.versions(generic)
        print("after reopen: %d revisions, current is v%d"
              % (len(chain), db.current_version(generic).version))


if __name__ == "__main__":
    main()
