"""The paper's inventory program written in O++ itself.

Everything the other examples do from Python, this one does in the
paper's own language, through the bundled interpreter: class declaration
with constraints and triggers, cluster creation, pnew, the forall /
suchthat / by query, and versioning macros.

Run:  python examples/opp_inventory.py
"""

import os
import tempfile

from repro import Database
from repro.opp import Interpreter

PROGRAM = r"""
class supplier {
  public:
    char* name;
    char* address;
    supplier(char* n, char* a) { name = n; address = a; }
};

class stockitem {
  public:
    char* name;
    double price;
    int qty;
    int max_inventory;
    int reorder_level;
    persistent supplier *sup;
    stockitem(char* n, double p, int q, int maxi, int r) {
        name = n; price = p; qty = q;
        max_inventory = maxi; reorder_level = r;
    }
    int consume(int n) { qty = qty - n; return qty; }
  constraint:
    qty >= 0;
    qty <= max_inventory;
  trigger:
    reorder(int n) : qty <= reorder_level ==>
        printf("  [trigger] ordering %d more %s\n", n, name);
};

create supplier;
create stockitem;

persistent supplier *att;
att = pnew supplier("at&t", "berkeley hts, nj");

persistent stockitem *dram;
dram = pnew stockitem("512 dram", 5.00, 7500, 15000, 1000);
dram->sup = att;
pnew stockitem("z80", 2.50, 50, 500, 10);
pnew stockitem("eprom 2764", 2.90, 300, 2000, 20);
pnew stockitem("68000", 12.00, 90, 400, 5);

printf("inventory (price < $3.00), by name:\n");
forall t in stockitem suchthat (t->price < 3.00) by (t->name)
    printf("  %-12s $%g qty=%d\n", t->name, t->price, t->qty);

printf("activating reorder trigger and consuming stock...\n");
dram->reorder(5000);
transaction { dram->consume(6800); }
printf("dram qty is now %d (from %s)\n", dram->qty, dram->sup->name);

printf("versioning the z80 entry...\n");
persistent stockitem *z;
forall t in stockitem suchthat (t->price == 2.50) z = t;
newversion(z);
z->price = 2.75;
printf("z80 was $%g, now $%g\n", deref(vfirst(z))->price, z->price);

int total = 0;
forall t in stockitem total += t->qty;
printf("total units on hand: %d\n", total);
"""


def main():
    path = os.path.join(tempfile.mkdtemp(), "opp.odb")
    with Database(path) as db:
        interp = Interpreter(db, echo=True)
        interp.run(PROGRAM)
        # The O++ classes are real Ode classes; Python can query them too.
        items = db.cluster("stockitem")
        print("(from Python: %d stockitems in the cluster)" % items.count())


if __name__ == "__main__":
    main()
