"""Quickstart: the paper's stockitem inventory database.

Reproduces the running example of sections 2.1-2.5: define a class,
create its cluster, allocate persistent objects with pnew, manipulate
volatile and persistent objects with the same code, and query the extent.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import (A, Database, FloatField, IntField, OdeObject, RefField,
                   StringField, forall)


class Supplier(OdeObject):
    """The paper's supplier class."""

    name = StringField(default="")
    address = StringField(default="")


class StockItem(OdeObject):
    """The paper's stockitem class (section 2.1)."""

    name = StringField(default="")
    weight = FloatField(default=0.0)
    qty = IntField(default=0)
    max_inventory = IntField(default=1000000)
    price = FloatField(default=0.0)
    reorder_level = IntField(default=0)
    supplier = RefField("Supplier")

    def consume(self, n):
        """Take *n* units out of stock."""
        self.qty -= n

    def restock(self, n):
        """Put *n* units back."""
        self.qty += n


def main():
    path = os.path.join(tempfile.mkdtemp(), "inventory.odb")
    with Database(path) as db:
        # The paper: "Before creating a persistent object, the
        # corresponding cluster must exist" — create() is the macro.
        db.create(Supplier)
        db.create(StockItem)

        # pnew: persistent objects. The returned handle is the pointer.
        att = db.pnew(Supplier, name="at&t", address="berkeley hts, nj")
        db.pnew(StockItem, name="512 dram", weight=0.05, qty=7500,
                max_inventory=15000, price=5.00, reorder_level=15,
                supplier=att)
        db.pnew(StockItem, name="z80", weight=0.10, qty=50,
                max_inventory=500, price=2.50, reorder_level=10,
                supplier=att)
        db.pnew(StockItem, name="eprom 2764", weight=0.07, qty=300,
                max_inventory=2000, price=2.90, reorder_level=20,
                supplier=att)

        # Volatile objects use exactly the same code (section 2.2).
        scratch = StockItem(name="scratch", qty=100)
        scratch.consume(30)
        print("volatile object:", scratch.name, "qty", scratch.qty)

        # forall ... suchthat ... by — the declarative iteration of 3.1.
        print("\ncheap stock (price < $3), by name:")
        cheap = forall(db.cluster(StockItem)).suchthat(
            A.price < 3.00).by(A.name)
        for item in cheap:
            print("  %-12s $%.2f  qty=%d  from %s"
                  % (item.name, item.price, item.qty,
                     item.follow("supplier").name))

        # Same query through an index: create one and compare the plan.
        print("\nplan before index:", cheap.explain())
        db.create_index(StockItem, "price", kind="btree")
        print("plan after index: ", cheap.explain())

    # Durability: reopen and everything is still there.
    with Database(path) as db:
        print("\nafter reopen, %d stock items persist"
              % db.cluster(StockItem).count())


if __name__ == "__main__":
    main()
