"""University database: cluster hierarchies and declarative queries.

Reproduces section 3.1.1 of the paper — the person/student/faculty
hierarchy with deep-extent iteration (`forall p in person*`), run-time
type tests, join queries over multiple loop variables, and aggregates.

Run:  python examples/university.py
"""

import os
import random
import tempfile

from repro import (A, Database, FloatField, IntField, OdeObject, StringField,
                   avg, forall, group_by)


class Person(OdeObject):
    name = StringField(default="")
    age = IntField(default=0)

    def income(self):
        return 12000.0


class Student(Person):
    year = IntField(default=1)
    stipend = FloatField(default=9000.0)

    def income(self):
        return self.stipend


class Faculty(Person):
    dept = StringField(default="")
    salary = FloatField(default=70000.0)

    def income(self):
        return self.salary


class TA(Student):
    """Deeper derivation: TAs are students with a teaching salary."""

    ta_pay = FloatField(default=6000.0)

    def income(self):
        return self.stipend + self.ta_pay


def populate(db, rng):
    db.create(Person)
    db.create(Student)
    db.create(Faculty)
    db.create(TA)
    depts = ["cs", "math", "physics"]
    for i in range(40):
        db.pnew(Person, name="person%02d" % i, age=rng.randint(20, 70))
    for i in range(25):
        db.pnew(Student, name="student%02d" % i, age=rng.randint(18, 30),
                year=rng.randint(1, 5))
    for i in range(12):
        db.pnew(Faculty, name="prof%02d" % i, age=rng.randint(30, 70),
                dept=rng.choice(depts),
                salary=60000.0 + 5000 * rng.randint(0, 8))
    for i in range(8):
        db.pnew(TA, name="ta%02d" % i, age=rng.randint(20, 30),
                year=rng.randint(2, 5))


def main():
    rng = random.Random(2026)
    path = os.path.join(tempfile.mkdtemp(), "university.odb")
    with Database(path) as db:
        populate(db, rng)

        people = db.cluster(Person)
        print("extent sizes: person=%d person*=%d student*=%d"
              % (people.count(), people.count(deep=True),
                 db.cluster(Student).count(deep=True)))

        # Section 3.1.1's income program: average income per category.
        incomep = incomes = incomef = 0.0
        np = ns = nf = 0
        for p in people.deep():
            incomep += p.income()
            np += 1
            if isinstance(p, Student):
                incomes += p.income()
                ns += 1
            elif isinstance(p, Faculty):
                incomef += p.income()
                nf += 1
        print("avg income: everyone $%.0f, students $%.0f, faculty $%.0f"
              % (incomep / np, incomes / ns, incomef / nf))

        # The same, declaratively.
        print("avg faculty income (aggregate): $%.0f"
              % avg(forall(db.cluster(Faculty)), lambda f: f.income()))
        print("faculty headcount by department:",
              group_by(forall(db.cluster(Faculty)), key=A.dept,
                       value=A.name, reduce=len))

        # A join: students and faculty of the same age ("advisor pairing").
        pairs = forall(db.cluster(Student).deep(),
                       db.cluster(Faculty)).suchthat(
            lambda s, f: s.age == f.age)
        print("same-age student/faculty pairs: %d" % pairs.count())

        # Index acceleration for a range query.
        db.create_index(Faculty, "salary", kind="btree")
        well_paid = forall(db.cluster(Faculty)).suchthat(
            A.salary >= 90000.0).by(A.salary, desc=True)
        print("plan:", well_paid.explain())
        for f in well_paid:
            print("  %-8s %-8s $%.0f" % (f.name, f.dept, f.salary))


if __name__ == "__main__":
    main()
