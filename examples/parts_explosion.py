"""Parts explosion: recursive (fixpoint) queries over a bill of materials.

Section 3.2 of the paper shows that letting iteration visit elements added
*during* the iteration makes least-fixpoint queries expressible with a
plain loop. This example builds a bill-of-materials DAG and answers
"every part needed to build X" three ways:

1. the paper's literal idiom — iterate an OdeSet while inserting into it;
2. `semi_naive` — the worklist evaluation the idiom amounts to;
3. `fixpoint` — classical naive evaluation, as the baseline.

Run:  python examples/parts_explosion.py
"""

import os
import random
import tempfile

from repro import (Database, IntField, OdeObject, OdeSet, SetField,
                   StringField, fixpoint, semi_naive)


class Part(OdeObject):
    name = StringField(default="")
    cost = IntField(default=1)
    uses = SetField("Part")  # sub-parts (the BOM edges)


def build_bom(db, rng, leaves=40, assemblies=25):
    """A random layered DAG: assemblies use parts from lower layers."""
    db.create(Part)
    layers = [[db.pnew(Part, name="leaf%02d" % i, cost=rng.randint(1, 9))
               for i in range(leaves)]]
    name = 0
    for depth in range(1, 4):
        layer = []
        for _ in range(assemblies // depth):
            asm = db.pnew(Part, name="asm%02d" % name, cost=0)
            name += 1
            pool = [p for lower in layers for p in lower]
            for sub in rng.sample(pool, k=min(4, len(pool))):
                asm.uses.insert(sub.oid)
            asm.uses = asm.uses  # reassign: mark dirty for write-back
            layer.append(asm)
        layers.append(layer)
    with db.transaction():
        pass
    return layers[-1][0]  # a top-level assembly


def main():
    rng = random.Random(7)
    path = os.path.join(tempfile.mkdtemp(), "bom.odb")
    with Database(path) as db:
        top = build_bom(db, rng)
        print("exploding parts for %r" % top.name)

        # 1. The paper's idiom: iterate the set while growing it.
        needed = OdeSet([top.oid])
        for ref in needed:
            for sub in db.deref(ref).uses:
                needed.insert(sub)
        print("paper idiom:      %3d parts" % len(needed))

        # 2. Semi-naive (worklist) evaluation.
        closure = semi_naive([top.oid],
                             lambda ref: db.deref(ref).uses)
        print("semi-naive:       %3d parts" % len(closure))

        # 3. Naive fixpoint evaluation, the baseline.
        naive = fixpoint([top.oid],
                         lambda s: [sub for ref in s.snapshot()
                                    for sub in db.deref(ref).uses])
        print("naive fixpoint:   %3d parts" % len(naive))

        assert needed == closure == naive

        total = sum(db.deref(r).cost for r in closure)
        leaf_count = sum(1 for r in closure if not db.deref(r).uses)
        print("total leaf cost $%d across %d leaf part types"
              % (total, leaf_count))


if __name__ == "__main__":
    main()
