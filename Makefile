PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-concurrency crash-smoke crash-full bench bench-smoke bench-codegen-smoke bench-mvcc-smoke bench-shard-smoke bench-macro-smoke bench-macro-full bench-server-smoke bench-server-full bench-baseline

test:
	$(PYTHON) -m pytest tests/ -x -q

# Threaded stress tests only (deadlock/retry, serializability, lock leaks).
test-concurrency:
	$(PYTHON) -m pytest tests/ -x -q -m concurrency

# Crash/recovery cycles: every failpoint at two hit depths plus the WAL
# tail-damage and torn-page suites (~40 subprocess cycles, <15 s).
crash-smoke:
	$(PYTHON) -m pytest tests/crash/ -x -q -m crash

# The full randomized matrix: 2 seeds x 17 failpoints x 6 hit depths
# (204 cycles, ~1 min). Run before touching wal.py/recovery.py/pagefile.py.
crash-full:
	REPRO_CRASH_FULL=1 $(PYTHON) -m pytest tests/crash/ -x -q -m crash

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Fast local perf gate: a ~30 s benchmark subset plus the tier-1 tests,
# so a perf regression or breakage fails before a PR goes up. Also
# exports a metrics snapshot from a scratch database in Prometheus text
# format and lints it, so the exposition endpoint can't silently rot.
bench-smoke:
	$(PYTHON) benchmarks/run_baseline.py --smoke
	$(PYTHON) -m pytest tests/ -x -q
	$(PYTHON) -m repro stats /tmp/bench-smoke.odb --format=prom > metrics.prom
	$(PYTHON) -m repro promlint metrics.prom
	rm -f /tmp/bench-smoke.odb

# Codegen perf + correctness gate: the fused-vs-interpreted benchmark
# shapes (EXP-17) plus the differential harness that proves compiled
# and interpreted pipelines return identical rows under concurrency.
bench-codegen-smoke:
	$(PYTHON) -m pytest benchmarks/bench_codegen.py --benchmark-only \
		--benchmark-max-time=0.3 --benchmark-min-rounds=3 -q
	$(PYTHON) -m pytest tests/query/test_codegen.py \
		tests/query/test_codegen_differential.py -x -q

# MVCC gate: readers-vs-writer throughput (snapshot reads must let the
# writer through at >= 2x the S-lock baseline) and the single-thread
# overhead geomean, plus the snapshot rounds of the differential harness
# and the MVCC behaviour suite.
bench-mvcc-smoke:
	$(PYTHON) -m pytest benchmarks/bench_concurrency.py::TestMvccScanReaders \
		--benchmark-only -q
	$(PYTHON) -m pytest tests/concurrency/test_mvcc.py \
		"tests/query/test_codegen_differential.py::TestSnapshotDifferential" -x -q

# Sharded-storage gate (EXP-18): the scan benchmarks plus the two
# acceptance ratios — parallel cold scan >= 1.5x the single-latch
# baseline (>= 4 cores; skipped below that) and single-shard facade
# parity within 1.1x of the raw page walk — plus the shard unit tests
# and the shard-parallel race suite.
bench-shard-smoke:
	$(PYTHON) -m pytest benchmarks/bench_shard.py --benchmark-only \
		--benchmark-max-time=0.3 --benchmark-min-rounds=3 -q
	$(PYTHON) benchmarks/bench_shard.py --gate
	$(PYTHON) -m pytest tests/storage/test_sharding.py \
		tests/concurrency/test_shard_parallel.py -x -q

# Macro workload gate (EXP-19): a tiny tier of every built-in scenario
# (OLTP mix, ingest-then-analyze, trigger/version churn) with per-op
# latency percentiles, one REPRO_FAULTS row proving the driver absorbs
# injected faults, and the paired instrumented-vs-stripped overhead
# check (<= 3%). Also writes a smoke report + timeline for the CI
# artifact and exercises the bench-diff regression gate against itself.
bench-macro-smoke:
	$(PYTHON) benchmarks/bench_macro.py --smoke
	$(PYTHON) -m repro simulate oltp --scale 0.15 --duration 1.0 \
		--report macro-report.json --timeline macro-timeline.jsonl
	$(PYTHON) -m repro top macro-timeline.jsonl --once
	$(PYTHON) -m repro bench-diff macro-report.json macro-report.json

# Full macro tier: scenario specs at full scale, recorded as a
# BENCH-compatible json (per-op p50/p99 in ns + full reports in detail).
bench-macro-full:
	$(PYTHON) benchmarks/bench_macro.py --full

# Network-server gate (EXP-20): N-client open-loop driver against a real
# `repro serve` subprocess over TCP — throughput floor + client-observed
# p99 ceiling, a REPRO_FAULTS row (socket read errors; clients reconnect
# and finish), and the overload drill (1-slot server fast-fails with
# ServerOverloadedError while clients keep progressing). Plus the wire
# protocol / server behavior suites, a remote simulate for the CI
# artifact, and the server kill-and-audit crash cycles.
bench-server-smoke:
	$(PYTHON) benchmarks/bench_server.py --smoke
	$(PYTHON) -m pytest tests/server/ tests/obs/test_workload_remote.py \
		tests/core/test_retry.py tests/storage/test_quiesce.py -x -q
	$(PYTHON) -m pytest tests/crash/test_server_crash.py -x -q -m crash

# Full server tier: 8-client open-loop rounds at full scale, recorded as
# a BENCH-compatible json.
bench-server-full:
	$(PYTHON) benchmarks/bench_server.py --full

# Full suite, recorded as BENCH_<date>.json and diffed against the last
# committed baseline (see benchmarks/run_baseline.py).
bench-baseline:
	$(PYTHON) benchmarks/run_baseline.py --diff
