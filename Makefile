PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-concurrency bench bench-smoke bench-baseline

test:
	$(PYTHON) -m pytest tests/ -x -q

# Threaded stress tests only (deadlock/retry, serializability, lock leaks).
test-concurrency:
	$(PYTHON) -m pytest tests/ -x -q -m concurrency

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Fast local perf gate: a ~30 s benchmark subset plus the tier-1 tests,
# so a perf regression or breakage fails before a PR goes up. Also
# exports a metrics snapshot from a scratch database in Prometheus text
# format and lints it, so the exposition endpoint can't silently rot.
bench-smoke:
	$(PYTHON) benchmarks/run_baseline.py --smoke
	$(PYTHON) -m pytest tests/ -x -q
	$(PYTHON) -m repro stats /tmp/bench-smoke.odb --format=prom > metrics.prom
	$(PYTHON) -m repro promlint metrics.prom
	rm -f /tmp/bench-smoke.odb

# Full suite, recorded as BENCH_<date>.json and diffed against the last
# committed baseline (see benchmarks/run_baseline.py).
bench-baseline:
	$(PYTHON) benchmarks/run_baseline.py --diff
