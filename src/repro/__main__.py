"""The Ode environment's command line: run O++ programs against a database.

Usage::

    python -m repro DB.odb script.opp [script2.opp ...]   # run programs
    python -m repro DB.odb                                # interactive
    python -m repro DB.odb --schema                       # show clusters
    python -m repro DB.odb --verify                       # integrity check
    python -m repro verify DB.odb                         # same, subcommand
    python -m repro DB.odb --vacuum                       # compact storage
    python -m repro scrub DB.odb                          # checksum scrub
    python -m repro DB.odb --scrub                        # same, flag form
    python -m repro stats DB.odb                          # runtime counters
    python -m repro DB.odb --stats                        # same, flag form
    python -m repro stats DB.odb --format=json            # machine readable
    python -m repro stats DB.odb --format=prom            # Prometheus text
    python -m repro events DB.odb                         # event log
    python -m repro promlint metrics.prom                 # lint exposition
    python -m repro serve DB.odb --port 7117              # network server
    python -m repro simulate oltp --report out.json       # macro workload
    python -m repro simulate oltp --remote HOST:PORT      # drive a server
    python -m repro top timeline.jsonl                    # live dashboard
    python -m repro bench-diff old.json new.json          # regression gate

In interactive mode each submitted chunk is parsed and executed against
the open database; state (variables, classes) persists for the session.
A chunk ends on an empty line, so multi-line declarations work.
"""

from __future__ import annotations

import argparse
import json
import sys

from .core.database import Database
from .errors import OdeError
from .obs import load_events, parse_prometheus, render_prometheus
from .obs.metrics import PromParseError
from .opp.interp import Interpreter


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run O++ programs against an Ode database.")
    parser.add_argument("database", help="path to the database file "
                                         "(created if absent)")
    parser.add_argument("scripts", nargs="*",
                        help="O++ source files to execute, in order")
    parser.add_argument("--schema", action="store_true",
                        help="print the cluster schema and exit")
    parser.add_argument("--verify", action="store_true",
                        help="run the integrity checker and exit")
    parser.add_argument("--vacuum", action="store_true",
                        help="compact every cluster and exit")
    parser.add_argument("--scrub", action="store_true",
                        help="checksum-verify every on-disk page and exit "
                             "(bad pages are quarantined; exit status 1)")
    parser.add_argument("--stats", action="store_true",
                        help="print runtime statistics (buffer pool, WAL, "
                             "plan cache, per-cluster optimizer stats) "
                             "and exit")
    parser.add_argument("--format", choices=("text", "json", "prom"),
                        default="text", dest="format",
                        help="stats output format: human text (default), "
                             "JSON, or Prometheus text exposition")
    parser.add_argument("--events", action="store_true",
                        help="print the persisted event log "
                             "(slow queries, lock waits, deadlocks, "
                             "group-commit flushes, vacuums) and exit")
    parser.add_argument("--limit", type=int, default=None,
                        help="with --events: show only the last N events")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress program output (still executed)")
    parser.add_argument("--dump-code", action="store_true",
                        help="with explain statements: also print the "
                             "generated (compiled) query source")
    return parser


def _print_schema(db: Database) -> None:
    schema = db.schema()
    if not schema:
        print("(no clusters)")
        return
    for name, info in sorted(schema.items()):
        bases = " : " + ", ".join(info["parents"]) if info["parents"] else ""
        print("cluster %s%s  (%s objects)" % (name, bases, info["objects"]))
        for fname, ftype in info["fields"].items():
            marker = ""
            if fname in info["indexes"]:
                marker = "   [indexed: %s]" % info["indexes"][fname]
            print("    %-16s %s%s" % (fname, ftype, marker))
        if info["constraints"]:
            print("    constraints: %s" % ", ".join(info["constraints"]))
        if info["triggers"]:
            print("    triggers:    %s" % ", ".join(info["triggers"]))


def _print_stats(db: Database) -> None:
    stats = db.stats()
    pool = stats["buffer_pool"]
    wal = stats["wal"]
    cache = stats["plan_cache"]
    print("buffer pool:  %d hits, %d misses (%.1f%% hit rate), "
          "%d evictions"
          % (pool.get("hits", 0), pool.get("misses", 0),
             100.0 * pool.get("hits", 0)
             / max(1, pool.get("hits", 0) + pool.get("misses", 0)),
             pool.get("evictions", 0)))
    print("readahead:    %d prefetch calls, %d pages fetched"
          % (pool.get("prefetches", 0), pool.get("readahead_pages", 0)))
    pages = stats["page_cache"]
    print("page cache:   %d hits, %d misses, %d/%d pages cached"
          % (pages["hits"], pages["misses"], pages["cached_pages"],
             pages["capacity_pages"]))
    decoded = stats["decoded_cache"]
    print("decoded cache: %d hits, %d misses (%.1f%% hit rate), "
          "%d evictions, %d/%d entries"
          % (decoded["hits"], decoded["misses"],
             100.0 * decoded["hits"]
             / max(1, decoded["hits"] + decoded["misses"]),
             decoded["evictions"], decoded["entries"],
             decoded["capacity"]))
    print("WAL:          %d appends, %d fsyncs, %d flush calls, "
          "%d group deferrals (durability: %s)"
          % (wal["appends"], wal["syncs"], wal["flush_calls"],
             wal["group_deferrals"], wal["durability"]))
    print("plan cache:   %d hits, %d misses (%.1f%% hit rate), "
          "%d entries, %d invalidations"
          % (cache["hits"], cache["misses"], 100.0 * cache["hit_rate"],
             cache["entries"], cache["invalidations"]))
    print("pages:        %d in file" % stats["pages"])
    shards = stats["shards"]
    if shards["count"] > 1:
        print("shards:       %d shards, %d recluster run(s), "
              "%d object(s) migrated"
              % (shards["count"], shards["recluster_runs"],
                 shards["recluster_moved_objects"]))
        for entry in shards["per_shard"]:
            print("  shard %-3d %6d pages (%.1f%% occupancy), "
                  "%d scan(s)"
                  % (entry["shard"], entry["pages"],
                     100.0 * entry["occupancy"],
                     shards["scans"][entry["shard"]]))
    frag = stats["fragmentation"]
    if frag:
        print("cluster placement:")
        for name, info in sorted(frag.items()):
            print("  %-20s %4d pages in %3d run(s), span %4d "
                  "(fragmentation %.2f)"
                  % (name, info["pages"], info["runs"], info["span"],
                     info["fragmentation"]))
    # Persisted summaries exist for analyzed/mutated clusters only; load
    # every cluster's summary so the report is complete.
    for name in db.clusters():
        db.cluster_stats.get(name)
    clusters = db.stats()["clusters"]
    if clusters:
        print("cluster statistics:")
        for name, info in sorted(clusters.items()):
            print("  %-20s %6d objects  (%s)"
                  % (name, info["objects"], info["precision"]))
            for field, fs in info["fields"].items():
                print("      .%-16s %6d distinct, min=%r max=%r"
                      % (field, fs["n_distinct"], fs["min"], fs["max"]))


def _print_events(db: Database, limit=None) -> None:
    """Merge the persisted sidecar with this process's (empty) ring."""
    events = load_events(str(db.store.path) + ".events")
    events.extend(db.events.snapshot())
    if limit is not None:
        events = events[-limit:]
    if not events:
        print("(no events)")
        return
    for event in events:
        data = " ".join("%s=%s" % (k, json.dumps(v, sort_keys=True))
                        for k, v in sorted(event["data"].items()))
        print("#%-5d %.3f %-18s %s"
              % (event["seq"], event["ts"], event["kind"], data))


def _promlint(argv) -> int:
    """``python -m repro promlint [FILE]`` — validate Prometheus text."""
    if argv and argv[0] not in ("-",):
        with open(argv[0], "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    try:
        families = parse_prometheus(text)
    except PromParseError as exc:
        print("promlint: %s" % exc, file=sys.stderr)
        return 1
    samples = sum(len(v) for v in families.values())
    print("ok: %d metric families, %d samples" % (len(families), samples))
    return 0


def _repl(db: Database, interp: Interpreter) -> None:
    print("Ode environment — O++ interpreter. Empty line runs the chunk; "
          "Ctrl-D exits.")
    lines: list = []
    while True:
        try:
            prompt = "o++> " if not lines else "...> "
            line = input(prompt)
        except EOFError:
            print()
            return
        except KeyboardInterrupt:
            print("\n(interrupted)")
            lines = []
            continue
        if line.strip() == "" and lines:
            source = "\n".join(lines)
            lines = []
            try:
                before = len(interp.output)
                interp.run(source)
                sys.stdout.write("".join(interp.output[before:]))
            except OdeError as exc:
                print("error: %s" % exc)
        elif line.strip() or lines:
            lines.append(line)


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Subcommand forms: ``python -m repro stats DB.odb`` etc.
    if argv and argv[0] == "promlint":
        return _promlint(argv[1:])
    if argv and argv[0] == "serve":
        from .server.cli import cmd_serve
        return cmd_serve(argv[1:])
    if argv and argv[0] in ("simulate", "top", "bench-diff"):
        from .obs.workload import cli as workload_cli
        handler = {"simulate": workload_cli.cmd_simulate,
                   "top": workload_cli.cmd_top,
                   "bench-diff": workload_cli.cmd_bench_diff}[argv[0]]
        return handler(argv[1:])
    if argv and argv[0] == "stats":
        argv = argv[1:] + ["--stats"]
    elif argv and argv[0] == "events":
        argv = argv[1:] + ["--events"]
    elif argv and argv[0] == "scrub":
        argv = argv[1:] + ["--scrub"]
    elif argv and argv[0] == "verify":
        argv = argv[1:] + ["--verify"]
    args = _build_parser().parse_args(argv)
    db = Database(args.database)
    try:
        if args.stats:
            if args.format == "json":
                print(json.dumps(db.stats(), indent=2, sort_keys=True,
                                 default=str))
            elif args.format == "prom":
                sys.stdout.write(render_prometheus(db.metrics))
            else:
                _print_stats(db)
            return 0
        if args.events:
            _print_events(db, args.limit)
            return 0
        if args.schema:
            _print_schema(db)
            return 0
        if args.verify:
            problems = db.verify()
            if problems:
                for problem in problems:
                    print("PROBLEM:", problem)
                return 1
            print("ok: store is internally consistent")
            return 0
        if args.scrub:
            report = db.scrub()
            print("scrub: %d pages checked, %d bad, %d quarantined"
                  % (report["pages_checked"], len(report["bad_pages"]),
                     report["quarantined"]))
            if report["bad_pages"]:
                print("bad pages: %s"
                      % ", ".join(str(p) for p in report["bad_pages"]))
                print("database is read-only (degraded): %s"
                      % report["degraded"])
                return 1
            return 0
        if args.vacuum:
            for name, report in db.vacuum().items():
                print("%s: %d objects rewritten, %d pages freed"
                      % (name, report["objects"], report["pages_freed"]))
            return 0
        interp = Interpreter(db, echo=False, dump_code=args.dump_code)
        if args.scripts:
            for path in args.scripts:
                before = len(interp.output)
                interp.run_file(path)
                if not args.quiet:
                    sys.stdout.write("".join(interp.output[before:]))
            return 0
        _repl(db, interp)
        return 0
    except OdeError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    finally:
        db.close()


if __name__ == "__main__":
    sys.exit(main())
