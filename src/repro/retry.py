"""Shared jittered-exponential-backoff retry policy.

One policy object, two consumers: ``Database.run_transaction`` (server-
side transaction retry on deadlock / snapshot conflict / transient I/O)
and the network client's request loop (those plus overload and drain
fast-fails). Both used to carry their own ad-hoc ``backoff * 2**n``
arithmetic; centralizing it means the delay curve, the cap, and the
jitter band are specified — and tested — in exactly one place.

The delay for attempt *n* (1-based) is::

    min(cap, base_delay * 2 ** (n - 1)) * uniform(jitter_lo, jitter_hi)

which preserves the historical ``run_transaction`` behaviour
(``base * 2**(attempt-1)`` with a 0.5–1.5x jitter band) while adding the
cap the unbounded original lacked. A policy built with an explicit
``rng=random.Random(seed)`` is fully deterministic, which is how the
tests pin the curve.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Type

from .errors import TransientError

#: Delay curve defaults: 10 ms doubling up to 1 s, 0.5–1.5x jitter.
DEFAULT_RETRIES = 3
DEFAULT_BASE_DELAY = 0.01
DEFAULT_CAP = 1.0
DEFAULT_JITTER = (0.5, 1.5)


class RetryPolicy:
    """How many times to retry, and how long to sleep between attempts.

    Immutable value object; safe to share across threads (each ``call``
    keeps its own attempt counter; the rng is only read under the GIL
    and jitter quality does not require isolation).
    """

    __slots__ = ("retries", "base_delay", "cap", "jitter_lo", "jitter_hi",
                 "rng", "sleep")

    def __init__(self, retries: int = DEFAULT_RETRIES,
                 base_delay: float = DEFAULT_BASE_DELAY,
                 cap: float = DEFAULT_CAP,
                 jitter=DEFAULT_JITTER,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep):
        if retries < 0:
            raise ValueError("retries must be >= 0, got %r" % (retries,))
        if base_delay < 0 or cap < 0:
            raise ValueError("delays must be >= 0")
        self.retries = retries
        self.base_delay = base_delay
        self.cap = cap
        self.jitter_lo, self.jitter_hi = jitter
        #: injectable for determinism; the module-level ``random`` is the
        #: shared default (same source run_transaction always used)
        self.rng = rng
        #: injectable for tests (collect delays instead of sleeping)
        self.sleep = sleep

    def delay(self, attempt: int) -> float:
        """Sleep duration before retry *attempt* (1-based), jittered."""
        raw = min(self.cap, self.base_delay * (2 ** (attempt - 1)))
        uniform = (self.rng.uniform if self.rng is not None
                   else random.uniform)
        return raw * uniform(self.jitter_lo, self.jitter_hi)

    def call(self, fn: Callable, retry_on: Type[BaseException] =
             TransientError, on_retry: Optional[Callable] = None):
        """Run ``fn()``; on a *retry_on* error, back off and re-run.

        Up to ``retries`` re-runs (``retries + 1`` attempts total); the
        last error is re-raised when the budget is exhausted. *on_retry*,
        when given, is called as ``on_retry(attempt, exc)`` before each
        backoff sleep — the hook both consumers use to bump their retry
        counters.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as exc:
                attempt += 1
                if attempt > self.retries:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(self.delay(attempt))

    def __repr__(self):
        return ("RetryPolicy(retries=%d, base_delay=%g, cap=%g, "
                "jitter=(%g, %g))"
                % (self.retries, self.base_delay, self.cap,
                   self.jitter_lo, self.jitter_hi))


#: Shared default instance (allocation-free fast path for callers that
#: accept a policy argument and fall back to this when given None).
DEFAULT_POLICY = RetryPolicy()
