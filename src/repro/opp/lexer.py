"""Lexer for the O++ subset.

Tokenizes the C-flavoured surface syntax of the paper's examples:
identifiers, keywords, numeric/string/char literals, the full C operator
set, plus the O++ extras — ``==>`` (trigger arrow), ``<<`` / ``>>`` (set
insertion/removal), and the keywords ``persistent``, ``pnew``, ``pdelete``,
``forall``, ``suchthat``, ``by``, ``trigger``, ``constraint``,
``perpetual``, ``within``, ``create``, ``newversion`` and friends.

Comments: ``//`` to end of line and ``/* ... */``.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from ..errors import OppSyntaxError

KEYWORDS = {
    "class", "public", "private", "protected",
    "int", "double", "float", "char", "void", "bool", "long", "unsigned",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "new", "delete", "this", "true", "false", "null", "nullptr",
    # O++ extensions
    "persistent", "pnew", "pdelete", "create",
    "forall", "in", "suchthat", "by", "is",
    "constraint", "trigger", "perpetual", "within",
    "set", "transaction",
}

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "==>", "<<=", ">>=",
    "->", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "++", "--", "::",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", ":", "?",
]


class Token(NamedTuple):
    kind: str        # "ident", "keyword", "int", "float", "string",
                     # "char", "op", "eof"
    value: str
    line: int
    column: int

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (self.kind, self.value,
                                         self.line, self.column)


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*; raises :class:`OppSyntaxError` on bad input."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str):
        raise OppSyntaxError(msg, line=line, column=col)

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                error("unterminated /* comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # identifiers / keywords (ASCII only: Unicode "digits" like '²'
        # satisfy str.isdigit() but are not valid numerals)
        if (ch.isascii() and ch.isalpha()) or ch == "_":
            start = i
            while i < n and ((source[i].isascii() and source[i].isalnum())
                             or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, col))
            col += i - start
            continue
        # numbers (ASCII digits only)
        digits = "0123456789"
        if ch in digits or (ch == "." and i + 1 < n
                            and source[i + 1] in digits):
            start = i
            is_float = False
            while i < n and source[i] in digits:
                i += 1
            if i < n and source[i] == "." and (i + 1 >= n or source[i + 1] != "."):
                is_float = True
                i += 1
                while i < n and source[i] in digits:
                    i += 1
            if i < n and source[i] in "eE":
                # Only an exponent if digits follow (past an optional
                # sign): "0E" is the int 0 then the identifier E, not a
                # malformed float literal.
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j] in digits:
                    is_float = True
                    i = j
                    while i < n and source[i] in digits:
                        i += 1
            text = source[start:i]
            tokens.append(Token("float" if is_float else "int",
                                text, line, col))
            col += i - start
            continue
        # string literals
        if ch == '"':
            start_line, start_col = line, col
            i += 1
            col += 1
            chars = []
            while i < n and source[i] != '"':
                if source[i] == "\\" and i + 1 < n:
                    chars.append(_unescape(source[i + 1]))
                    i += 2
                    col += 2
                elif source[i] == "\n":
                    error("newline inside string literal")
                else:
                    chars.append(source[i])
                    i += 1
                    col += 1
            if i >= n:
                raise OppSyntaxError("unterminated string literal",
                                     line=start_line, column=start_col)
            i += 1
            col += 1
            tokens.append(Token("string", "".join(chars),
                                start_line, start_col))
            continue
        # char literals
        if ch == "'":
            start_col = col
            i += 1
            if i < n and source[i] == "\\" and i + 1 < n:
                value = _unescape(source[i + 1])
                i += 2
                col += 3
            elif i < n:
                value = source[i]
                i += 1
                col += 2
            else:
                error("unterminated char literal")
            if i >= n or source[i] != "'":
                error("unterminated char literal")
            i += 1
            col += 1
            tokens.append(Token("char", value, line, start_col))
            continue
        # operators
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            error("unexpected character %r" % ch)
    tokens.append(Token("eof", "", line, col))
    return tokens


def _unescape(ch: str) -> str:
    return {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
            "\\": "\\", '"': '"', "'": "'"}.get(ch, ch)
