"""Recursive-descent parser for the O++ subset.

Grammar highlights (see the module docs of :mod:`repro.opp` for the full
summary):

* C-like declarations, statements and expressions with C precedence.
* ``class`` declarations with multiple (public) inheritance, access
  labels, ``constraint:`` and ``trigger:`` sections (paper sections 2, 5,
  6).
* ``persistent T *`` pointer types, ``pnew`` / ``pdelete`` / ``create``.
* ``forall x in C [suchthat (e)] [by (e) [desc]] stmt`` with multiple
  loop variables (either chained ``forall`` or comma separated), and the
  ``C*`` deep-extent form.
* ``for x in set_expr stmt`` iteration over set values.
* ``expr is [persistent] T [*]`` run-time type tests.
* ``transaction { ... }`` blocks.

The parser is permissive about types (they guide field construction, not
static checking — the interpreter is dynamically typed like the Python
substrate underneath).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..errors import OppSyntaxError
from . import ast_nodes as ast
from .lexer import Token, tokenize

_PRIMITIVE_TYPES = {"int", "double", "float", "char", "bool", "void",
                    "long", "unsigned"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class Parser:
    """One-shot parser: construct with source, call :meth:`parse`."""

    def __init__(self, source: str, known_types: Optional[Set[str]] = None):
        self.tokens = tokenize(source)
        self.pos = 0
        # Class names seen so far; lets `stockitem *p;` parse as a decl.
        self.known_types: Set[str] = set(known_types or ())

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def match(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.check(kind, value):
            want = value if value is not None else kind
            raise OppSyntaxError("expected %r, found %r" % (want, tok.value),
                                 line=tok.line, column=tok.column)
        return self.advance()

    def error(self, message: str) -> OppSyntaxError:
        tok = self.peek()
        return OppSyntaxError(message + " (at %r)" % tok.value,
                              line=tok.line, column=tok.column)

    # -- entry point --------------------------------------------------------------

    def parse(self) -> ast.Program:
        decls: List[ast.Node] = []
        while not self.check("eof"):
            decls.append(self.top_level())
        return ast.Program(decls)

    def top_level(self) -> ast.Node:
        if self.check("keyword", "class"):
            return self.class_decl()
        if self._looks_like_function():
            return self.func_decl()
        return self.statement()

    def _looks_like_function(self) -> bool:
        """type ident ( ... ) { — distinguishes functions from the rest."""
        save = self.pos
        try:
            if not self._try_type():
                return False
            if not self.check("ident"):
                return False
            self.advance()
            if not self.check("op", "("):
                return False
            depth = 0
            i = self.pos
            while i < len(self.tokens):
                tok = self.tokens[i]
                if tok.kind == "op" and tok.value == "(":
                    depth += 1
                elif tok.kind == "op" and tok.value == ")":
                    depth -= 1
                    if depth == 0:
                        nxt = self.tokens[i + 1] if i + 1 < len(self.tokens) else None
                        return (nxt is not None and nxt.kind == "op"
                                and nxt.value == "{")
                i += 1
            return False
        finally:
            self.pos = save

    def _try_type(self) -> bool:
        """Consume a type name if one is present; used for lookahead only."""
        if self.check("keyword") and self.peek().value in _PRIMITIVE_TYPES:
            self.advance()
            while self.match("op", "*"):
                pass
            return True
        if self.check("keyword", "persistent"):
            self.advance()
            if self.check("ident"):
                self.advance()
                while self.match("op", "*"):
                    pass
                return True
            return False
        if self.check("keyword", "set"):
            self.advance()
            if self.match("op", "<"):
                self._try_type()
                self.match("op", ">")
            return True
        if self.check("ident") and self.peek().value in self.known_types:
            self.advance()
            while self.match("op", "*"):
                pass
            return True
        return False

    # -- types --------------------------------------------------------------

    def type_name(self) -> ast.TypeName:
        line = self.peek().line
        persistent = bool(self.match("keyword", "persistent"))
        tok = self.peek()
        if tok.kind == "keyword" and tok.value in _PRIMITIVE_TYPES:
            self.advance()
            # "unsigned int", "long long" etc: swallow extra type words
            while (self.check("keyword")
                   and self.peek().value in _PRIMITIVE_TYPES):
                self.advance()
            name = tok.value
        elif tok.kind == "keyword" and tok.value == "set":
            self.advance()
            element = None
            if self.match("op", "<"):
                element = self.type_name()
                self.expect("op", ">")
            pointer = bool(self.match("op", "*"))
            return ast.TypeName("set", pointer=pointer,
                                persistent=persistent, element=element,
                                line=line)
        elif tok.kind == "ident":
            self.advance()
            name = tok.value
        else:
            raise self.error("expected a type name")
        pointer = False
        while self.match("op", "*"):
            pointer = True
        return ast.TypeName(name, pointer=pointer, persistent=persistent,
                            line=line)

    def _at_type(self) -> bool:
        """Is the current token the start of a declaration type?"""
        tok = self.peek()
        if tok.kind == "keyword" and tok.value in (
                _PRIMITIVE_TYPES | {"persistent", "set"}):
            return True
        if tok.kind == "ident" and tok.value in self.known_types:
            nxt = self.peek(1)
            if nxt.kind == "op" and nxt.value == "*":
                return True
            if nxt.kind == "ident":
                return True
        return False

    # -- class declarations ------------------------------------------------------

    def class_decl(self) -> ast.ClassDecl:
        line = self.expect("keyword", "class").line
        name = self.expect("ident").value
        self.known_types.add(name)
        bases: List[str] = []
        if self.match("op", ":"):
            while True:
                self.match("keyword", "public")
                self.match("keyword", "private")
                bases.append(self.expect("ident").value)
                if not self.match("op", ","):
                    break
        self.expect("op", "{")
        fields: List[ast.FieldDecl] = []
        methods: List[ast.MethodDecl] = []
        constraints: List[ast.ConstraintDecl] = []
        triggers: List[ast.TriggerDecl] = []
        access = "private"  # C++ default for class
        while not self.check("op", "}"):
            if (self.check("keyword") and self.peek().value in
                    ("public", "private", "protected")
                    and self.peek(1).kind == "op"
                    and self.peek(1).value == ":"):
                access = self.advance().value
                self.advance()
                continue
            if self.check("keyword", "constraint"):
                self.advance()
                self.expect("op", ":")
                constraints.extend(self._constraint_section())
                continue
            if self.check("keyword", "trigger"):
                self.advance()
                self.expect("op", ":")
                triggers.extend(self._trigger_section())
                continue
            self._class_member(name, access, fields, methods)
        self.expect("op", "}")
        self.match("op", ";")
        return ast.ClassDecl(name, bases, fields, methods, constraints,
                             triggers, line=line)

    def _class_member(self, class_name: str, access: str,
                      fields: List[ast.FieldDecl],
                      methods: List[ast.MethodDecl]) -> None:
        line = self.peek().line
        # Constructor: `ClassName(params) {...}` with no return type.
        if (self.check("ident", class_name) and self.peek(1).kind == "op"
                and self.peek(1).value == "("):
            self.advance()
            params = self._params()
            body = self.block()
            methods.append(ast.MethodDecl(None, class_name, params, body,
                                          access, True, line=line))
            self.match("op", ";")
            return
        type_name = self.type_name()
        member = self.expect("ident").value
        if self.check("op", "("):
            params = self._params()
            body = self.block()
            methods.append(ast.MethodDecl(type_name, member, params, body,
                                          access, False, line=line))
            self.match("op", ";")
            return
        fields.append(ast.FieldDecl(type_name, member, access, line=line))
        while self.match("op", ","):
            extra = self.expect("ident").value
            fields.append(ast.FieldDecl(type_name, extra, access, line=line))
        self.expect("op", ";")

    def _constraint_section(self) -> List[ast.ConstraintDecl]:
        """Expressions, one per ';', until the next section or '}'."""
        out: List[ast.ConstraintDecl] = []
        i = 0
        while not (self.check("op", "}") or self._at_section_keyword()):
            line = self.peek().line
            expr = self.expression()
            self.expect("op", ";")
            out.append(ast.ConstraintDecl("constraint_%d" % i, expr,
                                          line=line))
            i += 1
        return out

    def _trigger_section(self) -> List[ast.TriggerDecl]:
        out: List[ast.TriggerDecl] = []
        while not (self.check("op", "}") or self._at_section_keyword()):
            out.append(self._trigger_decl())
        return out

    def _at_section_keyword(self) -> bool:
        return (self.check("keyword") and self.peek().value in
                ("public", "private", "protected", "constraint", "trigger")
                and self.peek(1).kind == "op" and self.peek(1).value == ":")

    def _trigger_decl(self) -> ast.TriggerDecl:
        line = self.peek().line
        perpetual = bool(self.match("keyword", "perpetual"))
        name = self.expect("ident").value
        params = self._params()
        self.expect("op", ":")
        within = None
        if self.match("keyword", "within"):
            within = self.expression()
            self.expect("op", ":")
        condition = self.expression()
        self.expect("op", "==>")
        action = self._trigger_action()
        timeout_action = None
        if self.match("op", ":"):
            timeout_action = self._trigger_action()
        self.expect("op", ";")
        return ast.TriggerDecl(name, params, perpetual, within, condition,
                               action, timeout_action, line=line)

    def _trigger_action(self) -> ast.Node:
        if self.check("op", "{"):
            return self.block()
        return ast.ExprStmt(self.expression(), line=self.peek().line)

    def _params(self) -> List[ast.Param]:
        self.expect("op", "(")
        params: List[ast.Param] = []
        if not self.check("op", ")"):
            while True:
                line = self.peek().line
                type_name = self.type_name()
                pname = self.expect("ident").value
                params.append(ast.Param(type_name, pname, line=line))
                if not self.match("op", ","):
                    break
        self.expect("op", ")")
        return params

    # -- functions -----------------------------------------------------------------

    def func_decl(self) -> ast.FuncDecl:
        line = self.peek().line
        return_type = self.type_name()
        name = self.expect("ident").value
        params = self._params()
        body = self.block()
        return ast.FuncDecl(return_type, name, params, body, line=line)

    # -- statements ---------------------------------------------------------------

    def block(self) -> ast.Block:
        line = self.expect("op", "{").line
        body: List[ast.Node] = []
        while not self.check("op", "}"):
            body.append(self.statement())
        self.expect("op", "}")
        return ast.Block(body, line=line)

    def statement(self) -> ast.Node:
        tok = self.peek()
        if tok.kind == "op" and tok.value == "{":
            return self.block()
        if tok.kind == "op" and tok.value == ";":
            self.advance()
            return ast.Block([], line=tok.line)
        if tok.kind == "keyword":
            if tok.value == "if":
                return self._if_stmt()
            if tok.value == "while":
                return self._while_stmt()
            if tok.value == "do":
                return self._do_while_stmt()
            if tok.value == "for":
                return self._for_stmt()
            if tok.value == "forall":
                return self._forall_stmt()
            if tok.value == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.expression()
                self.expect("op", ";")
                return ast.Return(value, line=tok.line)
            if tok.value == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(line=tok.line)
            if tok.value == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(line=tok.line)
            if tok.value == "pdelete":
                self.advance()
                target = self.expression()
                self.expect("op", ";")
                return ast.PDelete(target, line=tok.line)
            if tok.value == "create":
                self.advance()
                paren = bool(self.match("op", "("))
                name = self.expect("ident").value
                if paren:
                    self.expect("op", ")")
                self.expect("op", ";")
                return ast.Create(name, line=tok.line)
            if tok.value == "transaction":
                self.advance()
                body = self.block()
                return ast.TransactionBlock(body, line=tok.line)
        if tok.kind == "ident" and tok.value == "explain":
            # Soft keyword: only a statement when followed by `forall`
            # or `analyze` — `explain` stays usable as a variable name.
            nxt = self.peek(1)
            if ((nxt.kind == "keyword" and nxt.value == "forall")
                    or (nxt.kind == "ident" and nxt.value == "analyze")):
                return self._explain_stmt()
        if self._at_type():
            return self._var_decl_stmt()
        expr = self.expression()
        self.expect("op", ";")
        return ast.ExprStmt(expr, line=tok.line)

    def _var_decl_stmt(self) -> ast.Node:
        line = self.peek().line
        type_name = self.type_name()
        decls: List[ast.Node] = []
        while True:
            name = self.expect("ident").value
            init = None
            if self.match("op", "="):
                init = self.expression()
            decls.append(ast.VarDecl(type_name, name, init, line=line))
            if not self.match("op", ","):
                break
        self.expect("op", ";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(decls, line=line)

    def _if_stmt(self) -> ast.If:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        then = self.statement()
        otherwise = None
        if self.match("keyword", "else"):
            otherwise = self.statement()
        return ast.If(cond, then, otherwise, line=line)

    def _while_stmt(self) -> ast.While:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        body = self.statement()
        return ast.While(cond, body, line=line)

    def _do_while_stmt(self) -> ast.DoWhile:
        line = self.expect("keyword", "do").line
        body = self.statement()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(cond, body, line=line)

    def _for_stmt(self) -> ast.Node:
        line = self.expect("keyword", "for").line
        if self.check("op", "("):
            self.advance()
            init = None
            if not self.check("op", ";"):
                if self._at_type():
                    type_name = self.type_name()
                    name = self.expect("ident").value
                    ini = None
                    if self.match("op", "="):
                        ini = self.expression()
                    init = ast.VarDecl(type_name, name, ini, line=line)
                else:
                    init = ast.ExprStmt(self.expression(), line=line)
            self.expect("op", ";")
            cond = None
            if not self.check("op", ";"):
                cond = self.expression()
            self.expect("op", ";")
            step = None
            if not self.check("op", ")"):
                step = ast.ExprStmt(self.expression(), line=line)
            self.expect("op", ")")
            body = self.statement()
            return ast.CFor(init, cond, step, body, line=line)
        # `for x in expr stmt`
        var = self.expect("ident").value
        self.expect("keyword", "in")
        source = self.expression()
        body = self.statement()
        return ast.ForIn(var, source, body, line=line)

    def _explain_stmt(self) -> ast.Explain:
        line = self.advance().line  # 'explain'
        analyze = False
        if self.check("ident", "analyze"):
            self.advance()
            analyze = True
        if not self.check("keyword", "forall"):
            raise self.error("expected 'forall' after 'explain'")
        query = self._forall_stmt()
        return ast.Explain(query, analyze, line=line)

    def _forall_stmt(self) -> ast.Forall:
        line = self.peek().line
        sources: List[Tuple[str, ast.Node, bool]] = []
        while self.match("keyword", "forall"):
            var = self.expect("ident").value
            self.expect("keyword", "in")
            source, deep = self._forall_source()
            sources.append((var, source, deep))
            # allow `, forall y in ...` or immediately another `forall`
            self.match("op", ",")
            if not self.check("keyword", "forall"):
                break
        as_of = None
        # `as of (expr)` — soft keywords, so `as` and `of` stay valid
        # identifiers everywhere else.
        if self.check("ident", "as") and self.peek(1).kind == "ident" \
                and self.peek(1).value == "of":
            self.advance()
            self.advance()
            self.expect("op", "(")
            as_of = self.expression()
            self.expect("op", ")")
        suchthat = None
        if self.match("keyword", "suchthat"):
            self.expect("op", "(")
            suchthat = self.expression()
            self.expect("op", ")")
        by = None
        by_desc = False
        if self.match("keyword", "by"):
            self.expect("op", "(")
            by = self.expression()
            self.expect("op", ")")
            if self.check("ident", "desc"):
                self.advance()
                by_desc = True
        body = self.statement()
        return ast.Forall(sources, suchthat, by, by_desc, body, line=line,
                          as_of=as_of)

    def _forall_source(self) -> Tuple[ast.Node, bool]:
        """A cluster name (optionally starred: deep) or a set expression."""
        if self.check("ident"):
            nxt = self.peek(1)
            if nxt.kind == "op" and nxt.value == "*":
                name = self.advance().value
                self.advance()  # '*'
                return ast.Name(name, line=self.peek().line), True
            if nxt.kind == "keyword" and nxt.value in ("suchthat", "by",
                                                       "forall"):
                name = self.advance().value
                return ast.Name(name, line=self.peek().line), False
            if nxt.kind == "op" and nxt.value in ("{", ","):
                name = self.advance().value
                return ast.Name(name, line=self.peek().line), False
        return self.expression(), False

    # -- expressions (C precedence climbing) ----------------------------------

    def expression(self) -> ast.Node:
        return self.assignment()

    def assignment(self) -> ast.Node:
        left = self.conditional()
        tok = self.peek()
        if tok.kind == "op" and tok.value in _ASSIGN_OPS:
            if not isinstance(left, (ast.Name, ast.Member, ast.Index)):
                raise self.error("invalid assignment target")
            self.advance()
            value = self.assignment()
            return ast.Assign(left, tok.value, value, line=tok.line)
        return left

    def conditional(self) -> ast.Node:
        cond = self.logical_or()
        if self.match("op", "?"):
            then = self.expression()
            self.expect("op", ":")
            otherwise = self.conditional()
            return ast.Conditional(cond, then, otherwise, line=cond.line)
        return cond

    def logical_or(self) -> ast.Node:
        left = self.logical_and()
        while self.check("op", "||"):
            line = self.advance().line
            left = ast.Binary("||", left, self.logical_and(), line=line)
        return left

    def logical_and(self) -> ast.Node:
        left = self.equality()
        while self.check("op", "&&"):
            line = self.advance().line
            left = ast.Binary("&&", left, self.equality(), line=line)
        return left

    def equality(self) -> ast.Node:
        left = self.relational()
        while self.check("op", "==") or self.check("op", "!="):
            tok = self.advance()
            left = ast.Binary(tok.value, left, self.relational(),
                              line=tok.line)
        return left

    def relational(self) -> ast.Node:
        left = self.shift()
        while True:
            if self.check("keyword", "is"):
                tok = self.advance()
                persistent = bool(self.match("keyword", "persistent"))
                tname = self.expect("ident").value
                self.match("op", "*")
                left = ast.IsType(left, tname, persistent, line=tok.line)
                continue
            if (self.check("op", "<") or self.check("op", ">")
                    or self.check("op", "<=") or self.check("op", ">=")):
                tok = self.advance()
                left = ast.Binary(tok.value, left, self.shift(),
                                  line=tok.line)
                continue
            return left

    def shift(self) -> ast.Node:
        left = self.additive()
        while self.check("op", "<<") or self.check("op", ">>"):
            tok = self.advance()
            left = ast.Binary(tok.value, left, self.additive(),
                              line=tok.line)
        return left

    def additive(self) -> ast.Node:
        left = self.multiplicative()
        while self.check("op", "+") or self.check("op", "-"):
            tok = self.advance()
            left = ast.Binary(tok.value, left, self.multiplicative(),
                              line=tok.line)
        return left

    def multiplicative(self) -> ast.Node:
        left = self.unary()
        while (self.check("op", "*") or self.check("op", "/")
               or self.check("op", "%")):
            tok = self.advance()
            left = ast.Binary(tok.value, left, self.unary(), line=tok.line)
        return left

    def unary(self) -> ast.Node:
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("-", "!", "~", "+"):
            self.advance()
            return ast.Unary(tok.value, self.unary(), line=tok.line)
        if tok.kind == "op" and tok.value in ("++", "--"):
            self.advance()
            target = self.unary()
            return ast.IncDec(target, tok.value, line=tok.line)
        if tok.kind == "keyword" and tok.value in ("new", "pnew"):
            self.advance()
            tname = self.expect("ident").value
            args: List[ast.Node] = []
            if self.match("op", "("):
                if not self.check("op", ")"):
                    while True:
                        args.append(self.expression())
                        if not self.match("op", ","):
                            break
                self.expect("op", ")")
            return ast.New(tname, args, tok.value == "pnew", line=tok.line)
        return self.postfix()

    def postfix(self) -> ast.Node:
        expr = self.primary()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.value in ("->", "."):
                self.advance()
                field = self.expect("ident").value
                expr = ast.Member(expr, field, line=tok.line)
            elif tok.kind == "op" and tok.value == "(":
                self.advance()
                args: List[ast.Node] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.expression())
                        if not self.match("op", ","):
                            break
                self.expect("op", ")")
                expr = ast.Call(expr, args, line=tok.line)
            elif tok.kind == "op" and tok.value == "[":
                self.advance()
                index = self.expression()
                self.expect("op", "]")
                expr = ast.Index(expr, index, line=tok.line)
            elif tok.kind == "op" and tok.value in ("++", "--"):
                self.advance()
                expr = ast.IncDec(expr, tok.value, line=tok.line)
            else:
                return expr

    def primary(self) -> ast.Node:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return ast.Literal(int(tok.value), line=tok.line)
        if tok.kind == "float":
            self.advance()
            return ast.Literal(float(tok.value), line=tok.line)
        if tok.kind == "string":
            self.advance()
            return ast.Literal(tok.value, line=tok.line)
        if tok.kind == "char":
            self.advance()
            return ast.Literal(tok.value, line=tok.line)
        if tok.kind == "keyword":
            if tok.value == "this":
                self.advance()
                return ast.This(line=tok.line)
            if tok.value == "true":
                self.advance()
                return ast.Literal(True, line=tok.line)
            if tok.value == "false":
                self.advance()
                return ast.Literal(False, line=tok.line)
            if tok.value in ("null", "nullptr"):
                self.advance()
                return ast.Literal(None, line=tok.line)
        if tok.kind == "ident":
            self.advance()
            return ast.Name(tok.value, line=tok.line)
        if tok.kind == "op" and tok.value == "(":
            self.advance()
            expr = self.expression()
            self.expect("op", ")")
            return expr
        raise self.error("expected an expression")


def parse(source: str, known_types: Optional[Set[str]] = None) -> ast.Program:
    """Parse O++ *source* into a :class:`~repro.opp.ast_nodes.Program`."""
    return Parser(source, known_types).parse()
