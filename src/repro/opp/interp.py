"""Interpreter for the O++ subset.

Executes a parsed :class:`~repro.opp.ast_nodes.Program` against a live
:class:`~repro.core.database.Database`. O++ class declarations become real
Ode classes (built with :class:`~repro.core.objects.OdeMeta`), so objects
created from O++ live in the same clusters, obey the same constraints and
fire the same triggers as objects created from Python — the two front ends
are interchangeable views of one database.

The paper's programs run nearly verbatim::

    class stockitem {
        public:
            char* name;
            double price;
            int qty;
            stockitem(char* n, double p, int q) { name = n; price = p; qty = q; }
        constraint:
            qty >= 0;
        trigger:
            reorder(int n) : qty <= 100 ==> order(this, n);
    };

    create stockitem;
    persistent stockitem *sip;
    sip = pnew stockitem("512 dram", 5.00, 7500);
    forall t in stockitem suchthat (t->price < 10.0) by (t->name)
        printf("%s %d\\n", t->name, t->qty);

Output from ``printf`` is captured on :attr:`Interpreter.output` (and
optionally echoed to a stream).
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, List, Optional

from ..core.database import Database
from ..core.fields import (BoolField, CharField, Field, FloatField, IntField,
                           RefField, SetField, StringField)
from ..core.objects import OdeMeta, OdeObject, class_registry
from ..core.oid import Oid, Vref
from ..core.sets import OdeSet
from ..core.triggers import Trigger, TriggerId
from ..errors import (OppNameError, OppRuntimeError, OppSyntaxError,
                      OppTypeError)
from . import ast_nodes as ast
from . import codegen as opp_codegen
from .parser import Parser


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class Scope:
    """A lexical scope: locals chained to a parent, optionally an object.

    Name lookup order inside a member function (per C++): locals, then
    the object's members, then enclosing/global scope.
    """

    __slots__ = ("vars", "parent", "this")

    def __init__(self, parent: Optional["Scope"] = None,
                 this: Optional[OdeObject] = None):
        self.vars: Dict[str, Any] = {}
        self.parent = parent
        self.this = this if this is not None else (
            parent.this if parent is not None else None)

    def lookup(self, name: str, line: int = 0) -> Any:
        scope = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        if self.this is not None and self._this_has(name):
            return getattr(self.this, name)
        raise OppNameError("undefined name %r" % name, line=line)

    def _this_has(self, name: str) -> bool:
        cls = type(self.this)
        return (name in cls._ode_fields or name in cls._ode_triggers
                or hasattr(cls, name))

    def assign(self, name: str, value: Any) -> None:
        scope = self
        while scope is not None:
            if name in scope.vars:
                scope.vars[name] = value
                return
            scope = scope.parent
        if (self.this is not None
                and name in type(self.this)._ode_fields):
            setattr(self.this, name, value)
            return
        # New name: created in the current scope (script-style).
        self.vars[name] = value

    def declare(self, name: str, value: Any) -> None:
        self.vars[name] = value


class Interpreter:
    """Evaluates O++ programs against a Database."""

    def __init__(self, db: Database, echo: bool = False,
                 dump_code: bool = False):
        self.db = db
        self.echo = echo
        #: when set, ``explain`` statements also print generated code
        self.dump_code = dump_code
        self.globals = Scope()
        #: lines printed by printf/puts, for tests and callers
        self.output: List[str] = []
        self._step_hook = None
        self._ticks = 0
        self._install_builtins()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, source: str, step_hook=None) -> List[str]:
        """Parse and execute *source*; returns the captured output lines.

        *step_hook*, when given, is called (with no arguments) before
        each top-level declaration/statement executes — the network
        session uses it to enforce request deadlines and stream output
        between statements. An exception it raises aborts execution at
        a statement boundary.
        """
        known = set(class_registry())
        known.update(name for name, v in self.globals.vars.items()
                     if isinstance(v, OdeMeta))
        program = Parser(source, known_types=known).parse()
        self.execute(program, step_hook=step_hook)
        return self.output

    def run_file(self, path: str) -> List[str]:
        with open(path) as handle:
            return self.run(handle.read())

    def execute(self, program: ast.Program, step_hook=None) -> None:
        prev = self._step_hook
        self._step_hook = step_hook
        try:
            for decl in program.decls:
                if step_hook is not None:
                    step_hook()
                if isinstance(decl, ast.ClassDecl):
                    self._define_class(decl)
                elif isinstance(decl, ast.FuncDecl):
                    self._define_function(decl)
                else:
                    self.exec_stmt(decl, self.globals)
        finally:
            self._step_hook = prev

    def _loop_tick(self) -> None:
        """Periodic hook call inside loop bodies (guarded at call
        sites on ``self._step_hook``), so a single long while/for/forall
        statement cannot outrun a deadline — the hook otherwise only
        runs at top-level statement boundaries."""
        self._ticks += 1
        if not self._ticks & 1023:
            self._step_hook()

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------

    def _define_class(self, decl: ast.ClassDecl) -> type:
        bases: List[type] = []
        for base_name in decl.bases:
            base = self._find_class(base_name, decl.line)
            bases.append(base)
        if not bases:
            bases = [OdeObject]
        namespace: Dict[str, Any] = {"__doc__": "O++ class %s" % decl.name}

        # Access control map for the interpreter (C++-style encapsulation:
        # private/protected members are invisible outside member functions).
        access: Dict[str, str] = {}
        for base in bases:
            access.update(getattr(base, "_opp_access", {}))
        for field in decl.fields:
            access[field.name] = field.access
        for method in decl.methods:
            if not method.is_constructor:
                access[method.name] = method.access
        namespace["_opp_access"] = access

        for field in decl.fields:
            namespace[field.name] = self._make_field(field.type_name)

        # Positional order for the default constructor: inherited fields
        # first (base declaration order), then this class's own fields —
        # so `pnew student("name", year)` works across the hierarchy.
        field_order: List[str] = []
        for base in bases:
            for fname in getattr(base, "_ode_fields", {}):
                if fname not in field_order:
                    field_order.append(fname)
        for field in decl.fields:
            if field.name not in field_order:
                field_order.append(field.name)
        ctor = next((m for m in decl.methods if m.is_constructor), None)
        namespace["__init__"] = self._make_init(decl.name, field_order, ctor)

        for method in decl.methods:
            if method.is_constructor:
                continue
            namespace[method.name] = self._make_method(method)

        # field names visible to compiled constraint/trigger bodies —
        # assignments to these lower to a member store
        fields = frozenset(field_order)
        for i, cons in enumerate(decl.constraints):
            namespace["constraint_%d" % i] = self._make_constraint(cons,
                                                                   fields)

        for trig in decl.triggers:
            namespace[trig.name] = self._make_trigger(trig, fields)

        cls = OdeMeta(decl.name, tuple(bases), namespace)
        self.globals.declare(decl.name, cls)
        return cls

    def _make_field(self, type_name: ast.TypeName) -> Field:
        name = type_name.name
        if name == "int" or name == "long" or name == "unsigned":
            return IntField(default=0)
        if name in ("double", "float"):
            return FloatField(default=0.0)
        if name == "bool":
            return BoolField(default=False)
        if name == "char":
            if type_name.pointer:
                return StringField(default="")
            return CharField(default="")
        if name == "set":
            target = type_name.element.name if type_name.element else None
            return SetField(target=target)
        # class-typed member: a reference either way (embedded objects are
        # modelled as references — Python has no value semantics for them).
        return RefField(target=name)

    def _default_for(self, type_name: ast.TypeName) -> Any:
        name = type_name.name
        if name in ("int", "long", "unsigned"):
            return 0
        if name in ("double", "float"):
            return 0.0
        if name == "bool":
            return False
        if name == "char":
            return ""
        if name == "set":
            return OdeSet()
        return None

    def _make_init(self, class_name: str, field_order: List[str],
                   ctor: Optional[ast.MethodDecl]) -> Callable:
        interp = self

        if ctor is None:
            def __init__(self, *args, **kwargs):
                OdeObject.__init__(self, **kwargs)
                own_fields = field_order
                if len(args) > len(own_fields):
                    raise OppTypeError(
                        "%s() takes at most %d positional arguments"
                        % (class_name, len(own_fields)))
                for fname, value in zip(own_fields, args):
                    setattr(self, fname, value)
            return __init__

        params = ctor.params
        body = ctor.body

        def __init__(self, *args, **kwargs):
            OdeObject.__init__(self, **kwargs)
            if len(args) != len(params):
                raise OppTypeError(
                    "%s() takes %d arguments, got %d"
                    % (class_name, len(params), len(args)))
            scope = Scope(interp.globals, this=self)
            for param, value in zip(params, args):
                scope.declare(param.name, value)
            try:
                interp.exec_stmt(body, scope)
            except _Return:
                pass
        return __init__

    def _make_method(self, decl: ast.MethodDecl) -> Callable:
        interp = self
        params = decl.params
        body = decl.body
        name = decl.name

        def method(self, *args):
            if len(args) != len(params):
                raise OppTypeError("%s() takes %d arguments, got %d"
                                   % (name, len(params), len(args)))
            scope = Scope(interp.globals, this=self)
            for param, value in zip(params, args):
                scope.declare(param.name, value)
            try:
                interp.exec_stmt(body, scope)
            except _Return as ret:
                return ret.value
            return None
        method.__name__ = name
        return method

    def _make_constraint(self, decl: ast.ConstraintDecl,
                         fields: frozenset = frozenset()) -> Callable:
        interp = self
        expr = decl.expr

        compiled = opp_codegen.compile_expr(
            self, expr, (), "bool", "constraint %s" % decl.name, fields)
        if compiled is not None:
            compiled.__name__ = decl.name
            compiled._is_ode_constraint = True
            return compiled

        def check(self):
            scope = Scope(interp.globals, this=self)
            return bool(interp.eval(expr, scope))
        check.__name__ = decl.name
        check._is_ode_constraint = True
        return check

    def _make_trigger(self, decl: ast.TriggerDecl,
                      fields: frozenset = frozenset()) -> Trigger:
        interp = self
        params = decl.params
        pnames = tuple(p.name for p in params)
        label = "trigger %s" % decl.name

        def bind(self, args) -> Scope:
            scope = Scope(interp.globals, this=self)
            for param, value in zip(params, args):
                scope.declare(param.name, value)
            return scope

        def condition(self, *args):
            return bool(interp.eval(decl.condition, bind(self, args)))

        def action(self, *args):
            interp.exec_stmt(decl.action, bind(self, args))

        # Bodies compile once here, at class-definition time, so cascades
        # stop re-walking the AST per firing; anything the lowering does
        # not cover keeps the interpreted closure above.
        condition = opp_codegen.with_fallback(
            opp_codegen.compile_expr(self, decl.condition, pnames, "bool",
                                     label + " condition", fields),
            len(params), condition)
        action = opp_codegen.with_fallback(
            opp_codegen.compile_body(self, decl.action, pnames,
                                     label + " action", fields),
            len(params), action)

        within = None
        if decl.within is not None:
            def within(self, *args):  # noqa: F811 — deliberate rebind
                return float(interp.eval(decl.within, bind(self, args)))
            within = opp_codegen.with_fallback(
                opp_codegen.compile_expr(self, decl.within, pnames, "float",
                                         label + " within", fields),
                len(params), within)

        timeout_action = None
        if decl.timeout_action is not None:
            def timeout_action(self, *args):
                interp.exec_stmt(decl.timeout_action, bind(self, args))
            timeout_action = opp_codegen.with_fallback(
                opp_codegen.compile_body(self, decl.timeout_action, pnames,
                                         label + " timeout", fields),
                len(params), timeout_action)

        return Trigger(condition=condition, action=action,
                       perpetual=decl.perpetual, within=within,
                       timeout_action=timeout_action)

    def _define_function(self, decl: ast.FuncDecl) -> None:
        interp = self
        params = decl.params
        body = decl.body

        def function(*args):
            if len(args) != len(params):
                raise OppTypeError("%s() takes %d arguments, got %d"
                                   % (decl.name, len(params), len(args)))
            scope = Scope(interp.globals)
            for param, value in zip(params, args):
                scope.declare(param.name, value)
            try:
                interp.exec_stmt(body, scope)
            except _Return as ret:
                return ret.value
            return None
        function.__name__ = decl.name
        self.globals.declare(decl.name, function)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def exec_stmt(self, node: ast.Node, scope: Scope) -> None:
        method = getattr(self, "_stmt_" + type(node).__name__, None)
        if method is None:
            raise OppRuntimeError("cannot execute %s node"
                                  % type(node).__name__, line=node.line)
        method(node, scope)

    def _stmt_Block(self, node: ast.Block, scope: Scope) -> None:
        inner = Scope(scope)
        for stmt in node.body:
            self.exec_stmt(stmt, inner)

    def _stmt_ExprStmt(self, node: ast.ExprStmt, scope: Scope) -> None:
        self.eval(node.expr, scope)

    def _stmt_VarDecl(self, node: ast.VarDecl, scope: Scope) -> None:
        if node.init is not None:
            value = self.eval(node.init, scope)
        else:
            value = self._default_for(node.type_name)
        scope.declare(node.name, value)

    def _stmt_If(self, node: ast.If, scope: Scope) -> None:
        if self.eval(node.cond, scope):
            self.exec_stmt(node.then, scope)
        elif node.otherwise is not None:
            self.exec_stmt(node.otherwise, scope)

    def _stmt_While(self, node: ast.While, scope: Scope) -> None:
        while self.eval(node.cond, scope):
            if self._step_hook is not None:
                self._loop_tick()
            try:
                self.exec_stmt(node.body, scope)
            except _Break:
                break
            except _Continue:
                continue

    def _stmt_DoWhile(self, node: ast.DoWhile, scope: Scope) -> None:
        while True:
            if self._step_hook is not None:
                self._loop_tick()
            try:
                self.exec_stmt(node.body, scope)
            except _Break:
                break
            except _Continue:
                pass
            if not self.eval(node.cond, scope):
                break

    def _stmt_CFor(self, node: ast.CFor, scope: Scope) -> None:
        inner = Scope(scope)
        if node.init is not None:
            self.exec_stmt(node.init, inner)
        while node.cond is None or self.eval(node.cond, inner):
            if self._step_hook is not None:
                self._loop_tick()
            try:
                self.exec_stmt(node.body, inner)
            except _Break:
                break
            except _Continue:
                pass
            if node.step is not None:
                self.exec_stmt(node.step, inner)

    def _stmt_ForIn(self, node: ast.ForIn, scope: Scope) -> None:
        source = self.eval(node.source, scope)
        if source is None:
            raise OppRuntimeError("for-in over null", line=node.line)
        inner = Scope(scope)
        inner.declare(node.var, None)
        for item in source:
            if self._step_hook is not None:
                self._loop_tick()
            inner.vars[node.var] = self._materialize(item)
            try:
                self.exec_stmt(node.body, inner)
            except _Break:
                break
            except _Continue:
                continue

    def _stmt_Forall(self, node: ast.Forall, scope: Scope) -> None:
        started = time.perf_counter_ns()
        rows_seen = 0
        try:
            rows_seen = self._run_forall(node, scope)
        finally:
            record = getattr(self.db, "_record_query", None)
            if record is not None:
                record("opp.forall", "forall at line %d" % node.line,
                       time.perf_counter_ns() - started, rows_seen)

    def _run_forall(self, node: ast.Forall, scope: Scope) -> int:
        iterables = [(var, self._forall_source(src, deep, scope, node.line))
                     for var, src, deep in node.sources]
        if node.as_of is not None:
            iterables = self._apply_as_of(iterables, node.as_of, scope,
                                          node.line)
        rows = self._forall_optimized(iterables, node, scope)
        if rows is None:
            rows = self._forall_rows(iterables, node, scope)
        if node.by is not None:
            rows = list(rows)
            var_names = [var for var, _ in iterables]

            def sort_key(binding):
                inner = Scope(scope)
                for name, value in zip(var_names, binding):
                    inner.declare(name, value)
                return self.eval(node.by, inner)
            rows.sort(key=sort_key, reverse=node.by_desc)
        inner = Scope(scope)
        for var, _ in iterables:
            inner.declare(var, None)
        seen = 0
        for binding in rows:
            if self._step_hook is not None:
                self._loop_tick()
            seen += 1
            for (var, _), value in zip(iterables, binding):
                inner.vars[var] = value
            try:
                self.exec_stmt(node.body, inner)
            except _Break:
                break
            except _Continue:
                continue
        return seen

    def _forall_optimized(self, iterables, node: ast.Forall, scope: Scope):
        """Try to run a single-cluster suchthat through the query optimizer.

        When the clause is a conjunction of ``var->field <op> constant``
        comparisons, it compiles to an introspectable predicate and the
        optimizer may serve it from an index — the paper's "clauses can
        be used to advantage in query optimization" realised for O++
        source, not just the Python API. Returns None when the clause is
        not compilable (the interpreted path then runs it faithfully).

        The query runs through :class:`repro.query.Forall`, so repeated
        forall statements hit the database's compiled-plan and codegen
        caches instead of re-planning (and re-interpreting) every time.
        """
        from ..core.clusters import AsOfHandle, ClusterHandle
        if len(iterables) != 1 or node.suchthat is None:
            return None
        var, source = iterables[0]
        if not isinstance(source, (ClusterHandle, AsOfHandle)):
            return None
        pred = self._compile_predicate(node.suchthat, var, scope)
        if pred is None:
            return None
        from ..query.iterate import Forall as QueryForall
        query = QueryForall(source).suchthat(pred)
        return ((obj,) for obj in query)

    def _compile_predicate(self, expr: ast.Node, var: str, scope: Scope):
        """Compile *expr* to a repro.query Predicate, or None.

        Supported shapes: ``var->field <op> constant-expr`` (either side),
        conjunctions thereof with ``&&``. The constant side must evaluate
        without referencing the loop variable.
        """
        from ..query.predicates import And, Compare
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            left = self._compile_predicate(expr.left, var, scope)
            right = self._compile_predicate(expr.right, var, scope)
            if left is None or right is None:
                return None
            return And(left, right)
        if isinstance(expr, ast.Binary) and expr.op in (
                "==", "!=", "<", "<=", ">", ">="):
            field = self._var_field(expr.left, var)
            other, flip = expr.right, False
            if field is None:
                field = self._var_field(expr.right, var)
                other, flip = expr.left, True
            if field is None or self._mentions_var(other, var):
                return None
            try:
                value = self.eval(other, scope)
            except Exception:
                return None
            value = self._as_ref(value)
            op = expr.op
            if flip:
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            return Compare(field, op, value)
        return None

    @staticmethod
    def _var_field(node: ast.Node, var: str):
        """``var->field`` -> the field name, else None."""
        if (isinstance(node, ast.Member)
                and isinstance(node.target, ast.Name)
                and node.target.ident == var):
            return node.field
        return None

    def _mentions_var(self, node: ast.Node, var: str) -> bool:
        if isinstance(node, ast.Name):
            return node.ident == var
        for slot in type(node).__slots__:
            child = getattr(node, slot, None)
            if isinstance(child, ast.Node) and self._mentions_var(child, var):
                return True
            if isinstance(child, list):
                for item in child:
                    if (isinstance(item, ast.Node)
                            and self._mentions_var(item, var)):
                        return True
        return False

    def _forall_rows(self, iterables, node: ast.Forall, scope: Scope):
        var_names = [var for var, _ in iterables]

        def recurse(depth: int, chosen: tuple):
            if depth == len(iterables):
                if node.suchthat is not None:
                    inner = Scope(scope)
                    for name, value in zip(var_names, chosen):
                        inner.declare(name, value)
                    if not self.eval(node.suchthat, inner):
                        return
                yield chosen
                return
            _, source = iterables[depth]
            for item in source:
                yield from recurse(depth + 1,
                                   chosen + (self._materialize(item),))
        return recurse(0, ())

    def _forall_source(self, src: ast.Node, deep: bool, scope: Scope,
                       line: int):
        if isinstance(src, ast.Name):
            cls = self._maybe_class(src.ident)
            if cls is not None:
                handle = self.db.cluster(cls)
                return handle.deep() if deep else handle
            value = scope.lookup(src.ident, line)
        else:
            value = self.eval(src, scope)
        if isinstance(value, OdeMeta):
            handle = self.db.cluster(value)
            return handle.deep() if deep else handle
        if value is None:
            raise OppRuntimeError("forall over null", line=line)
        return value

    def _apply_as_of(self, iterables, expr: ast.Node, scope: Scope,
                     line: int):
        """Rewrite cluster sources to their as-of views for time travel."""
        token = self.eval(expr, scope)
        if not isinstance(token, int) or isinstance(token, bool):
            raise OppRuntimeError(
                "as of expects a snapshot token (from snapshot_token()), "
                "got %r" % (token,), line=line)
        out = []
        wrapped = False
        for var, source in iterables:
            make = getattr(source, "as_of", None)
            if make is not None:
                source = make(token)
                wrapped = True
            out.append((var, source))
        if not wrapped:
            raise OppRuntimeError(
                "as of applies to cluster sources only", line=line)
        return out

    def _stmt_Explain(self, node: ast.Explain, scope: Scope) -> None:
        """``explain [analyze] forall ...`` — print plan (and trace)."""
        query = self._build_query(node.query, scope)
        text = query.explain(analyze=node.analyze, code=self.dump_code)
        self.output.append(text + "\n")

    def _build_query(self, fnode: ast.Forall, scope: Scope):
        """Lower an O++ forall header to a :class:`repro.query.Forall`.

        Compilable suchthat clauses become introspectable predicates (so
        the optimizer can pick indexes / hash joins and ``explain`` shows
        the real plan); opaque clauses fall back to an interpreted row
        check, which still executes faithfully under ``analyze`` but
        plans as a filtered scan / nested loop.
        """
        from ..query.iterate import Forall as QueryForall
        iterables = [(var, self._forall_source(src, deep, scope,
                                               fnode.line))
                     for var, src, deep in fnode.sources]
        if fnode.as_of is not None:
            iterables = self._apply_as_of(iterables, fnode.as_of, scope,
                                          fnode.line)
        var_names = [var for var, _ in iterables]
        query = QueryForall(*[source for _, source in iterables])
        if fnode.suchthat is not None:
            if len(iterables) == 1:
                pred = self._compile_predicate(fnode.suchthat, var_names[0],
                                               scope)
            else:
                pred = self._compile_join_predicate(fnode.suchthat,
                                                    var_names, scope)
            if pred is None:
                def row_check(*binding):
                    inner = Scope(scope)
                    for name, value in zip(var_names, binding):
                        inner.declare(name, value)
                    return bool(self.eval(fnode.suchthat, inner))
                pred = row_check
            query = query.suchthat(pred)
        if fnode.by is not None:
            def sort_key(*binding):
                inner = Scope(scope)
                for name, value in zip(var_names, binding):
                    inner.declare(name, value)
                return self.eval(fnode.by, inner)
            query = query.by(sort_key, desc=fnode.by_desc)
        return query

    def _compile_join_predicate(self, expr: ast.Node, var_names, scope):
        """Compile a multi-variable suchthat to a V[...] predicate, or None.

        ``vari->f op varj->g`` becomes a join comparison (hash-joinable
        when op is ``==``); ``vari->f op constant`` becomes a per-source
        restriction pushed into that source's scan.
        """
        from ..query.predicates import And, VarAttrExpr
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            left = self._compile_join_predicate(expr.left, var_names, scope)
            right = self._compile_join_predicate(expr.right, var_names,
                                                 scope)
            if left is None or right is None:
                return None
            return And(left, right)
        if isinstance(expr, ast.Binary) and expr.op in (
                "==", "!=", "<", "<=", ">", ">="):
            lhs = self._any_var_field(expr.left, var_names)
            rhs = self._any_var_field(expr.right, var_names)
            op = expr.op
            if lhs is not None and rhs is not None:
                return VarAttrExpr(*lhs)._compare(op, VarAttrExpr(*rhs))
            if lhs is None and rhs is None:
                return None
            other = expr.right if lhs is not None else expr.left
            if lhs is None:
                lhs = rhs
                op = {"<": ">", "<=": ">=", ">": "<",
                      ">=": "<="}.get(op, op)
            for name in var_names:
                if self._mentions_var(other, name):
                    return None
            try:
                value = self.eval(other, scope)
            except Exception:
                return None
            return VarAttrExpr(*lhs)._compare(op, self._as_ref(value))
        return None

    @staticmethod
    def _any_var_field(node: ast.Node, var_names):
        """``vari->field`` -> ``(i, field)`` for any loop variable."""
        if (isinstance(node, ast.Member)
                and isinstance(node.target, ast.Name)
                and node.target.ident in var_names):
            return var_names.index(node.target.ident), node.field
        return None

    def _stmt_Return(self, node: ast.Return, scope: Scope) -> None:
        value = None if node.value is None else self.eval(node.value, scope)
        raise _Return(value)

    def _stmt_Break(self, node: ast.Break, scope: Scope) -> None:
        raise _Break()

    def _stmt_Continue(self, node: ast.Continue, scope: Scope) -> None:
        raise _Continue()

    def _stmt_PDelete(self, node: ast.PDelete, scope: Scope) -> None:
        target = self.eval(node.target, scope)
        if target is None:
            raise OppRuntimeError("pdelete of null", line=node.line)
        self.db.pdelete(target)

    def _stmt_Create(self, node: ast.Create, scope: Scope) -> None:
        cls = self._find_class(node.type_name, node.line)
        self.db.create(cls, exist_ok=True)

    def _stmt_TransactionBlock(self, node: ast.TransactionBlock,
                               scope: Scope) -> None:
        with self.db.transaction():
            self.exec_stmt(node.body, scope)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def eval(self, node: ast.Node, scope: Scope) -> Any:
        method = getattr(self, "_eval_" + type(node).__name__, None)
        if method is None:
            raise OppRuntimeError("cannot evaluate %s node"
                                  % type(node).__name__, line=node.line)
        return method(node, scope)

    def _eval_Literal(self, node: ast.Literal, scope: Scope) -> Any:
        return node.value

    def _eval_Name(self, node: ast.Name, scope: Scope) -> Any:
        cls = self._maybe_class(node.ident)
        try:
            return scope.lookup(node.ident, node.line)
        except OppNameError:
            if cls is not None:
                return cls
            raise

    def _eval_This(self, node: ast.This, scope: Scope) -> Any:
        if scope.this is None:
            raise OppRuntimeError("'this' outside a member function",
                                  line=node.line)
        return scope.this

    def _eval_Binary(self, node: ast.Binary, scope: Scope) -> Any:
        op = node.op
        if op == "&&":
            return bool(self.eval(node.left, scope)
                        and self.eval(node.right, scope))
        if op == "||":
            return bool(self.eval(node.left, scope)
                        or self.eval(node.right, scope))
        left = self.eval(node.left, scope)
        right = self.eval(node.right, scope)
        if op == "<<":
            if isinstance(left, OdeSet):
                return left << self._storable(right)
            return left << right
        if op == ">>":
            if isinstance(left, OdeSet):
                return left >> self._storable(right)
            return left >> right
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if isinstance(left, int) and isinstance(right, int):
                    return left // right if right != 0 else self._div0(node)
                return left / right if right != 0 else self._div0(node)
            if op == "%":
                return left % right
            if op == "==":
                return self._equal(left, right)
            if op == "!=":
                return not self._equal(left, right)
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError as exc:
            raise OppTypeError(str(exc), line=node.line)
        raise OppRuntimeError("unknown operator %r" % op, line=node.line)

    def _div0(self, node):
        raise OppRuntimeError("division by zero", line=node.line)

    def _equal(self, left, right) -> bool:
        left = self._as_ref(left)
        right = self._as_ref(right)
        return left == right

    def _as_ref(self, value):
        if isinstance(value, OdeObject) and value.is_persistent:
            return value.oid
        return value

    def _storable(self, value):
        """Set elements: persistent objects insert as their ids."""
        if isinstance(value, OdeObject) and value.is_persistent:
            return value.oid
        return value

    def _eval_Unary(self, node: ast.Unary, scope: Scope) -> Any:
        value = self.eval(node.operand, scope)
        if node.op == "-":
            return -value
        if node.op == "+":
            return +value
        if node.op == "!":
            return not value
        if node.op == "~":
            return ~value
        raise OppRuntimeError("unknown unary %r" % node.op, line=node.line)

    def _eval_Conditional(self, node: ast.Conditional, scope: Scope) -> Any:
        if self.eval(node.cond, scope):
            return self.eval(node.then, scope)
        return self.eval(node.otherwise, scope)

    def _eval_Member(self, node: ast.Member, scope: Scope) -> Any:
        target = self._deref(self.eval(node.target, scope), node.line)
        self._check_access(target, node.field, scope, node.line)
        try:
            return getattr(target, node.field)
        except AttributeError:
            raise OppRuntimeError(
                "%s has no member %r" % (type(target).__name__, node.field),
                line=node.line)

    def _check_access(self, target: Any, field: str, scope: Scope,
                      line: int) -> None:
        """Enforce O++ access sections (C++ semantics, approximated).

        Private/protected members may only be touched when the code runs
        inside a member function of the object's class (``this`` is an
        instance of a type sharing the member). Python callers are not
        restricted — the host language follows its own conventions.
        """
        access = getattr(type(target), "_opp_access", None)
        if access is None:
            return
        mode = access.get(field, "public")
        if mode == "public":
            return
        this = scope.this
        if this is not None and (isinstance(this, type(target))
                                 or isinstance(target, type(this))):
            return
        raise OppRuntimeError(
            "%r is a %s member of %s" % (field, mode,
                                         type(target).__name__),
            line=line)

    def _eval_Index(self, node: ast.Index, scope: Scope) -> Any:
        target = self.eval(node.target, scope)
        index = self.eval(node.index, scope)
        try:
            return target[index]
        except (TypeError, KeyError, IndexError) as exc:
            raise OppRuntimeError(str(exc), line=node.line)

    def _eval_Call(self, node: ast.Call, scope: Scope) -> Any:
        args = [self.eval(arg, scope) for arg in node.args]
        if isinstance(node.callee, ast.Member):
            target = self._deref(self.eval(node.callee.target, scope),
                                 node.line)
            self._check_access(target, node.callee.field, scope, node.line)
            func = getattr(target, node.callee.field, None)
            if func is None:
                raise OppRuntimeError(
                    "%s has no member function %r"
                    % (type(target).__name__, node.callee.field),
                    line=node.line)
        else:
            func = self.eval(node.callee, scope)
        if isinstance(func, OdeMeta):
            # `T(args)` used as a conversion/constructor: volatile object.
            return func(*args)
        if not callable(func):
            raise OppTypeError("%r is not callable" % (func,),
                               line=node.line)
        return func(*args)

    def _eval_New(self, node: ast.New, scope: Scope) -> Any:
        cls = self._find_class(node.type_name, node.line)
        args = [self.eval(arg, scope) for arg in node.args]
        obj = cls(*args)
        if node.persistent:
            return self.db.pnew_from(obj)
        return obj

    def _eval_IsType(self, node: ast.IsType, scope: Scope) -> bool:
        value = self.eval(node.target, scope)
        value = self._deref(value, node.line) if isinstance(
            value, (Oid, Vref)) else value
        cls = self._find_class(node.type_name, node.line)
        if not isinstance(value, cls):
            return False
        if node.persistent and not (isinstance(value, OdeObject)
                                    and value.is_persistent):
            return False
        return True

    def _eval_Assign(self, node: ast.Assign, scope: Scope) -> Any:
        value = self.eval(node.value, scope)
        if node.op != "=":
            current = self.eval(node.target, scope)
            binop = node.op[:-1]
            value = self._apply_binop(binop, current, value, node.line)
        self._assign_to(node.target, value, scope)
        return value

    def _apply_binop(self, op: str, left, right, line: int):
        fake = ast.Binary(op, ast.Literal(left), ast.Literal(right),
                          line=line)
        return self.eval(fake, self.globals)

    def _assign_to(self, target: ast.Node, value: Any, scope: Scope) -> None:
        if isinstance(target, ast.Name):
            scope.assign(target.ident, value)
            return
        if isinstance(target, ast.Member):
            obj = self._deref(self.eval(target.target, scope), target.line)
            self._check_access(obj, target.field, scope, target.line)
            setattr(obj, target.field, value)
            return
        if isinstance(target, ast.Index):
            container = self.eval(target.target, scope)
            index = self.eval(target.index, scope)
            container[index] = value
            return
        raise OppRuntimeError("invalid assignment target", line=target.line)

    def _eval_IncDec(self, node: ast.IncDec, scope: Scope) -> Any:
        current = self.eval(node.target, scope)
        delta = 1 if node.op == "++" else -1
        self._assign_to(node.target, current + delta, scope)
        return current

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _deref(self, value: Any, line: int) -> Any:
        if value is None:
            raise OppRuntimeError("null pointer dereference", line=line)
        if isinstance(value, (Oid, Vref)):
            return self.db.deref(value)
        return value

    def _materialize(self, item: Any) -> Any:
        """Iteration yields live objects for reference elements."""
        if isinstance(item, (Oid, Vref)):
            return self.db.deref(item, _missing_ok=True)
        return item

    def _maybe_class(self, name: str) -> Optional[type]:
        value = self.globals.vars.get(name)
        if isinstance(value, OdeMeta):
            return value
        cls = class_registry().get(name)
        if isinstance(cls, OdeMeta):
            return cls
        return None

    def _find_class(self, name: str, line: int) -> type:
        cls = self._maybe_class(name)
        if cls is None:
            raise OppNameError("undefined class %r" % name, line=line)
        return cls

    # ------------------------------------------------------------------
    # builtins
    # ------------------------------------------------------------------

    def _install_builtins(self) -> None:
        g = self.globals

        def printf(fmt: str, *args) -> None:
            text = _c_format(fmt, args)
            self.output.append(text)
            if self.echo:
                print(text, end="")

        def puts(text: str) -> None:
            printf("%s\n", text)

        g.declare("printf", printf)
        g.declare("puts", puts)
        g.declare("sqrt", math.sqrt)
        g.declare("abs", abs)
        g.declare("fabs", abs)
        g.declare("floor", math.floor)
        g.declare("ceil", math.ceil)
        g.declare("pow", pow)
        g.declare("strlen", len)
        g.declare("strcmp", lambda a, b: (a > b) - (a < b))
        g.declare("count", lambda xs: sum(1 for _ in xs))
        # Ode macros
        g.declare("newversion", lambda obj: self.db.newversion(obj))
        g.declare("vprev", lambda ref: self.db.vprev(ref))
        g.declare("vnext", lambda ref: self.db.vnext(ref))
        g.declare("vfirst", lambda ref: self.db.vfirst(ref))
        g.declare("vlast", lambda ref: self.db.vlast(ref))
        g.declare("deref", lambda ref: self.db.deref(ref))
        g.declare("deactivate",
                  lambda tid: tid.deactivate()
                  if isinstance(tid, TriggerId) else False)
        g.declare("advance_time", lambda s: self.db.advance_time(s))
        g.declare("now", lambda: self.db.now())
        g.declare("snapshot_token", lambda: self.db.snapshot_token())
        g.declare("min", min)
        g.declare("max", max)
        g.declare("exp", math.exp)
        g.declare("log", math.log)
        g.declare("toupper", lambda s: s.upper())
        g.declare("tolower", lambda s: s.lower())
        g.declare("substr", lambda s, i, n: s[i:i + n])
        g.declare("atoi", int)
        g.declare("atof", float)


def _c_format(fmt: str, args: tuple) -> str:
    """Translate the printf subset used by the paper to Python %-format."""
    out = []
    arg_i = 0
    i = 0
    n = len(fmt)
    while i < n:
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        if i + 1 < n and fmt[i + 1] == "%":
            out.append("%")
            i += 2
            continue
        # scan the conversion spec: flags/width/precision + letter
        j = i + 1
        while j < n and fmt[j] in "-+ 0123456789.*lh":
            j += 1
        if j >= n:
            out.append(fmt[i:])
            break
        conv = fmt[j]
        spec = fmt[i:j + 1].replace("l", "").replace("h", "")
        arg = args[arg_i] if arg_i < len(args) else ""
        arg_i += 1
        if conv in "dioxX":
            out.append(spec % int(arg))
        elif conv in "eEfgG":
            out.append(spec % float(arg))
        elif conv == "c":
            out.append(str(arg)[:1])
        elif conv == "s":
            out.append(spec % (arg if isinstance(arg, str) else str(arg)))
        else:
            out.append(fmt[i:j + 1])
        i = j + 1
    return "".join(out)


def run_program(db: Database, source: str, echo: bool = False) -> List[str]:
    """One-shot convenience: run O++ *source* against *db*."""
    return Interpreter(db, echo=echo).run(source)
