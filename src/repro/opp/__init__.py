"""An interpreter for a working subset of O++ — the language half of the
paper. Programs written in the paper's syntax run against a
:class:`~repro.core.database.Database`; classes they declare are real Ode
classes, interchangeable with Python-defined ones.

Supported grammar summary
-------------------------

Declarations::

    class NAME [: [public] BASE [, ...]] {
        [public: | private: | protected:]
        TYPE NAME [, NAME ...] ;                  // fields
        [TYPE] NAME(PARAMS) { ... }               // methods / constructor
      constraint:
        EXPR ;  ...                               // boolean class invariants
      trigger:
        [perpetual] NAME(PARAMS) :
            [within EXPR :] COND ==> ACTION [: TIMEOUT-ACTION] ; ...
    };
    TYPE NAME [= EXPR];                           // variables
    TYPE NAME(PARAMS) { ... }                     // free functions

Types: ``int  double  float  char  char*  bool  set<T>  T*  persistent T*``

Statements::

    if/else  while  do/while  for(;;)  return  break  continue
    for VAR in SET-EXPR STMT
    forall VAR in CLUSTER[*] [, forall ...]
        [suchthat (EXPR)] [by (EXPR) [desc]] STMT
    create CLASS ;      pdelete EXPR ;      transaction { ... }

Expressions: C precedence, ``->``/``.`` member access, calls,
``new T(args)`` / ``pnew T(args)``, ``EXPR is [persistent] T [*]``,
``<<``/``>>`` set insert/remove, ``? :``, ``++``/``--``, assignment ops.

Builtins: ``printf puts strlen strcmp strcat-via-+ toupper tolower substr
atoi atof min max abs sqrt floor ceil pow exp log count`` and the Ode
macros ``newversion vprev vnext vfirst vlast deref deactivate
advance_time now``.

Semantics notes: simple ``suchthat`` clauses (conjunctions of
``var->field op constant``) compile to predicates and may be served by
indexes; access sections are enforced (members before the first label are
private, per C++); O++ classes may derive from Python-defined Ode classes
and vice versa.
"""

from .interp import Interpreter, run_program
from .lexer import Token, tokenize
from .parser import Parser, parse

__all__ = ["Interpreter", "run_program", "Token", "tokenize", "Parser",
           "parse"]
