"""AST node definitions for the O++ subset.

Plain data classes, one per construct. Every node carries the source line
for error reporting. The interpreter (:mod:`repro.opp.interp`) dispatches
on these types; the parser (:mod:`repro.opp.parser`) builds them.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple


class Node:
    """Base AST node."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line

    def __repr__(self):
        pairs = ", ".join("%s=%r" % (slot, getattr(self, slot))
                          for slot in self.__slots__ if slot != "line")
        return "%s(%s)" % (type(self).__name__, pairs)


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------

class TypeName(Node):
    """A declared type: base name + pointer/persistence/set decorations."""

    __slots__ = ("name", "pointer", "persistent", "element")

    def __init__(self, name: str, pointer: bool = False,
                 persistent: bool = False,
                 element: Optional["TypeName"] = None, line: int = 0):
        super().__init__(line)
        self.name = name            # "int", "double", "char", class name, "set"
        self.pointer = pointer
        self.persistent = persistent
        self.element = element      # set<element>


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

class Literal(Node):
    __slots__ = ("value",)

    def __init__(self, value: Any, line: int = 0):
        super().__init__(line)
        self.value = value


class Name(Node):
    __slots__ = ("ident",)

    def __init__(self, ident: str, line: int = 0):
        super().__init__(line)
        self.ident = ident


class This(Node):
    __slots__ = ()


class Binary(Node):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Node, right: Node, line: int = 0):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Unary(Node):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Node, line: int = 0):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Conditional(Node):
    """C's ``cond ? a : b``."""

    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Node, then: Node, otherwise: Node,
                 line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class Member(Node):
    """``expr->field`` or ``expr.field`` (both dereference uniformly)."""

    __slots__ = ("target", "field")

    def __init__(self, target: Node, field: str, line: int = 0):
        super().__init__(line)
        self.target = target
        self.field = field


class Index(Node):
    __slots__ = ("target", "index")

    def __init__(self, target: Node, index: Node, line: int = 0):
        super().__init__(line)
        self.target = target
        self.index = index


class Call(Node):
    """Function call: callee is a Name (builtin/function) or Member (method)."""

    __slots__ = ("callee", "args")

    def __init__(self, callee: Node, args: List[Node], line: int = 0):
        super().__init__(line)
        self.callee = callee
        self.args = args


class New(Node):
    """``new T(args)`` — volatile — or ``pnew T(args)`` — persistent."""

    __slots__ = ("type_name", "args", "persistent")

    def __init__(self, type_name: str, args: List[Node], persistent: bool,
                 line: int = 0):
        super().__init__(line)
        self.type_name = type_name
        self.args = args
        self.persistent = persistent


class IsType(Node):
    """``expr is persistent T*`` — the paper's run-time type test."""

    __slots__ = ("target", "type_name", "persistent")

    def __init__(self, target: Node, type_name: str, persistent: bool,
                 line: int = 0):
        super().__init__(line)
        self.target = target
        self.type_name = type_name
        self.persistent = persistent


class Assign(Node):
    """Assignment expression: ``lvalue = value`` (or augmented ``+=`` ...)."""

    __slots__ = ("target", "op", "value")

    def __init__(self, target: Node, op: str, value: Node, line: int = 0):
        super().__init__(line)
        self.target = target   # Name, Member or Index
        self.op = op           # "=", "+=", "-=", ...
        self.value = value


class IncDec(Node):
    """``x++`` / ``x--`` (postfix; value semantics unused by examples)."""

    __slots__ = ("target", "op")

    def __init__(self, target: Node, op: str, line: int = 0):
        super().__init__(line)
        self.target = target
        self.op = op


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr: Node, line: int = 0):
        super().__init__(line)
        self.expr = expr


class VarDecl(Node):
    """``int x = 0, y;`` — one node per declarator."""

    __slots__ = ("type_name", "name", "init")

    def __init__(self, type_name: TypeName, name: str,
                 init: Optional[Node], line: int = 0):
        super().__init__(line)
        self.type_name = type_name
        self.name = name
        self.init = init


class Block(Node):
    __slots__ = ("body",)

    def __init__(self, body: List[Node], line: int = 0):
        super().__init__(line)
        self.body = body


class If(Node):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Node, then: Node,
                 otherwise: Optional[Node], line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Node, body: Node, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Node):
    """C's ``do stmt while (cond);`` — body runs at least once."""

    __slots__ = ("cond", "body")

    def __init__(self, cond: Node, body: Node, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class CFor(Node):
    """Classic ``for (init; cond; step)``."""

    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init: Optional[Node], cond: Optional[Node],
                 step: Optional[Node], body: Node, line: int = 0):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Forall(Node):
    """``forall x in source [as of (e)] [suchthat (e)] [by (e)] stmt``
    (section 3.1).

    *sources* is a list of ``(var_name, source_expr, deep)`` triples —
    more than one means a join. ``deep`` marks the ``cluster*`` form.
    ``as_of`` (a snapshot-token expression) makes the iteration a
    time-travel read over the committed state at that token.
    """

    __slots__ = ("sources", "suchthat", "by", "by_desc", "body", "as_of")

    def __init__(self, sources: List[Tuple[str, Node, bool]],
                 suchthat: Optional[Node], by: Optional[Node],
                 by_desc: bool, body: Node, line: int = 0,
                 as_of: Optional[Node] = None):
        super().__init__(line)
        self.sources = sources
        self.suchthat = suchthat
        self.by = by
        self.by_desc = by_desc
        self.body = body
        self.as_of = as_of


class Explain(Node):
    """``explain [analyze] forall ...`` — print the query plan.

    ``explain`` is a *soft* keyword (still a valid identifier elsewhere).
    With ``analyze`` the query is executed under tracing and the
    per-operator measurements are printed after the plan. *query* is a
    :class:`Forall` whose body is typically the empty statement.
    """

    __slots__ = ("query", "analyze")

    def __init__(self, query: "Forall", analyze: bool, line: int = 0):
        super().__init__(line)
        self.query = query
        self.analyze = analyze


class ForIn(Node):
    """``for x in set_expr stmt`` — iteration over a set value."""

    __slots__ = ("var", "source", "body")

    def __init__(self, var: str, source: Node, body: Node, line: int = 0):
        super().__init__(line)
        self.var = var
        self.source = source
        self.body = body


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Node], line: int = 0):
        super().__init__(line)
        self.value = value


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class PDelete(Node):
    __slots__ = ("target",)

    def __init__(self, target: Node, line: int = 0):
        super().__init__(line)
        self.target = target


class Create(Node):
    """``create(T)`` / ``create T`` — make the cluster for class T."""

    __slots__ = ("type_name",)

    def __init__(self, type_name: str, line: int = 0):
        super().__init__(line)
        self.type_name = type_name


class TransactionBlock(Node):
    __slots__ = ("body",)

    def __init__(self, body: Node, line: int = 0):
        super().__init__(line)
        self.body = body


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------

class Param(Node):
    __slots__ = ("type_name", "name")

    def __init__(self, type_name: TypeName, name: str, line: int = 0):
        super().__init__(line)
        self.type_name = type_name
        self.name = name


class FieldDecl(Node):
    __slots__ = ("type_name", "name", "access")

    def __init__(self, type_name: TypeName, name: str, access: str,
                 line: int = 0):
        super().__init__(line)
        self.type_name = type_name
        self.name = name
        self.access = access


class MethodDecl(Node):
    __slots__ = ("return_type", "name", "params", "body", "access",
                 "is_constructor")

    def __init__(self, return_type: Optional[TypeName], name: str,
                 params: List[Param], body: Block, access: str,
                 is_constructor: bool, line: int = 0):
        super().__init__(line)
        self.return_type = return_type
        self.name = name
        self.params = params
        self.body = body
        self.access = access
        self.is_constructor = is_constructor


class ConstraintDecl(Node):
    __slots__ = ("name", "expr")

    def __init__(self, name: str, expr: Node, line: int = 0):
        super().__init__(line)
        self.name = name
        self.expr = expr


class TriggerDecl(Node):
    """``[perpetual] name(params) : [within e :] cond ==> action ;``"""

    __slots__ = ("name", "params", "perpetual", "within", "condition",
                 "action", "timeout_action")

    def __init__(self, name: str, params: List[Param], perpetual: bool,
                 within: Optional[Node], condition: Node, action: Node,
                 timeout_action: Optional[Node], line: int = 0):
        super().__init__(line)
        self.name = name
        self.params = params
        self.perpetual = perpetual
        self.within = within
        self.condition = condition
        self.action = action
        self.timeout_action = timeout_action


class ClassDecl(Node):
    __slots__ = ("name", "bases", "fields", "methods", "constraints",
                 "triggers")

    def __init__(self, name: str, bases: List[str],
                 fields: List[FieldDecl], methods: List[MethodDecl],
                 constraints: List[ConstraintDecl],
                 triggers: List[TriggerDecl], line: int = 0):
        super().__init__(line)
        self.name = name
        self.bases = bases
        self.fields = fields
        self.methods = methods
        self.constraints = constraints
        self.triggers = triggers


class FuncDecl(Node):
    __slots__ = ("return_type", "name", "params", "body")

    def __init__(self, return_type: Optional[TypeName], name: str,
                 params: List[Param], body: Block, line: int = 0):
        super().__init__(line)
        self.return_type = return_type
        self.name = name
        self.params = params
        self.body = body


class Program(Node):
    __slots__ = ("decls",)

    def __init__(self, decls: List[Node], line: int = 0):
        super().__init__(line)
        self.decls = decls
