"""O++ body compilation: constraints and trigger bodies become Python code.

The interpreter (:mod:`repro.opp.interp`) re-walks the AST of a trigger
condition on every end-of-transaction evaluation and of a trigger action
on every firing — a cascade of N firings pays N full tree walks, each
allocating :class:`~repro.opp.interp.Scope` chains and dispatching
``getattr(self, "_eval_" + type)`` per node.  This module lowers those
bodies *once*, at class-definition time, into synthesized Python source
that is ``compile()``d and registered in :mod:`linecache` under
``<opp-codegen:N>`` filenames (same scheme as the query codegen).

Lowering strategy:

* Parameters and block-local ``VarDecl`` names are resolved at compile
  time to (mangled) Python locals — the one part of O++ name resolution
  that is static.
* Every other name keeps the interpreter's dynamic lookup order
  (enclosing globals chain, then ``this`` members) through the ``_NM`` /
  ``_LK`` runtime helpers, so globals declared *after* the class still
  shadow member fields exactly as ``Scope.lookup`` would.
* Operators lower to small runtime helpers (``_AR``/``_DV``/``_CP``/…)
  that replicate ``_eval_Binary`` exactly: int/int division truncates,
  division by zero and TypeErrors raise the same ``Opp*Error`` with the
  same source line, ``==`` compares persistent objects by oid, ``<<``
  on an :class:`~repro.core.sets.OdeSet` stores oids.
* Member access and calls keep the null-pointer check, the C++-style
  access control check, and the argument-before-callee evaluation order.

Anything outside the supported subset (``return`` in a trigger body,
conditionally-scoped declarations, ``forall`` statements, ``continue``
inside ``do``/``for`` where Python's ``continue`` would skip the
step/condition, …) raises :class:`_Bail` during lowering and the caller
keeps the interpreted closure — fallback is always automatic and the
two paths are semantically identical.

Compilation respects the same switches as the query codegen
(``REPRO_CODEGEN=0`` env, ``db.codegen_enabled``); compile time is
accounted to ``codegen.compile_ns`` on the database's codegen cache.
"""

from __future__ import annotations

import linecache
import os
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.objects import OdeMeta, OdeObject
from ..core.oid import Oid, Vref
from ..core.sets import OdeSet
from ..errors import OppNameError, OppRuntimeError, OppTypeError
from ..query.codegen import cache_for, enabled_for
from . import ast_nodes as ast

_FN = "__ode_body"

#: module-level counters, read by tests and ``stats()`` callers
stats = {"compiled": 0, "fallbacks": 0}


def _strict() -> bool:
    return os.environ.get("REPRO_CODEGEN_STRICT", "").strip().lower() in (
        "1", "on", "true", "yes")


class _Bail(Exception):
    """Raised during lowering when a construct has no compiled form."""


# ---------------------------------------------------------------------------
# runtime helpers — each replicates one interpreter evaluation rule exactly
# ---------------------------------------------------------------------------

def _LK(interp, this, name, line):
    """``Scope.lookup`` with the static locals already stripped out."""
    scope = interp.globals
    while scope is not None:
        if name in scope.vars:
            return scope.vars[name]
        scope = scope.parent
    if this is not None:
        cls = type(this)
        if (name in cls._ode_fields or name in cls._ode_triggers
                or hasattr(cls, name)):
            return getattr(this, name)
    raise OppNameError("undefined name %r" % name, line=line)


def _NM(interp, this, name, line):
    """``_eval_Name``: scope lookup with the class-registry fallback."""
    cls = interp._maybe_class(name)
    try:
        return _LK(interp, this, name, line)
    except OppNameError:
        if cls is not None:
            return cls
        raise


def _AS(interp, this, name, value):
    """``Scope.assign`` for a name proven at compile time to be a field."""
    scope = interp.globals
    while scope is not None:
        if name in scope.vars:
            scope.vars[name] = value
            return
        scope = scope.parent
    setattr(this, name, value)


def _access(target, field, this, line):
    access = getattr(type(target), "_opp_access", None)
    if access is None:
        return
    mode = access.get(field, "public")
    if mode == "public":
        return
    if this is not None and (isinstance(this, type(target))
                             or isinstance(target, type(this))):
        return
    raise OppRuntimeError(
        "%r is a %s member of %s" % (field, mode, type(target).__name__),
        line=line)


def _M(interp, this, target, field, line):
    target = interp._deref(target, line)
    _access(target, field, this, line)
    try:
        return getattr(target, field)
    except AttributeError:
        raise OppRuntimeError(
            "%s has no member %r" % (type(target).__name__, field),
            line=line)


def _SM(interp, this, target, field, value, line):
    obj = interp._deref(target, line)
    _access(obj, field, this, line)
    setattr(obj, field, value)


def _AR(op, left, right, line):
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        return left % right
    except TypeError as exc:
        raise OppTypeError(str(exc), line=line)


def _DV(left, right, line):
    try:
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise OppRuntimeError("division by zero", line=line)
            return left // right
        if right == 0:
            raise OppRuntimeError("division by zero", line=line)
        return left / right
    except TypeError as exc:
        raise OppTypeError(str(exc), line=line)


def _CP(op, left, right, line):
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    except TypeError as exc:
        raise OppTypeError(str(exc), line=line)


def _EQ(interp, left, right, line):
    try:
        return interp._equal(left, right)
    except TypeError as exc:
        raise OppTypeError(str(exc), line=line)


def _SH(interp, op, left, right):
    if op == "<<":
        if isinstance(left, OdeSet):
            return left << interp._storable(right)
        return left << right
    if isinstance(left, OdeSet):
        return left >> interp._storable(right)
    return left >> right


def _ctail(func, args, line):
    if isinstance(func, OdeMeta):
        return func(*args)
    if not callable(func):
        raise OppTypeError("%r is not callable" % (func,), line=line)
    return func(*args)


def _CN(interp, this, args, name, line):
    return _ctail(_NM(interp, this, name, line), args, line)


def _CV(args, func, line):
    return _ctail(func, args, line)


def _CM(interp, this, args, target, field, line):
    target = interp._deref(target, line)
    _access(target, field, this, line)
    func = getattr(target, field, None)
    if func is None:
        raise OppRuntimeError(
            "%s has no member function %r" % (type(target).__name__, field),
            line=line)
    return _ctail(func, args, line)


def _IX(target, index, line):
    try:
        return target[index]
    except (TypeError, KeyError, IndexError) as exc:
        raise OppRuntimeError(str(exc), line=line)


def _SI(container, index, value):
    container[index] = value


def _NEW(interp, type_name, args, persistent, line):
    cls = interp._find_class(type_name, line)
    obj = cls(*args)
    if persistent:
        return interp.db.pnew_from(obj)
    return obj


def _IT(interp, value, type_name, persistent, line):
    if isinstance(value, (Oid, Vref)):
        value = interp._deref(value, line)
    cls = interp._find_class(type_name, line)
    if not isinstance(value, cls):
        return False
    if persistent and not (isinstance(value, OdeObject)
                           and value.is_persistent):
        return False
    return True


def _PD(interp, target, line):
    if target is None:
        raise OppRuntimeError("pdelete of null", line=line)
    interp.db.pdelete(target)


def _MAT(interp, item):
    return interp._materialize(item)


def _RTE(message, line):
    raise OppRuntimeError(message, line=line)


#: namespace every generated body executes in
_NS = {
    "_LK": _LK, "_NM": _NM, "_AS": _AS, "_M": _M, "_SM": _SM,
    "_AR": _AR, "_DV": _DV, "_CP": _CP, "_EQ": _EQ, "_SH": _SH,
    "_CN": _CN, "_CV": _CV, "_CM": _CM, "_IX": _IX, "_SI": _SI,
    "_NEW": _NEW, "_IT": _IT, "_PD": _PD, "_MAT": _MAT, "_RTE": _RTE,
    "_OdeSet": OdeSet,
}

_LITERALS = (bool, int, float, str, type(None))


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------

class _Lower:
    """One compilation: static scope tracking + source emission."""

    def __init__(self, param_names: Sequence[str],
                 fields: frozenset = frozenset()):
        self.scopes: List[dict] = [{}]
        self.fields = fields
        self.out: List[str] = []
        self.ntmp = 0
        self.nloc = 0
        self.loops: List[dict] = []
        self.params = [self.declare(name) for name in param_names]

    # -- scope / emission plumbing -----------------------------------------

    def declare(self, name: str) -> str:
        self.nloc += 1
        mangled = ("_x%d_%s" % (self.nloc, name) if name.isidentifier()
                   else "_x%d" % self.nloc)
        self.scopes[-1][name] = mangled
        return mangled

    def find(self, name: str) -> Optional[str]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def tmp(self) -> str:
        self.ntmp += 1
        return "_t%d" % self.ntmp

    def w(self, indent: int, text: str) -> None:
        self.out.append("    " * indent + text)

    # -- expressions --------------------------------------------------------

    def expr(self, node: ast.Node) -> str:
        handler = getattr(self, "_e_" + type(node).__name__, None)
        if handler is None:
            raise _Bail(type(node).__name__)
        return handler(node)

    def _e_Literal(self, node: ast.Literal) -> str:
        if type(node.value) in _LITERALS:
            return repr(node.value)
        raise _Bail("literal %r" % (node.value,))

    def _e_Name(self, node: ast.Name) -> str:
        local = self.find(node.ident)
        if local is not None:
            return local
        return "_NM(_interp, this, %r, %d)" % (node.ident, node.line)

    def _e_This(self, node: ast.This) -> str:
        return "this"

    def _binop(self, op: str, left: str, right: str, line: int) -> str:
        if op in ("+", "-", "*", "%"):
            return "_AR(%r, %s, %s, %d)" % (op, left, right, line)
        if op == "/":
            return "_DV(%s, %s, %d)" % (left, right, line)
        if op in ("<", "<=", ">", ">="):
            return "_CP(%r, %s, %s, %d)" % (op, left, right, line)
        if op == "==":
            return "_EQ(_interp, %s, %s, %d)" % (left, right, line)
        if op == "!=":
            return "(not _EQ(_interp, %s, %s, %d))" % (left, right, line)
        if op in ("<<", ">>"):
            return "_SH(_interp, %r, %s, %s)" % (op, left, right)
        raise _Bail("binary %r" % op)

    def _e_Binary(self, node: ast.Binary) -> str:
        if node.op == "&&":
            return "bool((%s) and (%s))" % (self.expr(node.left),
                                            self.expr(node.right))
        if node.op == "||":
            return "bool((%s) or (%s))" % (self.expr(node.left),
                                           self.expr(node.right))
        return self._binop(node.op, self.expr(node.left),
                           self.expr(node.right), node.line)

    def _e_Unary(self, node: ast.Unary) -> str:
        operand = self.expr(node.operand)
        if node.op == "-":
            return "(- (%s))" % operand
        if node.op == "+":
            return "(+ (%s))" % operand
        if node.op == "!":
            return "(not (%s))" % operand
        if node.op == "~":
            return "(~ (%s))" % operand
        raise _Bail("unary %r" % node.op)

    def _e_Conditional(self, node: ast.Conditional) -> str:
        return "((%s) if (%s) else (%s))" % (
            self.expr(node.then), self.expr(node.cond),
            self.expr(node.otherwise))

    def _e_Member(self, node: ast.Member) -> str:
        return "_M(_interp, this, %s, %r, %d)" % (
            self.expr(node.target), node.field, node.line)

    def _e_Index(self, node: ast.Index) -> str:
        return "_IX(%s, %s, %d)" % (self.expr(node.target),
                                    self.expr(node.index), node.line)

    def _args(self, nodes: List[ast.Node]) -> str:
        parts = [self.expr(arg) for arg in nodes]
        if len(parts) == 1:
            return "(%s,)" % parts[0]
        return "(%s)" % ", ".join(parts)

    def _e_Call(self, node: ast.Call) -> str:
        # The interpreter evaluates arguments before resolving the
        # callee; the argument tuple is the first positional below so
        # Python's left-to-right evaluation preserves that order.
        args = self._args(node.args)
        callee = node.callee
        if isinstance(callee, ast.Member):
            return "_CM(_interp, this, %s, %s, %r, %d)" % (
                args, self.expr(callee.target), callee.field, node.line)
        if isinstance(callee, ast.Name):
            local = self.find(callee.ident)
            if local is not None:
                return "_CV(%s, %s, %d)" % (args, local, node.line)
            return "_CN(_interp, this, %s, %r, %d)" % (
                args, callee.ident, node.line)
        return "_CV(%s, %s, %d)" % (args, self.expr(callee), node.line)

    def _e_New(self, node: ast.New) -> str:
        return "_NEW(_interp, %r, %s, %r, %d)" % (
            node.type_name, self._args(node.args), node.persistent,
            node.line)

    def _e_IsType(self, node: ast.IsType) -> str:
        return "_IT(_interp, %s, %r, %r, %d)" % (
            self.expr(node.target), node.type_name, node.persistent,
            node.line)

    # -- statements ----------------------------------------------------------

    def stmt(self, node: ast.Node, indent: int,
             decl_ok: bool = False) -> None:
        name = type(node).__name__
        handler = getattr(self, "_s_" + name, None)
        if handler is None:
            raise _Bail(name)
        if name == "VarDecl" and not decl_ok:
            # `if (c) int x = ...;` declares into the *enclosing* scope
            # only when the branch runs — not expressible statically.
            raise _Bail("conditionally-scoped declaration")
        handler(node, indent)

    def _s_Block(self, node: ast.Block, indent: int) -> None:
        before = len(self.out)
        self.scopes.append({})
        try:
            for child in node.body:
                self.stmt(child, indent, decl_ok=True)
        finally:
            self.scopes.pop()
        if len(self.out) == before:
            self.w(indent, "pass")

    def _s_ExprStmt(self, node: ast.ExprStmt, indent: int) -> None:
        expr = node.expr
        if isinstance(expr, ast.Assign):
            self._assign_stmt(expr, indent)
        elif isinstance(expr, ast.IncDec):
            self._incdec_stmt(expr, indent)
        else:
            self.w(indent, self.expr(expr))

    def _assign_stmt(self, node: ast.Assign, indent: int) -> None:
        target = node.target
        if isinstance(target, ast.Name):
            local = self.find(target.ident)
            if local is None and target.ident not in self.fields:
                # would create a script-style local in a runtime scope
                raise _Bail("assignment to %r" % target.ident)
            if node.op == "=":
                value = self.expr(node.value)
                if local is not None:
                    self.w(indent, "%s = %s" % (local, value))
                else:
                    self.w(indent, "_AS(_interp, this, %r, %s)"
                           % (target.ident, value))
                return
            # augmented: RHS first, then the current value, then assign
            tmp = self.tmp()
            self.w(indent, "%s = %s" % (tmp, self.expr(node.value)))
            current = local if local is not None else (
                "_NM(_interp, this, %r, %d)" % (target.ident, target.line))
            combined = self._binop(node.op[:-1], current, tmp, node.line)
            if local is not None:
                self.w(indent, "%s = %s" % (local, combined))
            else:
                self.w(indent, "_AS(_interp, this, %r, %s)"
                       % (target.ident, combined))
            return
        if isinstance(target, ast.Member):
            tmp = self.tmp()
            self.w(indent, "%s = %s" % (tmp, self.expr(node.value)))
            if node.op != "=":
                cur = self.tmp()
                self.w(indent, "%s = _M(_interp, this, %s, %r, %d)" % (
                    cur, self.expr(target.target), target.field,
                    target.line))
                self.w(indent, "%s = %s" % (
                    tmp, self._binop(node.op[:-1], cur, tmp, node.line)))
            self.w(indent, "_SM(_interp, this, %s, %r, %s, %d)" % (
                self.expr(target.target), target.field, tmp, target.line))
            return
        if isinstance(target, ast.Index):
            if node.op != "=":
                raise _Bail("augmented index assignment")
            tmp = self.tmp()
            self.w(indent, "%s = %s" % (tmp, self.expr(node.value)))
            self.w(indent, "_SI(%s, %s, %s)" % (
                self.expr(target.target), self.expr(target.index), tmp))
            return
        raise _Bail("assignment target")

    def _incdec_stmt(self, node: ast.IncDec, indent: int) -> None:
        # `current + delta` with a raw Python `+`, like _eval_IncDec
        delta = "1" if node.op == "++" else "(-1)"
        target = node.target
        if isinstance(target, ast.Name):
            local = self.find(target.ident)
            if local is not None:
                self.w(indent, "%s = %s + %s" % (local, local, delta))
                return
            if target.ident not in self.fields:
                raise _Bail("incdec of %r" % target.ident)
            tmp = self.tmp()
            self.w(indent, "%s = _NM(_interp, this, %r, %d) + %s" % (
                tmp, target.ident, target.line, delta))
            self.w(indent, "_AS(_interp, this, %r, %s)"
                   % (target.ident, tmp))
            return
        if isinstance(target, ast.Member):
            tmp = self.tmp()
            self.w(indent, "%s = _M(_interp, this, %s, %r, %d) + %s" % (
                tmp, self.expr(target.target), target.field, target.line,
                delta))
            self.w(indent, "_SM(_interp, this, %s, %r, %s, %d)" % (
                self.expr(target.target), target.field, tmp, target.line))
            return
        raise _Bail("incdec target")

    def _s_VarDecl(self, node: ast.VarDecl, indent: int) -> None:
        # evaluate the initializer in the *enclosing* scope, then declare
        if node.init is not None:
            value = self.expr(node.init)
        else:
            value = self._default_code(node.type_name)
        self.w(indent, "%s = %s" % (self.declare(node.name), value))

    @staticmethod
    def _default_code(type_name: ast.TypeName) -> str:
        name = type_name.name
        if name in ("int", "long", "unsigned"):
            return "0"
        if name in ("double", "float"):
            return "0.0"
        if name == "bool":
            return "False"
        if name == "char":
            return "''"
        if name == "set":
            return "_OdeSet()"
        return "None"

    def _s_If(self, node: ast.If, indent: int) -> None:
        self.w(indent, "if %s:" % self.expr(node.cond))
        self.stmt(node.then, indent + 1)
        if node.otherwise is not None:
            self.w(indent, "else:")
            self.stmt(node.otherwise, indent + 1)

    def _s_While(self, node: ast.While, indent: int) -> None:
        self.w(indent, "while %s:" % self.expr(node.cond))
        self.loops.append({"kind": "while", "continue": False})
        try:
            self.stmt(node.body, indent + 1)
        finally:
            self.loops.pop()

    def _s_DoWhile(self, node: ast.DoWhile, indent: int) -> None:
        self.w(indent, "while True:")
        record = {"kind": "do", "continue": False}
        self.loops.append(record)
        try:
            self.stmt(node.body, indent + 1)
        finally:
            self.loops.pop()
        if record["continue"]:
            # Python `continue` would skip the trailing condition check
            raise _Bail("continue in do-while")
        self.w(indent + 1, "if not (%s): break" % self.expr(node.cond))

    def _s_CFor(self, node: ast.CFor, indent: int) -> None:
        self.scopes.append({})
        try:
            if node.init is not None:
                self.stmt(node.init, indent, decl_ok=True)
            self.w(indent, "while True:")
            if node.cond is not None:
                self.w(indent + 1,
                       "if not (%s): break" % self.expr(node.cond))
            record = {"kind": "for", "continue": False}
            self.loops.append(record)
            try:
                self.stmt(node.body, indent + 1)
            finally:
                self.loops.pop()
            if record["continue"]:
                # Python `continue` would skip the step statement
                raise _Bail("continue in C-for")
            if node.step is not None:
                self.stmt(node.step, indent + 1)
            elif node.cond is None:
                self.w(indent + 1, "pass")
        finally:
            self.scopes.pop()

    def _s_ForIn(self, node: ast.ForIn, indent: int) -> None:
        src = self.tmp()
        self.w(indent, "%s = %s" % (src, self.expr(node.source)))
        self.w(indent, "if %s is None: _RTE('for-in over null', %d)"
               % (src, node.line))
        item = self.tmp()
        self.scopes.append({})
        try:
            var = self.declare(node.var)
            self.w(indent, "for %s in %s:" % (item, src))
            self.w(indent + 1, "%s = _MAT(_interp, %s)" % (var, item))
            self.loops.append({"kind": "forin", "continue": False})
            try:
                self.stmt(node.body, indent + 1)
            finally:
                self.loops.pop()
        finally:
            self.scopes.pop()

    def _s_Break(self, node: ast.Break, indent: int) -> None:
        if not self.loops:
            raise _Bail("break outside loop")
        self.w(indent, "break")

    def _s_Continue(self, node: ast.Continue, indent: int) -> None:
        if not self.loops:
            raise _Bail("continue outside loop")
        self.loops[-1]["continue"] = True
        self.w(indent, "continue")

    def _s_PDelete(self, node: ast.PDelete, indent: int) -> None:
        self.w(indent, "_PD(_interp, %s, %d)" % (self.expr(node.target),
                                                 node.line))

    def _s_TransactionBlock(self, node: ast.TransactionBlock,
                            indent: int) -> None:
        self.w(indent, "with _interp.db.transaction():")
        self.stmt(node.body, indent + 1)


# ---------------------------------------------------------------------------
# compilation entry points
# ---------------------------------------------------------------------------

def _assemble(lower: _Lower, tail: List[str]) -> str:
    header = "def %s(this%s):" % (
        _FN, "".join(", %s" % p for p in lower.params))
    lines = [header] + lower.out + ["    " + t for t in tail]
    return "\n".join(lines) + "\n"


def _compile(interp, build: Callable[[], str],
             label: str) -> Optional[Callable]:
    db = getattr(interp, "db", None)
    if not enabled_for(db):
        return None
    started = time.perf_counter_ns()
    try:
        source = build()
        cache = cache_for(db)
        filename = "<opp-codegen:%d>" % cache.next_tag()
        code = compile(source, filename, "exec")
    except _Bail:
        stats["fallbacks"] += 1
        return None
    except Exception:
        if _strict():
            raise
        stats["fallbacks"] += 1
        return None
    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    namespace = dict(_NS)
    namespace["_interp"] = interp
    exec(code, namespace)
    fn = namespace[_FN]
    fn._ode_source = source
    fn._ode_label = label
    cache.compile_ns += time.perf_counter_ns() - started
    stats["compiled"] += 1
    return fn


_WRAPS = {"bool": "return bool(%s)", "float": "return float(%s)",
          "raw": "return %s"}


def compile_expr(interp, node: ast.Node, param_names: Sequence[str] = (),
                 wrap: str = "bool", label: str = "o++ expr",
                 fields: frozenset = frozenset()) -> Optional[Callable]:
    """Compile a single O++ expression to ``fn(this, *params)``."""
    def build():
        lower = _Lower(param_names, fields)
        code = lower.expr(node)
        if lower.out:
            raise _Bail("expression emitted statements")
        return _assemble(lower, [_WRAPS[wrap] % code])
    return _compile(interp, build, label)


def compile_body(interp, node: ast.Node, param_names: Sequence[str] = (),
                 label: str = "o++ body",
                 fields: frozenset = frozenset()) -> Optional[Callable]:
    """Compile an O++ statement (a trigger action) to ``fn(this, *params)``."""
    def build():
        lower = _Lower(param_names, fields)
        lower.stmt(node, 1, decl_ok=True)
        if not lower.out:
            lower.w(1, "pass")
        return _assemble(lower, [])
    return _compile(interp, build, label)


def with_fallback(fast: Optional[Callable], nparams: int,
                  slow: Callable) -> Callable:
    """Route through *fast* when the call-shape matches, else *slow*.

    The interpreter tolerates activation-argument count mismatches
    (``zip`` truncation); the compiled function has a fixed signature,
    so mismatched calls keep the interpreted behavior.
    """
    if fast is None:
        return slow

    def run(this, *args):
        if len(args) != nparams:
            return slow(this, *args)
        return fast(this, *args)

    run._ode_compiled = fast
    run.__name__ = getattr(slow, "__name__", "run")
    return run
