"""repro — a Python reproduction of Ode (Object Database and Environment).

Paper: R. Agrawal and N. H. Gehani, "ODE (Object Database and Environment):
The Language and the Data Model", SIGMOD 1989.

The package re-exports the public API from its three layers:

* :mod:`repro.core` — the data model: Database, OdeObject, fields,
  clusters, sets, versions, constraints, triggers.
* :mod:`repro.query` — forall/suchthat/by iteration, joins, fixpoint
  queries, aggregates.
* :mod:`repro.storage` — the persistent-store substrate (pages, WAL,
  indexes); most programs never touch it directly.
* :mod:`repro.opp` — an interpreter for a working subset of the O++
  language itself.

Quickstart::

    from repro import Database, OdeObject, StringField, IntField, forall, A

    class Item(OdeObject):
        name = StringField()
        qty = IntField(default=0)

    db = Database("inventory.odb")
    db.create(Item)
    db.pnew(Item, name="512 dram", qty=7500)
    for item in forall(db.cluster(Item)).suchthat(A.qty > 100).by(A.name):
        print(item.name, item.qty)
"""

from . import errors
from .core import (AnyField, BoolField, BytesField, CharField, ClusterHandle,
                   Database, DictField, Field, FloatField, IntField,
                   ListField, OdeObject, OdeSet, Oid, RefField, SetField,
                   StringField, Transaction, Trigger, TriggerId, Vref,
                   class_registry, constraint, newversion, versions, vfirst,
                   vlast, vnext, vprev)
from .query import (A, Forall, V, avg, count, fixpoint, forall, group_by,
                    growing_iteration, max_, min_, reachable_objects,
                    semi_naive, sum_, transitive_closure)

__version__ = "1.0.0"

__all__ = [
    "errors",
    "AnyField", "BoolField", "BytesField", "CharField", "ClusterHandle",
    "Database", "DictField", "Field", "FloatField", "IntField", "ListField",
    "OdeObject", "OdeSet", "Oid", "RefField", "SetField", "StringField",
    "Transaction", "Trigger", "TriggerId", "Vref", "class_registry",
    "constraint", "newversion", "versions", "vfirst", "vlast", "vnext",
    "vprev",
    "A", "Forall", "V", "avg", "count", "fixpoint", "forall", "group_by",
    "growing_iteration", "max_", "min_", "reachable_objects", "semi_naive",
    "sum_", "transitive_closure",
    "__version__",
]
