"""``python -m repro serve DB.odb`` — run the network server.

Prints exactly one ``LISTENING <host> <port>`` line on stdout once the
socket is bound (the crash harness and the remote workload driver parse
it), then serves until SIGTERM/SIGINT, which triggers the graceful
drain: stop accepting, finish or abort in-flight transactions, close the
database (clean final WAL checkpoint), exit 0.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from ..core.database import Database
from .server import OdeServer, ServerConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve an Ode database over TCP.")
    parser.add_argument("database", help="path to the database file "
                                         "(created if absent)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0 = ephemeral)")
    parser.add_argument("--max-connections", type=int, default=64,
                        help="concurrent connection cap (admission)")
    parser.add_argument("--max-inflight", type=int, default=8,
                        help="concurrent executing-request cap")
    parser.add_argument("--admission-wait", type=float, default=0.05,
                        help="seconds a request may wait for a slot "
                             "before the overload fast-fail")
    parser.add_argument("--txn-timeout", type=float, default=30.0,
                        help="explicit-transaction deadline in seconds "
                             "(0 = unlimited)")
    parser.add_argument("--idle-timeout", type=float, default=300.0,
                        help="evict a connection silent this long")
    parser.add_argument("--write-timeout", type=float, default=10.0,
                        help="evict a client that cannot drain a reply "
                             "within this many seconds")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        help="graceful-drain budget at shutdown")
    parser.add_argument("--allow-debug-delay", action="store_true",
                        help="honor ping.delay_ms (load drills only)")
    return parser


def cmd_serve(argv) -> int:
    args = _build_parser().parse_args(argv)
    config = ServerConfig(
        host=args.host, port=args.port,
        max_connections=args.max_connections,
        max_inflight=args.max_inflight,
        admission_wait_s=args.admission_wait,
        txn_timeout_s=args.txn_timeout,
        idle_timeout_s=args.idle_timeout,
        write_timeout_s=args.write_timeout,
        drain_timeout_s=args.drain_timeout,
        allow_debug_delay=args.allow_debug_delay)
    db = Database(args.database)
    server = OdeServer(db, config).start()
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    host, port = server.address
    print("LISTENING %s %d" % (host, port), flush=True)
    stop.wait()
    print("DRAINING", flush=True)
    server.shutdown()
    # With every session gone this is the clean final checkpoint.
    db.close()
    print("STOPPED", flush=True)
    return 0
