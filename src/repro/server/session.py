"""Per-connection transaction sessions.

Each accepted connection is served by one thread for its whole life, so
the Database's thread-local session machinery (PR 2/PR 7) maps onto
connections for free: the handler thread's ``db._txn`` *is* the remote
client's transaction, with its own MVCC snapshot, lock footprint and
scoped abort — no new concurrency machinery, just a 1:1 binding of
connection → thread → session.

A :class:`Session` owns the connection's O++ interpreter (state —
variables, classes — persists across requests, like the REPL) and
executes the request catalogue:

=================  =======================================================
``execute``        run O++ source (``source``); output streams back in
                   chunked frames (``done: false`` until the last)
``begin``          open an explicit transaction spanning requests
``commit``         commit it (constraints, triggers, fired actions)
``abort``          abort it
``ping``           liveness probe (``delay_ms`` honored only when the
                   server allows debug delays — admission-control drills)
``stats``          the server's ``db.stats()`` + server counters
``token``          a snapshot token for client-side time-travel reads
=================  =======================================================

Deadline discipline: every request runs under an *effective deadline* —
the sooner of the request's own ``deadline_ms`` budget and the open
transaction's deadline — checked between O++ statements (via the
interpreter's step hook) and before each streamed output chunk. Expiry
aborts the open transaction through the ordinary scoped-abort path and
answers :class:`~repro.errors.DeadlineExceededError`; the connection
itself survives (deadlines are per-request, not per-connection).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.database import Transaction
from ..errors import (DeadlineExceededError, OdeError, TransactionError)
from ..opp.interp import Interpreter
from . import protocol

#: Output lines buffered before a chunk frame is flushed mid-execution.
CHUNK_LINES = 256


class Session:
    """One connection's interpreter + transaction state (single-threaded:
    only the connection's handler thread ever touches it)."""

    def __init__(self, db, conn, config, metrics):
        self.db = db
        self.conn = conn
        self.config = config
        self.metrics = metrics
        self.interp = Interpreter(db, echo=False)
        #: open explicit transaction (None = autocommit per statement)
        self.txn: Optional[Transaction] = None
        #: monotonic deadline of the open transaction
        self.txn_deadline: Optional[float] = None
        #: requests served / txns committed, for per-connection accounting
        self.requests = 0
        self.commits = 0
        #: True while a request is executing — the reaper must not evict
        #: an expired-deadline session mid-request (the step hook aborts
        #: it inline, with a typed answer instead of a dropped socket)
        self.busy = False

    # -- deadline helpers --------------------------------------------------

    def _effective_deadline(self, message: Dict) -> Optional[float]:
        """The sooner of the request budget and the txn deadline."""
        deadline = None
        budget_ms = message.get("deadline_ms")
        if budget_ms is not None:
            deadline = time.monotonic() + float(budget_ms) / 1000.0
        if self.txn_deadline is not None:
            deadline = (self.txn_deadline if deadline is None
                        else min(deadline, self.txn_deadline))
        return deadline

    def _check(self, deadline: Optional[float]) -> None:
        if deadline is not None and time.monotonic() > deadline:
            self.metrics.counter("server.deadline_aborts").inc()
            raise DeadlineExceededError("request deadline exceeded")

    # -- transaction plumbing ---------------------------------------------
    # The explicit remote transaction replicates Database.transaction()'s
    # body without the context manager, because it spans requests: begin
    # binds a handle to this thread's session slot, commit/abort finish
    # it through the same _commit/_abort the embedded path uses.

    def begin(self) -> None:
        if self.txn is not None:
            raise TransactionError("transactions do not nest")
        db = self.db
        txn_id = db.store.begin()
        self.txn = Transaction(txn_id, db)
        db._txn = self.txn
        if self.config.txn_timeout_s:
            self.txn_deadline = (time.monotonic()
                                 + self.config.txn_timeout_s)

    def commit(self) -> None:
        if self.txn is None:
            raise TransactionError("commit without begin")
        handle, self.txn, self.txn_deadline = self.txn, None, None
        db = self.db
        try:
            fired = db._commit(handle)
        finally:
            # _commit aborts internally on failure; either way the
            # handle is finished and the thread slot is clear.
            if db._txn is handle:
                db._txn = None
        db._run_fired_actions(fired)
        self.commits += 1

    def abort(self, reason: str = "client") -> None:
        if self.txn is None:
            raise TransactionError("abort without begin")
        self._abort_open(reason)

    def _abort_open(self, reason: str) -> None:
        """Abort the open transaction if any (idempotent; never raises
        past cleanup — used on deadline expiry and disconnect)."""
        handle, self.txn, self.txn_deadline = self.txn, None, None
        if handle is None or handle._done:
            return
        self.db._abort(handle, reason=reason)

    # -- request execution -------------------------------------------------

    def handle(self, message: Dict, send) -> None:
        """Serve one request; *send* ships a response message dict.

        Exactly one ``done: true`` frame terminates every request —
        either the final result or a typed error. Protocol-level
        failures (the client vanished mid-reply) propagate to the
        server loop, which evicts the connection.
        """
        self.requests += 1
        self.busy = True
        try:
            self._handle(message, send)
        finally:
            self.busy = False

    def _handle(self, message: Dict, send) -> None:
        op = message.get("op")
        deadline = self._effective_deadline(message)
        try:
            self._check(deadline)
            if op == "execute":
                self._execute(message, send, deadline)
                return
            if op == "begin":
                self.begin()
            elif op == "commit":
                self.commit()
            elif op == "abort":
                self.abort()
            elif op == "ping":
                delay_ms = float(message.get("delay_ms", 0) or 0)
                if delay_ms and self.config.allow_debug_delay:
                    time.sleep(delay_ms / 1000.0)
                self._check(deadline)
            elif op == "stats":
                send({"ok": True, "done": True,
                      "stats": self.db.stats()})
                return
            elif op == "token":
                send({"ok": True, "done": True,
                      "token": self.db.snapshot_token()})
                return
            else:
                raise protocol.ProtocolError("unknown op %r" % (op,))
            send({"ok": True, "done": True})
        except DeadlineExceededError as exc:
            # The deadline may have expired mid-transaction: the txn is
            # aborted (scoped abort) so no partial state survives it.
            self._abort_open("timeout")
            send(protocol.error_message(exc))
        except protocol.ProtocolError as exc:
            # A malformed *request* (unknown op, bad field) is the
            # client's bug, not the transaction's: answer the error and
            # leave any open transaction alone.
            send(protocol.error_message(exc))
        except TransactionError as exc:
            # Transaction state-machine errors from the non-execute ops:
            # a nested begin must NOT abort the live transaction (the
            # begin was a no-op), and a failed commit already rolled
            # itself back — nothing here holds half-done work.
            send(protocol.error_message(exc))
        except OdeError as exc:
            # A failed statement inside an *explicit* transaction leaves
            # the transaction aborted (same rule as the embedded context
            # manager: any exception aborts), and the client is told via
            # the typed error; autocommit statements aborted themselves.
            self._abort_open("error")
            send(protocol.error_message(exc))

    def _execute(self, message: Dict, send, deadline: Optional[float]):
        """Run O++ source, streaming output in chunked frames."""
        source = message.get("source")
        if not isinstance(source, str):
            raise protocol.ProtocolError("execute needs a string 'source'")
        interp = self.interp
        start = len(interp.output)
        sent = start

        def flush(done: bool) -> None:
            nonlocal sent
            chunk = interp.output[sent:]
            sent = len(interp.output)
            if chunk or done:
                send({"ok": True, "done": done, "output": chunk})

        def step() -> None:
            self._check(deadline)
            if len(interp.output) - sent >= CHUNK_LINES:
                # Mid-execution flush: bounded server-side buffering,
                # and a slow client backpressures only itself (sendall
                # blocks on this connection's socket alone).
                flush(False)

        try:
            interp.run(source, step_hook=step)
        except DeadlineExceededError as exc:
            self._abort_open("timeout")
            send(protocol.error_message(exc))
            return
        except OdeError as exc:
            self._abort_open("error")
            send(protocol.error_message(exc))
            return
        self._check(deadline)
        flush(True)

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Disconnect cleanup: abort any open transaction (on this, the
        owning thread — the only thread allowed to)."""
        try:
            self._abort_open("disconnect")
        except OdeError:
            pass  # a poisoned abort must not block connection teardown
