"""The wire protocol: length-prefixed, checksummed frames of JSON.

Frame layout (all integers big-endian)::

    +--------+--------+----------------+----------------+=========+
    | magic  | flags  | payload length | crc32(payload) | payload |
    | 2 B    | 2 B    | 4 B            | 4 B            | N B     |
    +--------+--------+----------------+----------------+=========+

The magic (``b"Od"``) catches a peer speaking the wrong protocol on the
first frame instead of interpreting garbage as a length; the explicit
length caps allocation (oversized frames are rejected *before* the
payload is read); the crc32 catches torn or corrupted frames — the
network analogue of the storage layer's per-page checksums. A frame that
fails any of these raises :class:`~repro.errors.ProtocolError` and the
connection is closed: framing errors are not recoverable in-band.

Payloads are compact JSON messages (objects with an ``op`` or ``ok``
key; see :mod:`~repro.server.session` for the request catalogue). JSON
keeps the protocol self-describing and dependency-free; the frame layer
is payload-agnostic, so a binary codec can slot in behind the same
framing later.

Socket-layer failpoints (crash-harness hooks, armed via ``REPRO_FAULTS``
like every storage failpoint): ``server.send.pre`` (die before the
reply — the acked-durable-but-unacked window), ``server.send.torn``
(ship a partial frame, then die), ``server.recv.pre`` (fail the read
with EIO).
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Dict, Optional

from ..errors import ConnectionClosedError, ProtocolError

MAGIC = b"Od"
HEADER = struct.Struct("!2sHII")  # magic, flags, length, crc32

#: Reject frames whose declared payload exceeds this many bytes
#: (allocation cap; a malicious or corrupt length field must not OOM the
#: server). Large query results stream as multiple frames instead.
DEFAULT_MAX_FRAME = 4 * 1024 * 1024

#: Flag bits (reserved; 0 today). Senders must zero unknown bits.
FLAGS_NONE = 0


def encode_message(message: Dict) -> bytes:
    """Serialize one protocol message (a JSON-able dict) to payload bytes."""
    return json.dumps(message, separators=(",", ":"),
                      default=str).encode("utf-8")


def decode_message(payload: bytes) -> Dict:
    """Parse payload bytes back into a message dict."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("undecodable payload: %s" % exc)
    if not isinstance(message, dict):
        raise ProtocolError("payload is not a message object: %r"
                            % type(message).__name__)
    return message


def encode_frame(payload: bytes, flags: int = FLAGS_NONE) -> bytes:
    """Wrap *payload* in a checksummed frame."""
    return HEADER.pack(MAGIC, flags, len(payload),
                       zlib.crc32(payload) & 0xFFFFFFFF) + payload


def recv_exact(sock: socket.socket, n: int, faults=None) -> bytes:
    """Read exactly *n* bytes, or raise.

    EOF before the first byte raises :class:`ConnectionClosedError`
    (clean close between frames); EOF mid-read raises
    :class:`ProtocolError` (a torn frame). A socket timeout propagates
    as-is — the caller decides whether that means idle-evict or retry.
    """
    if faults is not None:
        try:
            faults.fire("server.recv.pre")
        except OSError as exc:
            raise ConnectionClosedError("injected recv failure: %s" % exc)
    chunks = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(65536, n - got))
        except (ConnectionResetError, BrokenPipeError):
            chunk = b""
        if not chunk:
            if got == 0:
                raise ConnectionClosedError("peer closed the connection")
            raise ProtocolError("torn frame: EOF after %d of %d bytes"
                                % (got, n))
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket,
               max_frame: int = DEFAULT_MAX_FRAME,
               faults=None) -> bytes:
    """Read one frame; returns its payload bytes (validated)."""
    header = recv_exact(sock, HEADER.size, faults=faults)
    magic, _flags, length, crc = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError("bad magic %r (not an Ode connection?)" % magic)
    if length > max_frame:
        raise ProtocolError("frame of %d bytes exceeds the %d-byte limit"
                            % (length, max_frame))
    payload = recv_exact(sock, length) if length else b""
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise ProtocolError("frame checksum mismatch (corrupt or torn)")
    return payload


def send_frame(sock: socket.socket, payload: bytes, faults=None) -> None:
    """Send one frame; socket timeouts propagate (slow-client handling
    is the server's call)."""
    frame = encode_frame(payload)
    if faults is not None:
        faults.fire("server.send.pre")
        point = faults.fire("server.send.torn")
        if point is not None:  # ship a partial frame, then die
            keep = point.param or max(1, len(frame) // 2)
            sock.sendall(frame[:keep])
            faults.die()
    sock.sendall(frame)


def read_message(sock: socket.socket,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 faults=None) -> Dict:
    """Read one frame and decode its message."""
    return decode_message(read_frame(sock, max_frame, faults=faults))


def send_message(sock: socket.socket, message: Dict, faults=None) -> None:
    """Encode and send one message as a single frame."""
    send_frame(sock, encode_message(message), faults=faults)


def error_message(exc: BaseException, done: bool = True) -> Dict:
    """The wire form of an exception: type name, text, retryability.

    The client re-raises the matching class from :mod:`repro.errors` (by
    name), so a remote :class:`DeadlockError` is caught by the same
    ``except`` clauses an embedded one is; ``retryable`` carries the
    :class:`~repro.errors.TransientError` classification for clients
    without the type table.
    """
    from ..errors import TransientError
    return {"ok": False, "done": done,
            "error": type(exc).__name__,
            "message": str(exc),
            "retryable": isinstance(exc, TransientError)}


def raise_remote(message: Dict) -> None:
    """Client side: re-raise the typed error carried by *message*."""
    from .. import errors as _errors
    name = message.get("error", "OdeError")
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, _errors.OdeError)):
        cls = _errors.OdeError
    raise cls(message.get("message", "remote error"))
