"""Network server mode: a TCP front end over an embedded Database.

ODE assumes a shared persistent object store serving many concurrent
applications; this package is that gateway. A thread-per-connection
server (:mod:`~repro.server.server`) speaks a compact length-prefixed,
checksummed wire protocol (:mod:`~repro.server.protocol`) carrying O++
statements — including ``forall`` queries — and maps every connection
onto its own transaction session (:mod:`~repro.server.session`) riding
the Database's thread-local session machinery, so remote transactions
get the same MVCC snapshots, 2PL writes and scoped aborts embedded ones
do.

The design is robustness-first:

* **admission control** — a connection cap and an in-flight request cap,
  both fast-failing with :class:`~repro.errors.ServerOverloadedError`
  rather than queueing unboundedly;
* **deadlines** — per-request and per-transaction budgets that abort the
  session's transaction through the ordinary scoped-abort path;
* **slow-client handling** — bounded send timeouts and idle read
  timeouts, with eviction that never stalls other connections;
* **graceful drain** — stop accepting, finish (or abort) in-flight
  transactions, clean WAL checkpoint.

:mod:`~repro.server.client` is the matching client library, retrying
transient failures (deadlock, snapshot conflict, overload, drain) with
the shared :mod:`repro.retry` policy.
"""

from .client import Client
from .protocol import (DEFAULT_MAX_FRAME, decode_message, encode_frame,
                       encode_message, read_frame)
from .server import OdeServer, ServerConfig

__all__ = [
    "Client", "OdeServer", "ServerConfig",
    "DEFAULT_MAX_FRAME", "decode_message", "encode_message",
    "encode_frame", "read_frame",
]
