"""Client library for the network server.

A :class:`Client` is a thin, blocking wrapper over one connection: it
ships request messages, reassembles chunked response streams, and
re-raises server-side failures as the *same typed exceptions* the
embedded API uses — a remote ``DeadlockError`` hits the same ``except``
clause a local one does.

Retry discipline mirrors ``Database.run_transaction``: the shared
:class:`~repro.retry.RetryPolicy` backs :meth:`Client.run_transaction`,
which retries :class:`~repro.errors.TransientError` (deadlock, snapshot
conflict, overload, drain) with jittered exponential backoff and
reconnects when the server evicted the connection along the way.
:class:`~repro.errors.ConnectionClosedError` mid-commit is deliberately
*not* retried — the fate of an in-flight commit is unknown, and blind
retry could double-apply; the caller must re-check.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional

from ..errors import (ConnectionClosedError, OdeError, TransactionError,
                      TransientError)
from ..retry import RetryPolicy
from . import protocol


class Client:
    """One connection to a ``repro serve`` instance.

    Not thread-safe: like the embedded Database session, a client is one
    caller's serial channel. Open one per worker thread.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = 30.0,
                 connect_timeout: float = 5.0,
                 max_frame: int = protocol.DEFAULT_MAX_FRAME,
                 retry: Optional[RetryPolicy] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_frame = max_frame
        self.retry = retry or RetryPolicy()
        self._sock: Optional[socket.socket] = None
        self.connect()

    # -- connection --------------------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.connect_timeout)
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request plumbing --------------------------------------------------

    def _request(self, message: Dict) -> Dict:
        """One request/response exchange.

        Reassembles the chunked stream: ``output`` lines accumulate
        across frames and land on the final (``done: true``) message,
        which is returned. Server-side errors re-raise typed. Transport
        failures close the socket so the next call reconnects.
        """
        if self._sock is None:
            self.connect()
        sock = self._sock
        output: List[str] = []
        try:
            protocol.send_message(sock, message)
            while True:
                reply = protocol.read_message(sock, self.max_frame)
                if not reply.get("ok"):
                    break
                output.extend(reply.get("output") or [])
                if reply.get("done"):
                    reply["output"] = output
                    return reply
        except (OSError, ConnectionClosedError):
            # Transport died mid-exchange: the reply (and any in-flight
            # transaction's fate) is unknown. Poison this connection.
            self.close()
            raise
        except protocol.ProtocolError:
            # *Local* framing failure (torn/corrupt frame) — unlike a
            # server-reported error below, this connection is unusable.
            self.close()
            raise
        # The server answered with a typed error; the connection itself
        # is still good (its transaction state may not be). Re-raise.
        protocol.raise_remote(reply)

    # -- request catalogue -------------------------------------------------

    def execute(self, source: str,
                deadline_ms: Optional[float] = None) -> List[str]:
        """Run O++ *source* on the server; returns its output lines."""
        message: Dict = {"op": "execute", "source": source}
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self._request(message)["output"]

    def begin(self) -> None:
        self._request({"op": "begin"})

    def commit(self) -> None:
        self._request({"op": "commit"})

    def abort(self) -> None:
        self._request({"op": "abort"})

    def ping(self, delay_ms: float = 0,
             deadline_ms: Optional[float] = None) -> None:
        message: Dict = {"op": "ping"}
        if delay_ms:
            message["delay_ms"] = delay_ms
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        self._request(message)

    def stats(self) -> Dict:
        return self._request({"op": "stats"})["stats"]

    def snapshot_token(self) -> str:
        return self._request({"op": "token"})["token"]

    # -- transactional retry -----------------------------------------------

    def run_transaction(self, fn):
        """``begin``; ``fn(self)``; ``commit`` — retrying transients.

        The remote analogue of ``Database.run_transaction``: any
        :class:`~repro.errors.TransientError` (remote deadlock or
        snapshot conflict, server overload, drain) aborts, backs off
        with the shared jittered policy, reconnects if the server
        dropped us, and tries again. Non-transient errors — including a
        connection lost *mid-commit*, whose outcome is unknowable —
        propagate after a best-effort abort.
        """
        policy = self.retry
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self.connect()
                self.begin()
                result = fn(self)
                self.commit()
                return result
            except TransientError:
                self._abort_quietly()
                attempt += 1
                if attempt > policy.retries:
                    raise
                policy.sleep(policy.delay(attempt))
            except OdeError:
                self._abort_quietly()
                raise

    def _abort_quietly(self) -> None:
        """Best-effort rollback between retries: the server usually
        already aborted (its error paths do), and the socket may be
        gone; neither should mask the original failure."""
        if self._sock is None:
            return
        try:
            self.abort()
        except (TransactionError, OSError, ConnectionClosedError,
                protocol.ProtocolError):
            pass
        except OdeError:
            pass
