"""Thread-per-connection TCP server with a robustness kernel.

Every queue is bounded, every wait has a deadline, and every overload
path degrades by *fast-failing* rather than buffering:

* **Connection admission** — at most ``max_connections`` concurrent
  connections; an accept beyond that is answered with one
  :class:`~repro.errors.ServerOverloadedError` frame and closed (the
  kernel's own accept backlog is the only queue, and it is bounded).
* **Request admission** — at most ``max_inflight`` requests execute at
  once; a request that cannot get a slot within ``admission_wait_s``
  fast-fails with the same typed error. Clients retry with backoff;
  the server never grows an unbounded work queue.
* **Deadlines** — requests carry their own budget; transactions get
  ``txn_timeout_s``. Expiry aborts through the scoped-abort path (see
  :mod:`~repro.server.session`); a transaction left open by an *idle*
  connection is reaped by closing its socket, which wakes the handler
  thread to abort on the owning thread.
* **Slow clients** — sends run under ``write_timeout_s``; a client that
  cannot drain its replies is evicted. Its socket alone blocks, so the
  eviction never stalls other connections.
* **Graceful drain** — ``shutdown()`` stops accepting, lets in-flight
  requests finish within ``drain_timeout_s``, closes the stragglers
  (their transactions abort on their own threads), and leaves the
  database ready for a clean final checkpoint.

Everything is observable: ``server.*`` metrics in the shared registry
and connection lifecycle events in the database's event log.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, Optional

from ..errors import (ConnectionClosedError, ProtocolError,
                      ServerOverloadedError, ServerShutdownError)
from . import protocol
from .session import Session

#: Listen backlog (kernel accept queue) — deliberately small: beyond it
#: the *client's* connect blocks/fails, which is the backpressure.
ACCEPT_BACKLOG = 16

#: Latency buckets for ``server.request_ns`` (~100us .. 10s).
REQUEST_BUCKETS_NS = tuple(int(base * 10 ** exp)
                           for exp in range(5, 10)
                           for base in (1.0, 3.2)) + (10 ** 10,)


class ServerConfig:
    """Tunables for :class:`OdeServer` (plain attributes; construct with
    keyword overrides)."""

    #: bind address; port 0 asks the kernel for an ephemeral port
    host: str = "127.0.0.1"
    port: int = 0
    max_connections: int = 64
    max_inflight: int = 8
    #: seconds a request may wait for an execution slot before the
    #: overload fast-fail (0 = immediate)
    admission_wait_s: float = 0.05
    #: abort budget for explicit transactions (0 = unlimited)
    txn_timeout_s: float = 30.0
    #: reads: a connection silent this long is evicted
    idle_timeout_s: float = 300.0
    #: writes: a client that can't drain a reply this long is evicted
    write_timeout_s: float = 10.0
    #: graceful-drain budget for in-flight requests at shutdown
    drain_timeout_s: float = 10.0
    max_frame: int = protocol.DEFAULT_MAX_FRAME
    #: honor ping.delay_ms (tests / admission drills only)
    allow_debug_delay: bool = False
    #: server-side SO_SNDBUF override (slow-client eviction tests)
    sndbuf: Optional[int] = None

    def __init__(self, **overrides):
        for key, value in overrides.items():
            if not hasattr(type(self), key):
                raise TypeError("unknown ServerConfig option %r" % key)
            setattr(self, key, value)


class _Evict(Exception):
    """Internal: tear this connection down for *reason*."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _Conn:
    """Bookkeeping for one live connection."""

    __slots__ = ("sock", "addr", "thread", "session", "opened",
                 "bytes_in", "bytes_out")

    def __init__(self, sock, addr):
        self.sock = sock
        self.addr = addr
        self.thread: Optional[threading.Thread] = None
        self.session: Optional[Session] = None
        self.opened = time.monotonic()
        self.bytes_in = 0
        self.bytes_out = 0


class OdeServer:
    """Serve a :class:`~repro.core.database.Database` over TCP."""

    def __init__(self, db, config: Optional[ServerConfig] = None):
        self.db = db
        self.config = config or ServerConfig()
        self.metrics = db.metrics
        self.events = db.events
        self._listener: Optional[socket.socket] = None
        self.address = None  # (host, port) after start()
        self._conns: Dict[int, _Conn] = {}
        self._conns_lock = threading.Lock()
        self._inflight = threading.BoundedSemaphore(self.config.max_inflight)
        self._inflight_count = 0
        self._draining = False
        self._stopped = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._reaper_thread: Optional[threading.Thread] = None
        m = self.metrics
        m.gauge_fn("server.connections", lambda: len(self._conns))
        m.gauge_fn("server.inflight", lambda: self._inflight_count)
        self._c_conns = m.counter("server.connections.total")
        self._c_requests = m.counter("server.requests")
        self._h_request_ns = m.histogram("server.request_ns",
                                         list(REQUEST_BUCKETS_NS))
        self._c_reject_conn = m.counter("server.overload_rejects",
                                        kind="connections")
        self._c_reject_req = m.counter("server.overload_rejects",
                                       kind="inflight")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "OdeServer":
        cfg = self.config
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((cfg.host, cfg.port))
        listener.listen(ACCEPT_BACKLOG)
        listener.settimeout(0.25)  # poll the stop flag
        self._listener = listener
        self.address = listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True)
        self._accept_thread.start()
        self._reaper_thread = threading.Thread(
            target=self._reaper_loop, name="repro-serve-reaper", daemon=True)
        self._reaper_thread.start()
        self.events.emit("server_started", host=self.address[0],
                         port=self.address[1])
        return self

    def shutdown(self) -> None:
        """Graceful drain: stop accepting, let in-flight requests finish
        within the drain budget, abort the rest, release every thread.

        Idempotent. The caller (the ``repro serve`` CLI) closes the
        database afterwards — with the sessions gone that close performs
        the clean final WAL checkpoint.
        """
        if self._stopped.is_set():
            return
        self._draining = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        # Give in-flight requests their drain budget; handlers notice
        # the draining flag between requests and exit on their own.
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            with self._conns_lock:
                busy = self._inflight_count
                idle_conns = not self._conns
            if not busy and idle_conns:
                break
            if not busy:
                # Only idle connections remain — no need to wait longer.
                break
            time.sleep(0.02)
        # Wake every handler still parked in recv (or stuck sending to a
        # dead client): closing the socket raises in its thread, whose
        # teardown aborts any open transaction on the owning thread.
        with self._conns_lock:
            entries = list(self._conns.values())
        for entry in entries:
            self._shutdown_sock(entry.sock)
        for entry in entries:
            if entry.thread is not None:
                entry.thread.join(timeout=5.0)
        self._stopped.set()
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=5.0)
        self.metrics.counter("server.drains").inc()
        self.events.emit("server_drained",
                         aborted_conns=len(entries))

    @staticmethod
    def _shutdown_sock(sock) -> None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def __enter__(self) -> "OdeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- accept / admission ------------------------------------------------

    def _accept_loop(self) -> None:
        cfg = self.config
        while not self._draining:
            try:
                sock, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: drain started
            if self._draining:
                self._fast_fail(sock, ServerShutdownError(
                    "server is draining"))
                continue
            with self._conns_lock:
                over = len(self._conns) >= cfg.max_connections
                if not over:
                    entry = _Conn(sock, addr)
                    self._conns[id(entry)] = entry
            if over:
                self._c_reject_conn.inc()
                self._fast_fail(sock, ServerOverloadedError(
                    "connection limit (%d) reached" % cfg.max_connections))
                continue
            self._c_conns.inc()
            if cfg.sndbuf:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF,
                                cfg.sndbuf)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_conn, args=(entry,),
                name="repro-serve-%s:%s" % addr[:2], daemon=True)
            entry.thread = thread
            thread.start()

    def _fast_fail(self, sock, exc) -> None:
        """Best-effort typed rejection, then close — never block accept."""
        try:
            sock.settimeout(1.0)
            protocol.send_message(sock, protocol.error_message(exc))
        except OSError:
            pass
        finally:
            self._shutdown_sock(sock)

    # -- per-connection handler --------------------------------------------

    def _serve_conn(self, entry: _Conn) -> None:
        cfg = self.config
        sock = entry.sock
        faults = self.db.faults
        session = Session(self.db, sock, cfg, self.metrics)
        entry.session = session
        self.events.emit("server_conn_open", peer="%s:%s" % entry.addr[:2])
        evict_reason = None
        try:
            while not self._draining:
                sock.settimeout(cfg.idle_timeout_s)
                try:
                    payload = protocol.read_frame(sock, cfg.max_frame,
                                                  faults=faults)
                except socket.timeout:
                    raise _Evict("idle")
                except ConnectionClosedError:
                    return  # clean goodbye between frames
                entry.bytes_in += len(payload)
                message = protocol.decode_message(payload)
                if self._draining:
                    self._send(entry, protocol.error_message(
                        ServerShutdownError("server is draining")))
                    return
                if not self._inflight.acquire(
                        timeout=cfg.admission_wait_s):
                    self._c_reject_req.inc()
                    self._send(entry, protocol.error_message(
                        ServerOverloadedError(
                            "%d requests in flight; admission queue "
                            "full" % cfg.max_inflight)))
                    continue
                self._inflight_count += 1
                start = time.perf_counter_ns()
                try:
                    self._c_requests.inc()
                    session.handle(message,
                                   lambda m: self._send(entry, m))
                finally:
                    self._inflight_count -= 1
                    self._inflight.release()
                    self._h_request_ns.observe(
                        time.perf_counter_ns() - start)
        except _Evict as evict:
            evict_reason = evict.reason
        except ProtocolError as exc:
            # Framing is broken; one best-effort error frame, then close.
            evict_reason = "protocol"
            try:
                sock.settimeout(1.0)
                protocol.send_message(sock, protocol.error_message(exc))
            except OSError:
                pass
        except OSError:
            evict_reason = "io"
        finally:
            # Teardown always runs on the connection's own thread — the
            # only thread allowed to abort its session's transaction.
            session.close()
            with self._conns_lock:
                self._conns.pop(id(entry), None)
            self._shutdown_sock(sock)
            if evict_reason is not None:
                self.metrics.counter("server.evictions",
                                     reason=evict_reason).inc()
            self.events.emit(
                "server_conn_close", peer="%s:%s" % entry.addr[:2],
                requests=session.requests, commits=session.commits,
                bytes_in=entry.bytes_in, bytes_out=entry.bytes_out,
                evicted=evict_reason)

    def _send(self, entry: _Conn, message: Dict) -> None:
        """Ship one response frame under the write timeout; a client that
        cannot drain it in time is evicted (slow-client detection)."""
        payload = protocol.encode_message(message)
        entry.sock.settimeout(self.config.write_timeout_s)
        try:
            protocol.send_frame(entry.sock, payload,
                                faults=self.db.faults)
        except socket.timeout:
            raise _Evict("slow_client")
        entry.bytes_out += len(payload)

    # -- reaper ------------------------------------------------------------

    def _reaper_loop(self) -> None:
        """Evict idle connections squatting on an expired transaction.

        The deadline check for *running* requests happens inline (the
        session's step hook); this thread only handles the complement —
        a client that opened a transaction and went silent, pinning
        locks and its MVCC snapshot. Closing its socket wakes the
        handler thread out of ``recv``; the abort then runs on the
        owning thread, never here.
        """
        while not self._stopped.wait(0.2):
            now = time.monotonic()
            with self._conns_lock:
                expired = [
                    entry for entry in self._conns.values()
                    if entry.session is not None
                    and not entry.session.busy
                    and entry.session.txn_deadline is not None
                    and now > entry.session.txn_deadline]
            for entry in expired:
                self.metrics.counter("server.evictions",
                                     reason="txn_deadline").inc()
                self.events.emit("server_txn_expired",
                                 peer="%s:%s" % entry.addr[:2])
                self._shutdown_sock(entry.sock)
