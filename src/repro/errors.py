"""Exception hierarchy for the Ode reproduction.

Every error raised by the library derives from :class:`OdeError`, so client
code can catch a single base class. Subsystems add their own subclasses:
the storage engine raises :class:`StorageError` subtypes, the object layer
raises :class:`ObjectError` subtypes, and the O++ interpreter raises
:class:`OppError` subtypes.
"""

from __future__ import annotations


class OdeError(Exception):
    """Base class for all errors raised by the Ode reproduction."""


class TransientError(OdeError):
    """The operation failed through no fault of the caller; a retry may
    well succeed.

    Mixed into the concrete error types that mean "aborted, run it
    again": deadlock victims, snapshot write conflicts, flaky-disk I/O
    errors, lock timeouts, and server overload fast-fails.
    ``db.run_transaction`` and the network client's retry loop classify
    retryable-vs-fatal with a single ``isinstance`` check against this
    class instead of maintaining parallel ad-hoc tuples.
    """


# ---------------------------------------------------------------------------
# Storage engine
# ---------------------------------------------------------------------------

class StorageError(OdeError):
    """Base class for errors raised by the storage engine."""


class CodecError(StorageError):
    """A value could not be encoded to or decoded from its binary form."""


class PageError(StorageError):
    """A page-level invariant was violated (overflow, bad slot, bad id)."""


class PageFullError(PageError):
    """There is not enough contiguous free space on a page for a record."""


class CorruptPageError(PageError):
    """A page failed its checksum (torn write, lost write, or bit rot).

    Raised instead of whatever decode exception the damaged bytes would
    otherwise produce. The store quarantines the page and flips into
    read-only degraded mode; reads of healthy pages keep working.
    """

    def __init__(self, message, page_no=None):
        super().__init__(message)
        self.page_no = page_no


class DegradedModeError(StorageError):
    """The store is in read-only degraded mode and rejects writes.

    Entered when a corrupt page is detected or the WAL can no longer be
    flushed durably. Reads of healthy pages keep working; writes raise
    this until the damage is repaired (``db.repair()``) or the database
    is reopened (crash recovery).
    """

    def __init__(self, message, reason=None):
        super().__init__(message)
        self.reason = reason


class TransientIOError(StorageError, TransientError):
    """An I/O operation failed in a way that may succeed on retry (EIO,
    short read). ``db.run_transaction`` retries these with backoff."""


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (e.g. all pages pinned)."""


class WalError(StorageError):
    """The write-ahead log is corrupt or was used incorrectly."""


class WalFlushError(WalError):
    """An fsync of the log failed; durability can no longer be promised.

    The failure is *sticky*: once a flush fails, the log refuses further
    appends and flushes (retrying fsync after a reported failure can
    silently drop the very pages that failed — the "fsync-gate" trap), so
    a falsely-acked commit is impossible. The store degrades to read-only;
    reopening the database recovers to the durable prefix of the log.
    """


class RecoveryError(StorageError):
    """Crash recovery failed to restore a consistent database state."""


class IndexError_(StorageError):
    """An index structure invariant was violated.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``; exported as ``OdeIndexError`` from the package root.
    """


class DuplicateKeyError(IndexError_):
    """A unique index rejected insertion of a key that is already present."""


class LockError(StorageError):
    """Base class for lock-manager errors."""


class DeadlockError(LockError, TransientError):
    """A lock request would create a cycle in the waits-for graph."""


class LockTimeoutError(LockError, TransientError):
    """A lock request timed out before it could be granted."""


class CatalogError(StorageError):
    """The system catalog is inconsistent or a lookup failed."""


# ---------------------------------------------------------------------------
# Object layer (the paper's data model)
# ---------------------------------------------------------------------------

class ObjectError(OdeError):
    """Base class for errors raised by the object layer."""


class SchemaError(ObjectError):
    """A class definition is invalid (bad field, bad inheritance, ...)."""


class ClusterNotFoundError(ObjectError):
    """A persistent object was created before its cluster exists.

    The paper (section 2.5): "Before creating a persistent object, the
    corresponding cluster must exist; it is created by invoking the create
    macro".
    """


class ClusterExistsError(ObjectError):
    """``create`` was invoked for a cluster that already exists."""


class DanglingReferenceError(ObjectError):
    """An object id refers to an object that has been deleted."""


class NotPersistentError(ObjectError):
    """A persistence-only operation was applied to a volatile object."""


class VersionError(ObjectError):
    """A versioning operation was invalid (e.g. newversion on volatile)."""


class ConstraintViolation(ObjectError):
    """An object failed one of its class constraints.

    Per the paper (section 5, footnote 17) a violation aborts the enclosing
    transaction, which is rolled back.
    """

    def __init__(self, message, obj=None, constraint_name=None):
        super().__init__(message)
        self.obj = obj
        self.constraint_name = constraint_name


class TriggerError(ObjectError):
    """A trigger was activated or deactivated incorrectly."""


class TransactionError(ObjectError):
    """A transaction was used incorrectly (e.g. commit after abort)."""


class TransactionAborted(TransactionError):
    """The enclosing transaction has been aborted and rolled back."""

    def __init__(self, message, reason=None):
        super().__init__(message)
        self.reason = reason


class SnapshotConflictError(TransactionError, TransientError):
    """A write collided with a commit newer than this txn's snapshot.

    Under MVCC snapshot reads a transaction reads as of its snapshot LSN
    without S locks; when it then writes an object it has read (or an
    object of a cluster it has scanned) that another transaction has
    committed to since the snapshot, proceeding would silently base the
    write on stale data (a lost update). First-updater-wins: the later
    writer aborts with this error. Like a deadlock, it means "aborted
    through no fault of its own — run it again": ``db.run_transaction``
    retries it with a fresh snapshot.
    """


class SnapshotTooOldError(TransactionError):
    """A historical (``as of``) read asked for a pruned snapshot.

    Version history for snapshot resolution is retained in memory only
    as far back as the oldest active snapshot; a time-travel query whose
    token predates what is retained cannot be answered consistently.
    """


class TriggerActionError(TransactionError):
    """One or more fired trigger actions failed.

    Fired actions run as independent transactions *after* the activating
    transaction commits (the paper's weak coupling, section 6), so a
    failure cannot — and must not — undo that commit. Instead each failing
    action's own transaction is aborted, the remaining queued actions still
    run, and this error is raised at the end carrying the per-action
    outcomes in :attr:`results`: a list of ``(description, exception_or_
    None)`` pairs, one per executed action, in execution order.
    """

    def __init__(self, message, results=None):
        super().__init__(message)
        self.results = list(results or [])

    @property
    def failures(self):
        """The ``(description, exception)`` pairs for failed actions."""
        return [(desc, exc) for desc, exc in self.results
                if exc is not None]


# ---------------------------------------------------------------------------
# Query layer
# ---------------------------------------------------------------------------

class QueryError(OdeError):
    """Base class for errors raised by the query layer."""


# ---------------------------------------------------------------------------
# O++ language front end
# ---------------------------------------------------------------------------

class OppError(OdeError):
    """Base class for errors raised by the O++ front end."""

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = "line %d:%s %s" % (
                line, "" if column is None else " col %d:" % column, message)
        super().__init__(message)
        self.line = line
        self.column = column


class OppSyntaxError(OppError):
    """The O++ source could not be tokenized or parsed."""


class OppTypeError(OppError):
    """An O++ expression was applied to operands of the wrong type."""


class OppNameError(OppError):
    """An undefined name was referenced in an O++ program."""


class OppRuntimeError(OppError):
    """An O++ program failed at run time."""


# ---------------------------------------------------------------------------
# Network server / client
# ---------------------------------------------------------------------------

class ServerError(OdeError):
    """Base class for errors raised by the network server and client."""


class ProtocolError(ServerError):
    """A wire frame was malformed: bad magic, oversized declared length,
    checksum mismatch, or truncated (torn) payload. The connection that
    produced it is closed — framing errors are not recoverable in-band."""


class ConnectionClosedError(ServerError):
    """The peer closed (or was evicted from) the connection.

    Raised client-side when the server goes away mid-conversation. Not
    transient by itself: an in-flight transaction's fate is *unknown*
    (the commit may or may not have been acknowledged-durable), so a
    blind retry could double-apply. The client retries it only for
    requests it knows carry no open transaction state.
    """


class ServerOverloadedError(ServerError, TransientError):
    """The server fast-failed the request under admission control.

    Either the connection limit or the in-flight request limit was hit;
    nothing was executed. Always safe — and expected — to retry with
    backoff (the client library does).
    """


class DeadlineExceededError(ServerError):
    """A request (or its enclosing transaction) overran its deadline.

    The server aborts the transaction through the ordinary scoped-abort
    path before responding, so no partial state remains. Not transient:
    retrying the same work against the same deadline would fail the same
    way — the *caller* decides whether to retry with a longer budget.
    """


class ServerShutdownError(ServerError, TransientError):
    """The server is draining (graceful shutdown) and takes no new work.

    Transient from the client's point of view: another replica — or the
    same server after a restart — can serve the retry.
    """
