"""Typed field descriptors — the data members of Ode classes.

O++ class members are typed C++ data members. In this reproduction a class
declares its members with field descriptors::

    class StockItem(OdeObject):
        name = StringField()
        price = FloatField(default=0.0)
        qty = IntField()
        supplier = RefField("Supplier")     # pointer to a persistent object
        consumers = SetField()              # the paper's set<...> member

Descriptors validate assignments, supply defaults, mark the owning object
dirty for write-back, and know how to convert values to and from the
storage representation (references become :class:`~repro.core.oid.Oid` /
:class:`~repro.core.oid.Vref`, live persistent objects are swizzled to
their ids).

The dual-pointer model of section 2.2 — ``stockitem *`` vs ``persistent
stockitem *`` — maps onto Python as: a field may hold either a direct
(volatile) object reference or an id of a persistent object; code reads
both through the same attribute. ``RefField(persistent_only=True)`` gets
you the strictly-typed persistent pointer when wanted.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SchemaError
from .oid import Oid, Vref

#: Sentinel distinguishing "no default" from "default is None".
_NO_DEFAULT = object()


class Field:
    """Base descriptor for a typed, persisted data member."""

    #: Acceptable Python types for values of the field (None always allowed
    #: unless ``nullable=False``).
    python_types: tuple = (object,)

    def __init__(self, default: Any = _NO_DEFAULT, nullable: bool = True,
                 check: Optional[Callable[[Any], bool]] = None):
        """*default* seeds new objects; *check* is a per-value predicate."""
        self.name: str = "<unbound>"
        self.owner_name: str = "<unbound>"
        self._default = default
        self.nullable = nullable
        self.check = check

    def __set_name__(self, owner, name: str) -> None:
        self.name = name
        self.owner_name = owner.__name__

    # -- descriptor protocol ------------------------------------------------

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        state = obj.__dict__.get("_f_" + self.name, _NO_DEFAULT)
        if state is _NO_DEFAULT:
            value = self.default_value()
            obj.__dict__["_f_" + self.name] = value
            return value
        return self.from_stored_hook(obj, state)

    def __set__(self, obj, value) -> None:
        value = self.validate(value)
        # Mark dirty BEFORE storing the new value: dirty-marking acquires
        # the object's write lock and (under MVCC) captures the pre-image
        # and runs the write-write conflict check. If either raises, the
        # in-memory object must still hold the old value.
        mark = getattr(obj, "_p_mark_dirty", None)
        if mark is not None:
            mark()
        obj.__dict__["_f_" + self.name] = value
        self.post_set(obj, value)

    def post_set(self, obj, value) -> None:
        """Hook after assignment (container fields bind their owner)."""

    def from_stored_hook(self, obj, value):
        """Post-process a value on read (overridden by RefField)."""
        return value

    # -- validation -----------------------------------------------------------

    def validate(self, value):
        """Check and coerce *value*; raise :class:`SchemaError` if invalid."""
        if value is None:
            if not self.nullable:
                raise SchemaError("%s.%s may not be None"
                                  % (self.owner_name, self.name))
            return None
        if not isinstance(value, self.python_types):
            value = self.coerce(value)
        if self.check is not None and not self.check(value):
            raise SchemaError("%s.%s: value %r fails the field check"
                              % (self.owner_name, self.name, value))
        return value

    def coerce(self, value):
        """Last-chance conversion; default is to reject."""
        raise SchemaError("%s.%s expects %s, got %r" % (
            self.owner_name, self.name,
            "/".join(t.__name__ for t in self.python_types), value))

    def default_value(self):
        if self._default is _NO_DEFAULT:
            return None
        if callable(self._default):
            return self.validate(self._default())
        return self.validate(self._default)

    # -- storage conversion -------------------------------------------------------

    def to_stored(self, obj, value):
        """Convert the live value to its storage form (codec-encodable)."""
        return value

    def from_stored(self, obj, value):
        """Convert the storage form back to the live value."""
        return value

    def __repr__(self) -> str:
        return "%s(%s.%s)" % (type(self).__name__, self.owner_name, self.name)


class IntField(Field):
    """A 64-bit-ish integer member (Python int; bools rejected)."""

    python_types = (int,)

    def validate(self, value):
        if isinstance(value, bool):
            raise SchemaError("%s.%s expects int, got bool"
                              % (self.owner_name, self.name))
        return super().validate(value)


class FloatField(Field):
    """A double member; ints are accepted and widened."""

    python_types = (float,)

    def coerce(self, value):
        if isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        return super().coerce(value)


class BoolField(Field):
    python_types = (bool,)


class StringField(Field):
    """A char*/string member, optionally length-limited."""

    python_types = (str,)

    def __init__(self, default: Any = _NO_DEFAULT, nullable: bool = True,
                 max_length: Optional[int] = None,
                 check: Optional[Callable[[Any], bool]] = None):
        super().__init__(default, nullable, check)
        self.max_length = max_length

    def validate(self, value):
        value = super().validate(value)
        if (value is not None and self.max_length is not None
                and len(value) > self.max_length):
            raise SchemaError("%s.%s: string longer than %d"
                              % (self.owner_name, self.name, self.max_length))
        return value


class CharField(StringField):
    """A single character, as in the paper's ``char sex`` example."""

    def __init__(self, default: Any = _NO_DEFAULT, nullable: bool = True,
                 check: Optional[Callable[[Any], bool]] = None):
        super().__init__(default, nullable, max_length=1, check=check)


class BytesField(Field):
    python_types = (bytes,)


class TrackedList(list):
    """A list that marks its owning object dirty on mutation."""

    _MUTATORS = ("append", "extend", "insert", "remove", "pop", "clear",
                 "sort", "reverse", "__setitem__", "__delitem__",
                 "__iadd__", "__imul__")

    def __init__(self, items=(), owner=None):
        super().__init__(items)
        self._owner = owner

    def _touch(self):
        owner = getattr(self, "_owner", None)
        if owner is not None:
            mark = getattr(owner, "_p_mark_dirty", None)
            if mark is not None:
                mark()


def _wrap_mutator(cls, name):
    base = getattr(list if cls is TrackedList else dict, name)

    def mutator(self, *args, **kwargs):
        result = base(self, *args, **kwargs)
        self._touch()
        return result
    mutator.__name__ = name
    setattr(cls, name, mutator)


for _name in TrackedList._MUTATORS:
    _wrap_mutator(TrackedList, _name)


class TrackedDict(dict):
    """A dict that marks its owning object dirty on mutation."""

    _MUTATORS = ("__setitem__", "__delitem__", "pop", "popitem", "clear",
                 "update", "setdefault")

    def __init__(self, items=(), owner=None):
        super().__init__(items)
        self._owner = owner

    def _touch(self):
        owner = getattr(self, "_owner", None)
        if owner is not None:
            mark = getattr(owner, "_p_mark_dirty", None)
            if mark is not None:
                mark()


for _name in TrackedDict._MUTATORS:
    _wrap_mutator(TrackedDict, _name)


class ListField(Field):
    """An ordered collection member (stored as a list).

    In-place mutations (`append`, slicing, `sort`, ...) mark the owning
    object dirty, so they persist at the next commit.
    """

    python_types = (list,)

    def default_value(self):
        if self._default is _NO_DEFAULT:
            return TrackedList()
        return super().default_value()

    def validate(self, value):
        value = super().validate(value)
        if value is not None and not isinstance(value, TrackedList):
            value = TrackedList(value)
        return value

    def from_stored_hook(self, obj, value):
        if isinstance(value, TrackedList) and value._owner is None:
            value._owner = obj
        return value

    def post_set(self, obj, value) -> None:
        if isinstance(value, TrackedList):
            value._owner = obj

    def to_stored(self, obj, value):
        return list(value)

    def from_stored(self, obj, value):
        return TrackedList(value, owner=obj)


class DictField(Field):
    """A mapping member; in-place mutations mark the owner dirty."""

    python_types = (dict,)

    def default_value(self):
        if self._default is _NO_DEFAULT:
            return TrackedDict()
        return super().default_value()

    def validate(self, value):
        value = super().validate(value)
        if value is not None and not isinstance(value, TrackedDict):
            value = TrackedDict(value)
        return value

    def from_stored_hook(self, obj, value):
        if isinstance(value, TrackedDict) and value._owner is None:
            value._owner = obj
        return value

    def post_set(self, obj, value) -> None:
        if isinstance(value, TrackedDict):
            value._owner = obj

    def to_stored(self, obj, value):
        return dict(value)

    def from_stored(self, obj, value):
        return TrackedDict(value, owner=obj)


class AnyField(Field):
    """An untyped member; anything codec-encodable (or a reference)."""


class RefField(Field):
    """A pointer member: volatile object, persistent object, or id.

    *target* optionally names the Ode class (or cluster) the pointer must
    reference; ``persistent_only=True`` makes it the paper's
    ``persistent T *`` — volatile objects are rejected.

    Reading a RefField whose stored value is an :class:`Oid`/:class:`Vref`
    returns the id as-is; dereference with ``db.deref(ref)`` or the object's
    convenience ``obj.follow("field")``. (Automatic faulting lives in the
    object layer, which knows the database; the descriptor stays passive.)
    """

    def __init__(self, target: Optional[str] = None,
                 default: Any = _NO_DEFAULT, nullable: bool = True,
                 persistent_only: bool = False):
        super().__init__(default, nullable)
        self.target = target
        self.persistent_only = persistent_only

    def validate(self, value):
        if value is None:
            if not self.nullable:
                raise SchemaError("%s.%s may not be None"
                                  % (self.owner_name, self.name))
            return None
        if isinstance(value, (Oid, Vref)):
            if self.target is not None and not self._cluster_ok(value.cluster):
                raise SchemaError(
                    "%s.%s must reference %s, got a %s id"
                    % (self.owner_name, self.name, self.target, value.cluster))
            return value
        # A live object: volatile or a bound persistent instance.
        from .objects import OdeObject
        if not isinstance(value, OdeObject):
            raise SchemaError("%s.%s expects an object or id, got %r"
                              % (self.owner_name, self.name, value))
        if self.target is not None and not self._class_ok(type(value)):
            raise SchemaError("%s.%s must reference %s, got %s"
                              % (self.owner_name, self.name, self.target,
                                 type(value).__name__))
        if self.persistent_only and not value.is_persistent:
            raise SchemaError(
                "%s.%s is a persistent pointer; %r is volatile"
                % (self.owner_name, self.name, value))
        return value

    def _class_ok(self, cls) -> bool:
        return any(base.__name__ == self.target for base in cls.__mro__)

    def _cluster_ok(self, cluster: str) -> bool:
        from .objects import class_registry
        cls = class_registry().get(cluster)
        return cls is None or self._class_ok(cls)

    def to_stored(self, obj, value):
        from .objects import OdeObject
        if isinstance(value, OdeObject):
            if not value.is_persistent:
                raise SchemaError(
                    "cannot persist %s.%s: it points at a volatile object "
                    "(persist the target first or keep the holder volatile)"
                    % (self.owner_name, self.name))
            return value.oid
        return value


class SetField(Field):
    """The paper's ``set<type>`` member (section 2.6).

    The live value is an :class:`~repro.core.sets.OdeSet`; assignment
    accepts any iterable. Elements may be plain values, ids, or live
    persistent objects (swizzled to ids on store).
    """

    def __init__(self, target: Optional[str] = None,
                 default: Any = _NO_DEFAULT):
        super().__init__(default, nullable=False)
        self.target = target

    def validate(self, value):
        from .sets import OdeSet
        if value is None:
            raise SchemaError("%s.%s: a set member cannot be None"
                              % (self.owner_name, self.name))
        if isinstance(value, OdeSet):
            return value
        try:
            return OdeSet(value)
        except TypeError:
            raise SchemaError("%s.%s expects an iterable, got %r"
                              % (self.owner_name, self.name, value))

    def from_stored_hook(self, obj, value):
        from .sets import OdeSet
        if isinstance(value, OdeSet) and value._owner is None:
            value._bind_owner(obj)
        return value

    def post_set(self, obj, value) -> None:
        from .sets import OdeSet
        if isinstance(value, OdeSet):
            value._bind_owner(obj)

    def default_value(self):
        from .sets import OdeSet
        if self._default is _NO_DEFAULT:
            return OdeSet()
        return super().default_value()

    def to_stored(self, obj, value):
        from .objects import OdeObject
        stored = []
        for item in value:
            if isinstance(item, OdeObject):
                if not item.is_persistent:
                    raise SchemaError(
                        "cannot persist %s.%s: set contains a volatile object"
                        % (self.owner_name, self.name))
                stored.append(item.oid)
            else:
                stored.append(item)
        return stored

    def from_stored(self, obj, value):
        from .sets import OdeSet
        result = OdeSet(value)
        result._bind_owner(obj)
        return result
