"""OdeSet — the paper's ``set<type>`` (section 2.6).

An OdeSet is an unordered collection without duplicates. The paper gives
sets two defining behaviours beyond the obvious:

* **Insert/remove operators.** O++ writes ``s << x`` to insert and
  ``s >> x`` to remove (Concurrent C heritage). OdeSet supports both the
  operators and plain :meth:`insert` / :meth:`remove` methods.
* **Iteration sees insertions made during iteration** (section 3.2): the
  ``forall`` loop over a set also visits elements added while the loop
  runs. This is what makes least-fixpoint (recursive) queries expressible
  with ordinary loops. OdeSet's iterator therefore tracks the set's append
  log instead of snapshotting.

Elements must be hashable (ids, strings, numbers, tuples, frozen values,
or live Ode objects, which hash by identity).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional


class OdeSet:
    """Duplicate-free collection with insertion-ordered, growth-tolerant
    iteration.

    When an OdeSet is the value of a persistent object's
    :class:`~repro.core.fields.SetField`, mutating it in place marks the
    owning object dirty, so ``item.parts.insert(x)`` persists at the next
    commit with no explicit reassignment.
    """

    __slots__ = ("_members", "_order", "_owner")

    def __init__(self, items: Optional[Iterable] = None):
        self._members = set()
        self._order = []  # append log; tombstones left as removed markers
        self._owner = None  # the OdeObject holding this set, if any
        if items is not None:
            for item in items:
                self.insert(item)

    def _bind_owner(self, owner) -> None:
        """Attach the object whose field holds this set (dirty tracking)."""
        self._owner = owner

    def _touch(self) -> None:
        owner = self._owner
        if owner is not None:
            mark = getattr(owner, "_p_mark_dirty", None)
            if mark is not None:
                mark()

    # -- mutation --------------------------------------------------------------

    def insert(self, item: Any) -> bool:
        """Add *item*; returns True if it was not already present."""
        if item in self._members:
            return False
        self._members.add(item)
        self._order.append(item)
        self._touch()
        return True

    def remove(self, item: Any) -> bool:
        """Remove *item*; returns True if it was present."""
        if item not in self._members:
            return False
        self._members.discard(item)
        self._touch()
        return True

    def __lshift__(self, item: Any) -> "OdeSet":
        """``s << x`` — the paper's insertion operator."""
        self.insert(item)
        return self

    def __rshift__(self, item: Any) -> "OdeSet":
        """``s >> x`` — the paper's removal operator."""
        self.remove(item)
        return self

    def clear(self) -> None:
        self._members.clear()
        self._order.clear()
        self._touch()

    # -- queries -----------------------------------------------------------------

    def __contains__(self, item: Any) -> bool:
        return item in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def __iter__(self) -> Iterator:
        """Iterate in insertion order, *including* elements inserted during
        the iteration (the fixpoint-query property). Elements removed
        before the cursor reaches them are skipped."""
        yielded = set()
        i = 0
        while i < len(self._order):
            item = self._order[i]
            i += 1
            # The append log may hold several entries for an element that
            # was removed and reinserted; yield each element at most once.
            if item in self._members and item not in yielded:
                yielded.add(item)
                yield item

    def snapshot(self) -> frozenset:
        """A frozen copy of the current membership."""
        return frozenset(self._members)

    # -- set algebra (returns plain OdeSets) ------------------------------------

    def union(self, other: Iterable) -> "OdeSet":
        result = OdeSet(self)
        for item in other:
            result.insert(item)
        return result

    def intersection(self, other: Iterable) -> "OdeSet":
        other_set = set(other)
        return OdeSet(x for x in self if x in other_set)

    def difference(self, other: Iterable) -> "OdeSet":
        other_set = set(other)
        return OdeSet(x for x in self if x not in other_set)

    def __or__(self, other):
        return self.union(other)

    def __and__(self, other):
        return self.intersection(other)

    def __sub__(self, other):
        return self.difference(other)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, OdeSet):
            return self._members == other._members
        if isinstance(other, (set, frozenset)):
            return self._members == other
        return NotImplemented

    def __hash__(self):
        return None  # mutable: unhashable (mirrors list/set)

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        preview = ", ".join(repr(x) for i, x in zip(range(8), self))
        suffix = ", ..." if len(self) > 8 else ""
        return "OdeSet{%s%s}" % (preview, suffix)

    def _compact(self) -> None:
        """Drop tombstones from the append log (amortised maintenance)."""
        self._order = [x for x in self._order if x in self._members]
