"""Version macros — newversion, vprev, vnext, vfirst, vlast (section 4).

The paper exposes versioning through macros; this module provides them as
module-level functions operating on live persistent objects — or, for
``vprev``/``vnext``, on raw :class:`~repro.core.oid.Vref` references when
the owning database is passed explicitly (a raw reference does not know
which database it belongs to). The example below runs as a doctest:

    >>> import tempfile, os.path
    >>> from repro.core import Database, OdeObject, StringField, FloatField
    >>> from repro.core.versions import newversion, vprev, vnext
    >>> class StockItem(OdeObject):
    ...     name = StringField(default="")
    ...     price = FloatField(default=0.0)
    >>> tmp = tempfile.mkdtemp()
    >>> db = Database(os.path.join(tmp, "v.odedb"))
    >>> db.create(StockItem)
    >>> item = db.pnew(StockItem, name="512 dram", price=5.0)
    >>> old = item.vref
    >>> _ = newversion(item)             # item now reads/writes version 2
    >>> item.price = 6.0
    >>> db.deref(old).price             # history is intact
    5.0
    >>> vnext(old, db) == item.vref     # raw Vref: pass the database
    True
    >>> vnext(item) is None             # live object: newest version
    True
    >>> vprev(item, db) == old          # db is accepted (and ignored) here
    True
    >>> db.close()

Only the linear chain of the paper is implemented (footnote 15: the tree
version graph is deferred to the Ode versioning paper).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import NotPersistentError
from .objects import OdeObject
from .oid import Oid, Vref


def _db_of(ref):
    if isinstance(ref, OdeObject):
        db = ref.database
        if db is None:
            raise NotPersistentError(
                "versioning applies to persistent objects only; %r is "
                "volatile" % ref)
        return db
    raise NotPersistentError(
        "pass a live persistent object, or use the Database methods "
        "directly for raw references: db.newversion(oid), db.vprev(vref)...")


def newversion(obj: OdeObject) -> Vref:
    """Create a new current version of *obj*; returns its specific ref."""
    return _db_of(obj).newversion(obj)


def versions(obj: OdeObject) -> List[Vref]:
    """All versions of *obj*, oldest first."""
    return _db_of(obj).versions(obj)


def vprev(obj_or_ref, db=None) -> Optional[Vref]:
    """The version before the given one (None at the oldest).

    Accepts a live persistent object, or a raw ``Oid``/``Vref`` together
    with the owning *db* (raw references carry no database pointer).
    """
    if isinstance(obj_or_ref, OdeObject):
        return _db_of(obj_or_ref).vprev(obj_or_ref)
    if isinstance(obj_or_ref, (Oid, Vref)):
        if db is None:
            raise NotPersistentError(
                "a raw reference does not know its database; call "
                "vprev(ref, db) or db.vprev(ref)")
        return db.vprev(obj_or_ref)
    raise NotPersistentError(
        "vprev() takes a persistent object or an Oid/Vref, not %r"
        % (obj_or_ref,))


def vnext(obj_or_ref, db=None) -> Optional[Vref]:
    """The version after the given one (None at the newest).

    Accepts a live persistent object, or a raw ``Oid``/``Vref`` together
    with the owning *db* (raw references carry no database pointer).
    """
    if isinstance(obj_or_ref, OdeObject):
        return _db_of(obj_or_ref).vnext(obj_or_ref)
    if isinstance(obj_or_ref, (Oid, Vref)):
        if db is None:
            raise NotPersistentError(
                "a raw reference does not know its database; call "
                "vnext(ref, db) or db.vnext(ref)")
        return db.vnext(obj_or_ref)
    raise NotPersistentError(
        "vnext() takes a persistent object or an Oid/Vref, not %r"
        % (obj_or_ref,))


def vfirst(obj: OdeObject) -> Vref:
    """The oldest version of the object."""
    return _db_of(obj).vfirst(obj)


def vlast(obj: OdeObject) -> Vref:
    """The newest version of the object."""
    return _db_of(obj).vlast(obj)
