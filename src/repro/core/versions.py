"""Version macros — newversion, vprev, vnext, vfirst, vlast (section 4).

The paper exposes versioning through macros; this module provides them as
module-level functions operating on live persistent objects or references,
delegating to the object's database::

    from repro.core.versions import newversion, vprev, vnext

    item = db.pnew(StockItem, name="512 dram", price=5.0)
    old = item.vref
    newversion(item)                 # item now reads/writes version 2
    item.price = 6.0
    assert db.deref(old).price == 5.0    # history is intact
    assert vnext(old) == item.vref

Only the linear chain of the paper is implemented (footnote 15: the tree
version graph is deferred to the Ode versioning paper).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import NotPersistentError
from .objects import OdeObject
from .oid import Oid, Vref


def _db_of(ref):
    if isinstance(ref, OdeObject):
        db = ref.database
        if db is None:
            raise NotPersistentError(
                "versioning applies to persistent objects only; %r is "
                "volatile" % ref)
        return db
    raise NotPersistentError(
        "pass a live persistent object, or use the Database methods "
        "directly for raw references: db.newversion(oid), db.vprev(vref)...")


def newversion(obj: OdeObject) -> Vref:
    """Create a new current version of *obj*; returns its specific ref."""
    return _db_of(obj).newversion(obj)


def versions(obj: OdeObject) -> List[Vref]:
    """All versions of *obj*, oldest first."""
    return _db_of(obj).versions(obj)


def vprev(obj_or_ref) -> Optional[Vref]:
    """The version before the given one (None at the oldest)."""
    if isinstance(obj_or_ref, OdeObject):
        return _db_of(obj_or_ref).vprev(obj_or_ref)
    raise NotPersistentError("use db.vprev(ref) for raw references")


def vnext(obj_or_ref) -> Optional[Vref]:
    """The version after the given one (None at the newest)."""
    if isinstance(obj_or_ref, OdeObject):
        return _db_of(obj_or_ref).vnext(obj_or_ref)
    raise NotPersistentError("use db.vnext(ref) for raw references")


def vfirst(obj: OdeObject) -> Vref:
    """The oldest version of the object."""
    return _db_of(obj).vfirst(obj)


def vlast(obj: OdeObject) -> Vref:
    """The newest version of the object."""
    return _db_of(obj).vlast(obj)
