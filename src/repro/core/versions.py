"""Version macros — newversion, vprev, vnext, vfirst, vlast (section 4).

The paper exposes versioning through macros; this module provides them as
module-level functions with one uniform signature, ``macro(obj_or_ref,
db=None)``: a live persistent object needs no database (it carries its
own), a raw :class:`~repro.core.oid.Oid`/:class:`~repro.core.oid.Vref`
needs the owning database passed explicitly (a raw reference does not
know which database it belongs to). The example below runs as a doctest:

    >>> import tempfile, os.path
    >>> from repro.core import Database, OdeObject, StringField, FloatField
    >>> from repro.core.versions import newversion, vprev, vnext
    >>> class StockItem(OdeObject):
    ...     name = StringField(default="")
    ...     price = FloatField(default=0.0)
    >>> tmp = tempfile.mkdtemp()
    >>> db = Database(os.path.join(tmp, "v.odedb"))
    >>> db.create(StockItem)
    >>> item = db.pnew(StockItem, name="512 dram", price=5.0)
    >>> old = item.vref
    >>> _ = newversion(item)             # item now reads/writes version 2
    >>> item.price = 6.0
    >>> db.deref(old).price             # history is intact
    5.0
    >>> vnext(old, db) == item.vref     # raw Vref: pass the database
    True
    >>> vnext(item) is None             # live object: newest version
    True
    >>> vprev(item) == old              # live object: no db needed
    True
    >>> db.close()

Only the linear chain of the paper is implemented (footnote 15: the tree
version graph is deferred to the Ode versioning paper).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import NotPersistentError
from .objects import OdeObject
from .oid import Oid, Vref


def _resolve(name: str, obj_or_ref, db):
    """Uniform argument handling shared by all five macros.

    A live persistent object carries its database (passing *db* anyway is
    allowed and must agree); a raw ``Oid``/``Vref`` needs *db* explicitly
    (raw references carry no database pointer).
    """
    if isinstance(obj_or_ref, OdeObject):
        owner = obj_or_ref.database
        if owner is None:
            raise NotPersistentError(
                "versioning applies to persistent objects only; %r is "
                "volatile" % obj_or_ref)
        if db is not None and db is not owner:
            raise NotPersistentError(
                "%s(): object belongs to %r, not the database passed"
                % (name, owner))
        return owner
    if isinstance(obj_or_ref, (Oid, Vref)):
        if db is None:
            raise NotPersistentError(
                "a raw reference does not know its database; call "
                "%s(ref, db) or db.%s(ref)" % (name, name))
        return db
    raise NotPersistentError(
        "%s() takes a persistent object or an Oid/Vref, not %r"
        % (name, obj_or_ref))


def newversion(obj_or_ref, db=None) -> Vref:
    """Create a new current version; returns its specific ref."""
    return _resolve("newversion", obj_or_ref, db).newversion(obj_or_ref)


def versions(obj_or_ref, db=None) -> List[Vref]:
    """All versions of the object, oldest first."""
    return _resolve("versions", obj_or_ref, db).versions(obj_or_ref)


def vprev(obj_or_ref, db=None) -> Optional[Vref]:
    """The version before the given one (None at the oldest)."""
    return _resolve("vprev", obj_or_ref, db).vprev(obj_or_ref)


def vnext(obj_or_ref, db=None) -> Optional[Vref]:
    """The version after the given one (None at the newest)."""
    return _resolve("vnext", obj_or_ref, db).vnext(obj_or_ref)


def vfirst(obj_or_ref, db=None) -> Vref:
    """The oldest version of the object."""
    return _resolve("vfirst", obj_or_ref, db).vfirst(obj_or_ref)


def vlast(obj_or_ref, db=None) -> Vref:
    """The newest version of the object."""
    return _resolve("vlast", obj_or_ref, db).vlast(obj_or_ref)
