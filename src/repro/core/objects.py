"""Ode classes — the object definition facility (paper sections 2, 5).

O++ borrows the C++ *class*: data encapsulation, member functions, and
multiple inheritance. Here a metaclass plays the compiler's role::

    class Person(OdeObject):
        name = StringField()
        age = IntField(default=0)

        def income(self):
            return 0.0

    class Employee(Person):
        salary = FloatField(default=0.0)

        def income(self):
            return self.salary

        @constraint
        def salary_nonneg(self):
            return self.salary >= 0.0

:class:`OdeMeta` gathers field descriptors, constraints and trigger
declarations across the full MRO (multiple inheritance included; derived
classes inherit base constraints per section 5), wraps public member
functions so constraints are checked when they return (the paper checks
"at the end of each public member function and at transaction commit"),
and records the class in a global registry keyed by class name — the name
doubles as the cluster name, because clusters are type extents (2.5).

Instances start life *volatile* — ordinary Python objects. They become
persistent via ``db.pnew(Person, ...)`` or ``obj.persist(db)``; both bind
the instance to a database and allocate its object id. Volatile and
persistent objects are manipulated by exactly the same code (section 2.2's
central promise).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..errors import ConstraintViolation, NotPersistentError, SchemaError
from .fields import Field
from .oid import Oid, Vref

_CLASS_REGISTRY: Dict[str, type] = {}


def class_registry() -> Dict[str, type]:
    """Global name -> Ode class map (cluster names are class names)."""
    return _CLASS_REGISTRY


def constraint(func: Callable) -> Callable:
    """Mark a zero-argument method as a class constraint (section 5).

    The method must return a truthy value for a consistent object. All
    constraints of a class and its bases are checked together; a falsy
    result raises :class:`ConstraintViolation`, which aborts the enclosing
    transaction.
    """
    func._is_ode_constraint = True
    return func


def _wrap_public_method(func: Callable) -> Callable:
    """Run constraint checks when a public member function returns.

    This emulates the paper's rule that constraints are verified at the
    end of each (public) member function. Internal helpers (underscore
    names) and reads are unaffected — only methods defined by the user's
    class body are wrapped.
    """
    @functools.wraps(func)
    def wrapper(self, *args, **kwargs):
        result = func(self, *args, **kwargs)
        self._check_constraints_after_method()
        return result
    wrapper._ode_constraint_wrapped = True
    return wrapper


class OdeMeta(type):
    """Metaclass assembling the schema of an Ode class."""

    def __new__(mcs, name, bases, namespace, **kwargs):
        # Wrap public member functions for constraint checking, before the
        # class object is created so super() calls inside them still work.
        # OdeObject's own infrastructure methods (check_constraints, follow,
        # as_dict, ...) are exempt — only user class bodies are wrapped.
        if name != "OdeObject":
            reserved = {"check_constraints", "persist", "follow", "as_dict"}
            for attr, value in list(namespace.items()):
                if (callable(value) and not attr.startswith("_")
                        and attr not in reserved
                        and not isinstance(value, (staticmethod, classmethod,
                                                   property))
                        and not getattr(value, "_is_ode_constraint", False)
                        and not getattr(value, "_ode_constraint_wrapped", False)
                        and not isinstance(value, Field)):
                    from .triggers import Trigger
                    if not isinstance(value, Trigger):
                        namespace[attr] = _wrap_public_method(value)
        cls = super().__new__(mcs, name, bases, namespace, **kwargs)

        # Collect fields across the MRO (earlier classes win, as Python's
        # attribute lookup would).
        fields: Dict[str, Field] = {}
        for klass in reversed(cls.__mro__):
            for attr, value in vars(klass).items():
                if isinstance(value, Field):
                    fields[attr] = value
        cls._ode_fields = fields

        # Collect constraints: conjunction over the MRO (section 5 —
        # derived classes must satisfy base constraints too).
        constraints: List[Tuple[str, Callable]] = []
        seen = set()
        for klass in cls.__mro__:
            for attr, value in vars(klass).items():
                if getattr(value, "_is_ode_constraint", False) and attr not in seen:
                    seen.add(attr)
                    constraints.append((attr, value))
        cls._ode_constraints = constraints

        # Collect trigger declarations.
        from .triggers import Trigger
        triggers: Dict[str, Trigger] = {}
        for klass in reversed(cls.__mro__):
            for attr, value in vars(klass).items():
                if isinstance(value, Trigger):
                    triggers[attr] = value
        cls._ode_triggers = triggers

        if name != "OdeObject":
            if name in _CLASS_REGISTRY and _CLASS_REGISTRY[name] is not cls:
                # Redefinition (tests, notebooks): replace, latest wins.
                pass
            _CLASS_REGISTRY[name] = cls
        return cls

    @property
    def parents(cls) -> List[type]:
        """Direct Ode base classes (for the cluster hierarchy)."""
        return [b for b in cls.__bases__
                if isinstance(b, OdeMeta) and b.__name__ != "OdeObject"]


class OdeObject(metaclass=OdeMeta):
    """Base class for all Ode objects (the paper's class instances)."""

    _ode_fields: Dict[str, Field] = {}
    _ode_constraints: List[Tuple[str, Callable]] = []
    _ode_triggers: Dict[str, Any] = {}

    def __init__(self, **kwargs):
        # Persistence bookkeeping. Underscore-p names are reserved.
        self.__dict__["_p_db"] = None
        self.__dict__["_p_oid"] = None
        self.__dict__["_p_version"] = 0
        self.__dict__["_p_dirty"] = False
        self.__dict__["_p_readonly"] = False
        self.__dict__["_p_loading"] = False
        for name, value in kwargs.items():
            if name not in self._ode_fields:
                raise SchemaError("%s has no field %r"
                                  % (type(self).__name__, name))
            setattr(self, name, value)
        # Materialise defaults so constraints can see them immediately.
        for name in self._ode_fields:
            getattr(self, name)
        self.__dict__["_p_dirty"] = False

    # -- persistence status -------------------------------------------------

    @property
    def is_persistent(self) -> bool:
        """Whether this instance is bound to a database object."""
        return self.__dict__.get("_p_oid") is not None

    @property
    def oid(self) -> Oid:
        """This object's id (its identity). Raises if volatile."""
        oid = self.__dict__.get("_p_oid")
        if oid is None:
            raise NotPersistentError(
                "%s instance is volatile; it has no object id"
                % type(self).__name__)
        return oid

    @property
    def vref(self) -> Vref:
        """Specific reference to the version this instance represents."""
        oid = self.oid
        return Vref(oid.cluster, oid.serial, self.__dict__["_p_version"])

    @property
    def database(self):
        return self.__dict__.get("_p_db")

    @property
    def version(self) -> int:
        """Version number of this instance's state (0 while volatile)."""
        return self.__dict__.get("_p_version", 0)

    def persist(self, db) -> "OdeObject":
        """Move this volatile object into *db* (equivalent to pnew)."""
        return db.pnew_from(self)

    # -- dirty tracking / write-back -----------------------------------------

    def _p_mark_dirty(self) -> None:
        if self.__dict__.get("_p_loading"):
            return
        if self.__dict__.get("_p_snapshot_stale"):
            # A private snapshot materialization: this reader saw the
            # committed image as of its snapshot, and a concurrent
            # transaction has since written (or is writing) the object.
            # Writing through this copy would base the update on stale
            # data — surface the conflict so run_transaction retries the
            # whole read-modify-write on a fresh snapshot.
            from ..errors import SnapshotConflictError
            raise SnapshotConflictError(
                "%r was read from a snapshot that a concurrent "
                "transaction has since overwritten; retry the "
                "transaction" % (self.__dict__.get("_p_oid"),))
        if self.__dict__.get("_p_readonly"):
            raise NotPersistentError(
                "version %d of %r is not the current version; old versions "
                "are read-only" % (self.version, self.__dict__.get("_p_oid")))
        self.__dict__["_p_dirty"] = True
        db = self.__dict__.get("_p_db")
        if db is not None and self.is_persistent:
            db._note_dirty(self)

    # -- state conversion -----------------------------------------------------

    def _p_state_dict(self) -> Dict[str, Any]:
        """The storage form of this object's fields."""
        state = {}
        for name, field in self._ode_fields.items():
            state[name] = field.to_stored(self, getattr(self, name))
        return state

    def _p_load_state(self, state: Dict[str, Any]) -> None:
        """Overwrite fields from a storage dict (no dirty marking)."""
        self.__dict__["_p_loading"] = True
        try:
            for name, field in self._ode_fields.items():
                if name in state:
                    value = field.from_stored(self, state[name])
                    self.__dict__["_f_" + name] = field.validate(value)
                else:
                    self.__dict__["_f_" + name] = field.default_value()
        finally:
            self.__dict__["_p_loading"] = False
        self.__dict__["_p_dirty"] = False

    # -- constraints ------------------------------------------------------------

    def check_constraints(self) -> None:
        """Evaluate every class constraint; raise on the first violation."""
        for name, check in self._ode_constraints:
            ok = check(self)
            if not ok:
                raise ConstraintViolation(
                    "constraint %r violated on %s" % (name, self._describe()),
                    obj=self, constraint_name=name)

    def _check_constraints_after_method(self) -> None:
        """Constraint hook run by wrapped public member functions."""
        try:
            self.check_constraints()
        except ConstraintViolation:
            db = self.__dict__.get("_p_db")
            if db is not None:
                db._constraint_violated()
            raise

    # -- navigation -------------------------------------------------------------

    def follow(self, field_name: str):
        """Dereference a Ref/Any field: ids become live objects.

        Volatile targets are returned as-is. Persistent ids need the
        object to be bound to a database.
        """
        value = getattr(self, field_name)
        if isinstance(value, (Oid, Vref)):
            db = self.__dict__.get("_p_db")
            if db is None:
                raise NotPersistentError(
                    "cannot dereference %s.%s: object is not bound to a "
                    "database" % (type(self).__name__, field_name))
            return db.deref(value)
        return value

    # -- misc ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Plain-Python snapshot of the field values (live forms)."""
        return {name: getattr(self, name) for name in self._ode_fields}

    def _describe(self) -> str:
        if self.is_persistent:
            return "%s%r" % (type(self).__name__, self.__dict__["_p_oid"])
        return "volatile %s at 0x%x" % (type(self).__name__, id(self))

    def __repr__(self) -> str:
        fields = ", ".join("%s=%r" % (n, getattr(self, n))
                           for n in list(self._ode_fields)[:4])
        return "<%s %s>" % (self._describe(), fields)
