"""Database — the Ode environment a program talks to.

This is the public entry point of the reproduction. It binds the paper's
linguistic facilities to the storage engine:

* ``db.create(Class)`` — the paper's ``create`` macro: make the cluster
  (type extent) for a class. Creating a persistent object *requires* its
  cluster to exist (section 2.5).
* ``db.pnew(Class, field=value, ...)`` — the paper's ``pnew``: allocate a
  persistent object, returning a live handle that doubles as the pointer.
* ``db.pdelete(ref_or_obj)`` — the paper's ``pdelete``.
* ``db.deref(oid_or_vref)`` — pointer dereference: generic references
  yield the current version, specific references a pinned (read-only if
  non-current) version.
* ``db.transaction()`` — a context manager. The paper treats a whole O++
  program as one transaction; here any block can be one. Constraints of
  updated objects are checked at commit; trigger conditions are evaluated
  at end of transaction; fired trigger actions run *after* commit, each as
  an independent transaction (weak coupling, section 6). An exception (or
  a constraint violation) aborts and rolls back everything including
  trigger bookkeeping.
* ``db.newversion(obj)`` and the version navigation in
  :mod:`repro.core.versions` (section 4).
* A virtual clock (``db.now()`` / ``db.advance_time(dt)``) driving timed
  triggers deterministically.

Storage layout per persistent object (cluster = class name):

================  =====================================================
key                record
================  =====================================================
``(serial, 0)``   version head: ``{"current": v, "chain": [v1, ...]}``
``(serial, v)``   version state: ``{"state": {field: stored value}}``
================  =====================================================
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextlib import contextmanager
from typing import (Any, Callable, Dict, Iterator, List, Optional, Set,
                    Tuple, Type, Union)

from ..errors import (ClusterExistsError, ClusterNotFoundError,
                      ConstraintViolation, DanglingReferenceError,
                      DeadlockError, LockTimeoutError, NotPersistentError,
                      SchemaError, SnapshotConflictError, TransactionError,
                      TransientError, TransientIOError, TriggerActionError,
                      VersionError)
from ..query.optimizer import PlanCache
from ..query.stats import StatsManager
from ..storage.locks import (EXCLUSIVE, INTENT_EXCLUSIVE, INTENT_SHARED,
                             SHARED)
from ..storage.store import Store
from .mvcc import STORE as _MVCC_STORE
from .mvcc import MVCCManager
from .objects import OdeMeta, OdeObject, class_registry
from .oid import Oid, Vref
from .triggers import ACTIVATION_CLUSTER, FiredAction, TriggerManager

#: Safety valve for cascading trigger actions (action fires trigger fires
#: action ...); beyond this many independent transactions we stop and raise.
MAX_TRIGGER_CASCADE = 1000

Ref = Union[Oid, Vref, OdeObject]


def _abort_reason(exc: BaseException) -> str:
    """Classify an abort-triggering exception for ``txn.aborts{reason}``."""
    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, LockTimeoutError):
        return "timeout"
    if isinstance(exc, ConstraintViolation):
        return "constraint"
    if isinstance(exc, SnapshotConflictError):
        return "conflict"
    return "error"


class DecodedCache:
    """Bounded LRU of decoded object images keyed by ``(cluster, serial)``.

    Each entry carries the decoded *head* and *state* dicts together with
    their ``(page_no, page_lsn)`` physical tokens. An entry is served only
    after :meth:`Store.tokens_valid` confirms both tokens, so correctness
    never depends on eager invalidation: any mutation of either record —
    including transaction abort (CLRs) and crash recovery — bumps the home
    page's LSN and the entry silently misses. Eager :meth:`invalidate`
    calls on the write paths exist for hygiene (they free memory sooner
    and avoid pointless validations), not for safety.

    Entries whose tokens carry ``lsn == 0`` are never stored (a freshly
    formatted page starts at 0, so 0 cannot distinguish versions).
    """

    __slots__ = ("capacity", "_entries", "_lock", "hits", "misses",
                 "evictions")

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        # (cluster, serial) -> (tokens, head, version, state)
        #   tokens: ((head_page, head_lsn), (state_page, state_lsn))
        self._entries: "Dict[tuple, tuple]" = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple):
        # Single dict reads/deletes are GIL-atomic; only `put`'s eviction
        # sweep (a len check plus bulk delete) needs the lock. Keeping
        # `get`/`invalidate` lock-free keeps the deref fast path and the
        # write path (which invalidates under the object X lock) from
        # serializing on one global lock.
        return self._entries.get(key)

    def put(self, key: tuple, tokens: tuple, head: Dict, version: int,
            state: Dict) -> None:
        if any(lsn == 0 for _page, lsn in tokens):
            return
        with self._lock:
            if len(self._entries) >= self.capacity:
                # Random-ish wholesale trim (dict order = insertion order):
                # drop the oldest half. Cheaper than per-get LRU updates,
                # and the LSN tokens make over-eviction merely a perf
                # effect.
                drop = len(self._entries) // 2 + 1
                for stale in list(self._entries)[:drop]:
                    # pop, not del: a lock-free invalidate may race the sweep
                    self._entries.pop(stale, None)
                self.evictions += drop
            self._entries[key] = (tokens, head, version, state)

    def invalidate(self, key: tuple) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class VersionCache:
    """Bounded cache of pinned-version materializations keyed by Vref.

    Replaces the previously unbounded ``_vcache`` dict: version-churn
    workloads (many ``newversion`` calls, each pinning read-only
    history) used to leak one live object per pinned version forever.
    Same trim strategy as :class:`DecodedCache` — insertion-order
    wholesale trim under the lock, lock-free GIL-atomic ``get`` — because
    entries are pure caches: a miss just re-materializes from the store.
    """

    __slots__ = ("capacity", "_entries", "_lock", "hits", "evictions")

    def __init__(self, capacity: int = 2048):
        self.capacity = capacity
        self._entries: Dict[Vref, OdeObject] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.evictions = 0

    def get(self, vref: Vref):
        obj = self._entries.get(vref)
        if obj is not None:
            self.hits += 1
        return obj

    def put(self, vref: Vref, obj: OdeObject) -> None:
        with self._lock:
            if len(self._entries) >= self.capacity:
                drop = len(self._entries) // 2 + 1
                for stale in list(self._entries)[:drop]:
                    self._entries.pop(stale, None)
                self.evictions += drop
            self._entries[vref] = obj

    def pop(self, vref: Vref, default=None):
        return self._entries.pop(vref, default)

    def clear(self) -> None:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.evictions += dropped

    def invalidate_cluster(self, cluster: str) -> int:
        """Drop every entry of *cluster* (vacuum rewrote its chains)."""
        with self._lock:
            stale = [v for v in self._entries if v.cluster == cluster]
            for vref in stale:
                self._entries.pop(vref, None)
            self.evictions += len(stale)
        return len(stale)

    def __iter__(self):
        return iter(list(self._entries))

    def __getitem__(self, vref: Vref) -> OdeObject:
        return self._entries[vref]

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "capacity": self.capacity,
                "hits": self.hits, "evictions": self.evictions}


def _state_key(state: Dict, fields: List[str]):
    """Index key for *fields* out of a stored state dict."""
    if len(fields) == 1:
        return state.get(fields[0])
    return tuple(state.get(f) for f in fields)


class Transaction:
    """Handle for an open transaction.

    Besides identifying the storage transaction, the handle carries the
    per-transaction bookkeeping the concurrency layer needs: the *read
    set* and *write set* of ``(cluster, serial)`` keys the transaction
    has locked (so repeated derefs skip the lock manager), the subset of
    keys *created* by this transaction, the cluster-level lock modes
    already taken, and whether the transaction performed DDL (which
    widens what an abort must invalidate).
    """

    __slots__ = ("txn_id", "db", "_done", "_begin_lsn", "read_set",
                 "write_set", "created", "_cluster_modes", "ddl",
                 "snapshot_lsn", "read_clusters")

    def __init__(self, txn_id: int, db: "Database"):
        self.txn_id = txn_id
        self.db = db
        self._done = False
        # Where this transaction's log chain starts; a commit whose chain
        # never advanced past this wrote nothing (read-only transaction).
        self._begin_lsn = db.store._journal.active.get(txn_id)
        self.read_set: Set[Tuple[str, int]] = set()
        self.write_set: Set[Tuple[str, int]] = set()
        self.created: Set[Tuple[str, int]] = set()
        self._cluster_modes: Set[Tuple[str, str]] = set()
        self.ddl = False
        #: MVCC snapshot: reads resolve to the newest content committed
        #: at or before this LSN (None when MVCC is disabled — then reads
        #: take S locks instead).
        self.snapshot_lsn: Optional[int] = (
            db._mvcc.begin_snapshot(txn_id) if db._mvcc_on else None)
        #: Clusters this transaction has scanned (forall iteration);
        #: writes to objects of these clusters get the write-conflict
        #: check even when the individual object was never derefed.
        self.read_clusters: Set[str] = set()

    def lock_cluster(self, locks, cluster: str, mode: str) -> None:
        """Take (once per mode) the cluster-level lock for this txn."""
        if (cluster, mode) in self._cluster_modes:
            return
        locks.acquire(self.txn_id, ("cluster", cluster), mode)
        self._cluster_modes.add((cluster, mode))

    def __repr__(self):
        return "Transaction(%d%s)" % (self.txn_id,
                                      ", done" if self._done else "")


class _Session(threading.local):
    """Per-thread transaction state.

    Each thread talking to a :class:`Database` gets its own open
    transaction handle and its own deferred-dirty map, so concurrent
    threads never observe (or clobber) each other's in-flight state.
    """

    def __init__(self):
        self.txn: Optional[Transaction] = None
        self.dirty: Dict[int, OdeObject] = {}  # id(obj) -> obj


class Database:
    """An Ode database: persistent objects, clusters, versions, triggers."""

    def __init__(self, path: str, pool_size: int = 256,
                 durability: str = "full",
                 concurrent_triggers: bool = False,
                 shards: Optional[int] = None):
        """Open (creating if absent) the database stored at *path*.

        *durability* selects the commit fsync policy: ``"full"`` (fsync
        every commit), ``"group"`` (group commit — one fsync per batch)
        or ``"none"`` (only checkpoints fsync). See
        :mod:`repro.storage.wal`. With *concurrent_triggers* fired
        trigger actions of one commit run in parallel threads (each is an
        independent transaction either way). *shards* splits the storage
        across N hash-ranged shards when the database is first created
        (``REPRO_SHARDS`` applies when omitted; an existing database
        keeps its creation-time count) — see
        :mod:`repro.storage.sharding`.
        """
        self.store = Store(path, pool_size=pool_size, durability=durability,
                           shards=shards)
        #: MVCC snapshot reads (the default): transactions read as of a
        #: snapshot LSN through per-object version histories instead of
        #: taking S locks; X locks remain for write-write conflicts.
        #: ``REPRO_MVCC=0`` (or flipping this attribute before any
        #: transaction runs) restores strict-2PL shared locking — the
        #: differential harness uses that to prove read equivalence.
        self._mvcc_on = os.environ.get("REPRO_MVCC", "1") != "0"
        self._mvcc = MVCCManager(start_lsn=self.store._wal.end_lsn)
        self.store.on_commit = self._on_store_commit
        self.triggers = TriggerManager(self)
        #: Incremental per-cluster statistics for the cost-based optimizer.
        self.cluster_stats = StatsManager(self)
        #: Cached plans keyed on (cluster, predicate shape).
        self.plan_cache = PlanCache()
        #: Generated (fused) query pipelines, keyed on plan structure;
        #: invalidated alongside the plan cache.
        from ..query.codegen import CodegenCache
        self.codegen_cache = CodegenCache()
        #: Master switch for generated-code query execution on this
        #: database (the REPRO_CODEGEN env var also applies).
        self.codegen_enabled = True
        #: Bumped on index DDL; outstanding cached plans become invalid.
        self._plan_epoch = 0
        #: (cluster, serial) -> live current-version object
        self._cache: Dict[tuple, OdeObject] = {}
        #: Decoded head/state images with LSN validity tokens: repeated
        #: derefs of an unchanged object skip the directory probes and
        #: ``decode_value`` entirely (see :class:`DecodedCache`).
        self._decoded = DecodedCache()
        #: Vref -> live pinned-version object (bounded; see VersionCache)
        self._vcache = VersionCache()
        #: Guards _cache/_vcache mutation (they are shared across threads;
        #: the objects inside are protected by the lock manager instead).
        self._cache_lock = threading.RLock()
        #: Per-thread open transaction + deferred-dirty map.
        self._session = _Session()
        self.concurrent_triggers = concurrent_triggers
        self._clock: float = float(
            self.store.catalog.get_meta("clock", 0.0))
        self._clock_dirty = False
        self._closed = False
        #: The observability registry + event ring (owned by the store so
        #: storage components can reach them; shared verbatim here).
        self.metrics = self.store.metrics
        self.events = self.store.events
        self._register_metrics()
        #: Background reclustering daemon: watches the store's access
        #: profile and migrates hot co-accessed objects into shared
        #: extents (see :mod:`repro.storage.recluster`). Disabled with
        #: ``REPRO_RECLUSTER=0``.
        from ..storage import recluster as _recluster
        self.recluster_daemon = None
        if _recluster.enabled():
            self.recluster_daemon = _recluster.ReclusterDaemon(self.store)
            self.recluster_daemon.start()

    def _register_metrics(self) -> None:
        from ..query import optimizer as _optimizer
        metrics = self.metrics
        decoded = self._decoded
        metrics.counter_fn("decoded.hits", lambda: decoded.hits)
        metrics.counter_fn("decoded.misses", lambda: decoded.misses)
        metrics.counter_fn("decoded.evictions", lambda: decoded.evictions)
        metrics.gauge_fn("decoded.entries", lambda: len(decoded))
        vcache = self._vcache
        metrics.counter_fn("vcache.hits", lambda: vcache.hits)
        metrics.counter_fn("vcache.evictions", lambda: vcache.evictions)
        metrics.gauge_fn("vcache.entries", lambda: len(vcache))
        mvcc = self._mvcc
        metrics.counter_fn("mvcc.resolutions", lambda: mvcc.resolutions)
        metrics.counter_fn("mvcc.conflicts", lambda: mvcc.conflicts)
        metrics.gauge_fn("mvcc.histories", mvcc.history_count)
        metrics.gauge_fn("mvcc.active_snapshots", mvcc.active_snapshots)
        plan_cache = self.plan_cache
        metrics.counter_fn("plan_cache.hits", lambda: plan_cache.hits)
        metrics.counter_fn("plan_cache.misses", lambda: plan_cache.misses)
        metrics.counter_fn("plan_cache.invalidations",
                           lambda: plan_cache.invalidations)
        metrics.gauge_fn("plan_cache.entries",
                         lambda: len(plan_cache._entries))
        metrics.counter_fn("plan.builds", lambda: _optimizer.PLAN_BUILDS)
        codegen_cache = self.codegen_cache
        metrics.counter_fn("codegen.cache.hits",
                           lambda: codegen_cache.hits)
        metrics.counter_fn("codegen.cache.misses",
                           lambda: codegen_cache.misses)
        metrics.counter_fn("codegen.cache.invalidations",
                           lambda: codegen_cache.invalidations)
        metrics.counter_fn("codegen.compile_ns",
                           lambda: codegen_cache.compile_ns)
        metrics.gauge_fn("codegen.cache.entries",
                         lambda: len(codegen_cache._entries))
        metrics.gauge_fn("txn.active",
                         lambda: len(self.store._journal.active))
        # Owned (GIL-atomic) counters: bumped directly on the txn/query
        # paths rather than sampled from component state.
        self._txn_commits = metrics.counter("txn.commits")
        self._q_mode_compiled = metrics.counter("query.exec.mode",
                                                mode="compiled")
        self._q_mode_interpreted = metrics.counter("query.exec.mode",
                                                   mode="interpreted")
        self._query_count = metrics.counter("query.count")
        self._query_slow = metrics.counter("query.slow")
        self._query_ns = metrics.histogram(
            "query.duration_ns",
            (1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10))

    def _record_query(self, kind: str, detail: str, ns: int,
                      rows: int) -> None:
        """Account one finished (traced or materialized) query.

        Called from the query layer only on paths that already know their
        wall time — tracing, ``explain analyze``, the O++ forall
        statement — so untraced streaming iteration pays nothing.
        """
        self._query_count.inc()
        self._query_ns.observe(ns)
        if ns >= self.events.slow_query_ns:
            self._query_slow.inc()
            self.events.emit("slow_query", query=kind, detail=detail,
                             ms=ns / 1e6, rows=rows)

    def forall(self, *sources, trace: bool = False):
        """Begin a :class:`~repro.query.iterate.Forall` iteration.

        Sources may be cluster handles, Ode classes, cluster names, or
        any re-iterable; classes and names resolve to this database's
        cluster handles. With *trace=True* the iteration records
        per-operator spans (see :meth:`Forall.trace`)."""
        from ..query.iterate import Forall
        resolved = []
        for source in sources:
            if isinstance(source, (str, OdeMeta)):
                resolved.append(self.cluster(source))
            else:
                resolved.append(source)
        it = Forall(*resolved)
        if trace:
            it.trace()
        return it

    # The historical single-threaded attributes survive as views over the
    # per-thread session, so the query layer (and tests) keep reading
    # ``db._txn`` / ``db._dirty`` and naturally see their own thread's
    # state.

    @property
    def _txn(self) -> Optional[Transaction]:
        return self._session.txn

    @_txn.setter
    def _txn(self, handle: Optional[Transaction]) -> None:
        self._session.txn = handle

    @property
    def _dirty(self) -> Dict[int, OdeObject]:
        return self._session.dirty

    # ------------------------------------------------------------------
    # logical locking (strict 2PL over the store's lock manager)
    # ------------------------------------------------------------------

    def _lock_for_read(self, cluster: str, serial: int) -> None:
        """Record (MVCC) or S-lock (2PL) one object read for the open txn.

        Under MVCC snapshot reads no lock is taken at all — visibility
        comes from the snapshot LSN and the version histories — but the
        read is noted in the read set so a later write to the same object
        gets the write-conflict check. With MVCC disabled this is the
        original strict-2PL path: S on the object plus IS on its cluster.

        Outside a transaction reads are unlocked either way —
        autocommitted reads see the latest committed state, which is all
        a transactionless caller can ask for.
        """
        handle = self._session.txn
        if handle is None:
            return
        if self._mvcc_on:
            handle.read_set.add((cluster, serial))
            return
        key = (cluster, serial)
        if key in handle.read_set or key in handle.write_set:
            return
        modes = handle._cluster_modes
        if (cluster, SHARED) in modes or (cluster, EXCLUSIVE) in modes:
            # A cluster-level S (scan) or X (DDL) lock subsumes per-object
            # S locks: one lock-manager call covers the whole forall
            # instead of one per object visited.
            return
        locks = self.store.locks
        handle.lock_cluster(locks, cluster, INTENT_SHARED)
        locks.acquire(handle.txn_id, ("obj", cluster, serial), SHARED)
        handle.read_set.add(key)

    def _lock_for_write(self, cluster: str, serial: int,
                        created: bool = False,
                        full_image: bool = False,
                        lazy: bool = False) -> None:
        """X-lock one object (plus IX on its cluster) for the open txn.

        Under MVCC the grant additionally runs the first-updater-wins
        check (writing an object this transaction has *read* — directly
        or via a cluster scan — that another transaction committed to
        since our snapshot raises :class:`SnapshotConflictError`) and
        registers the object's committed pre-image with the MVCC
        histories before the first store mutation can happen. *lazy*
        marks the deferred field-write path, whose store mutation only
        happens at flush: registration skips the image load and the
        flush materializes the pre-image just before writing.
        """
        handle = self._session.txn
        if handle is None:
            return
        key = (cluster, serial)
        if key not in handle.write_set:
            if (cluster, EXCLUSIVE) in handle._cluster_modes:
                # Cluster X (DDL/vacuum) subsumes object X locks; still
                # record the write so abort invalidation stays scoped.
                handle.write_set.add(key)
            else:
                locks = self.store.locks
                handle.lock_cluster(locks, cluster, INTENT_EXCLUSIVE)
                locks.acquire(handle.txn_id, ("obj", cluster, serial),
                              EXCLUSIVE)
                handle.write_set.add(key)
            if self._mvcc_on:
                snapshot = handle.snapshot_lsn
                if (snapshot is not None and not created
                        and (key in handle.read_set
                             or cluster in handle.read_clusters)
                        and self._mvcc.committed_after(cluster, serial,
                                                       snapshot)):
                    self._mvcc.conflicts += 1
                    raise SnapshotConflictError(
                        "write to %s:%d conflicts with a commit newer "
                        "than this transaction's snapshot (lsn %d)"
                        % (cluster, serial, snapshot))
                if created:
                    # Fresh serial: the committed pre-image is "no
                    # object" by construction — skip the store probe.
                    self._mvcc.register(handle.txn_id, cluster, serial,
                                        lambda: None)
                elif lazy:
                    # Deferred field write: the store stays clean until
                    # flush, so defer the image load too. The loader is
                    # only invoked if a concurrent reader needs the
                    # pre-image before the flush fills it for free.
                    self._mvcc.register(
                        handle.txn_id, cluster, serial,
                        lambda: self._load_image(cluster, serial),
                        lazy=True)
                else:
                    self._mvcc.register(
                        handle.txn_id, cluster, serial,
                        lambda: self._load_image(cluster, serial,
                                                 full_image))
        elif self._mvcc_on and not lazy:
            # Already registered earlier in this transaction. If that
            # registration was lazy (deferred field write — the store is
            # still clean), the coming immediate mutation needs the
            # pre-image captured now; and if the mutation deletes
            # non-current version records, a partial image must grow to
            # cover the whole chain first.
            self._mvcc.register(
                handle.txn_id, cluster, serial,
                lambda: self._load_image(cluster, serial, full_image))
            if full_image:
                self._mvcc.upgrade_image(
                    handle.txn_id, cluster, serial,
                    lambda img: self._fill_image(cluster, serial, img))
        if created:
            handle.created.add(key)

    def _lock_cluster_scan(self, cluster: str) -> None:
        """Note (MVCC) or S-lock (2PL) a whole-cluster scan (``forall``)."""
        handle = self._session.txn
        if handle is None:
            return
        if self._mvcc_on:
            handle.read_clusters.add(cluster)
            return
        handle.lock_cluster(self.store.locks, cluster, SHARED)

    # ------------------------------------------------------------------
    # MVCC plumbing (snapshot visibility over the version histories)
    # ------------------------------------------------------------------

    def _on_store_commit(self, txn: int, clsn: Optional[int]) -> None:
        """Store commit hook: stamp this transaction's pre-images.

        Runs after the WAL commit record exists and before lock release.
        *clsn* is None only on the degraded trivial-commit path, where a
        writer was rolled back in memory — its pre-images are dropped as
        an abort.
        """
        if clsn is not None:
            self._mvcc.commit(txn, clsn)
        else:
            self._mvcc.abort(txn)

    def _load_image(self, cluster: str, serial: int, full: bool = False):
        """The committed image of one object: ``(head, {version: state})``
        or None when the object does not exist. Called under the object's
        X lock, so the records cannot move while being read.

        The default image is *partial* — head plus the current version's
        state only, which is all a field write or ``newversion`` can
        touch, so registration stays O(1) in the chain length. Mutations
        that remove non-current version records (``pdelete``) load the
        whole chain (``full=True``); pinned-version readers handle the
        partial case by falling back to the store, sound because old
        version states are immutable short of such a full-image delete.
        """
        if not full:
            try:
                head, version, state = self._load_current(cluster, serial)
            except DanglingReferenceError:
                pass  # chain missing its state record: take the slow path
            else:
                if head is None:
                    return None
                return (head, {version: state})
        store = self.store
        head = store.get(cluster, (serial, 0))
        if head is None:
            return None
        states: Dict[int, Dict] = {}
        versions = head["chain"] if full else (head["current"],)
        for version in versions:
            rec = store.get(cluster, (serial, version))
            if rec is not None:
                states[version] = rec["state"]
        return (head, states)

    def _fill_image(self, cluster: str, serial: int, img) -> None:
        """Extend a partial pre-image to the full chain, in place.

        Called (under the registry lock, before the deleting mutation)
        when a transaction that registered a partial image goes on to
        remove version records. Only versions missing from the image are
        read — everything this transaction already mutated (head, the
        old current state) is in the image, and the rest are immutable.
        """
        head, states = img
        store = self.store
        for version in head["chain"]:
            if version not in states:
                rec = store.get(cluster, (serial, version))
                if rec is not None:
                    states[version] = rec["state"]

    def _lazy_image(self, cluster: str, serial: int, head,
                    version: int, state):
        """Pre-image for a lazily registered flush write.

        The flush already holds the old head and state (loaded for index
        maintenance); only a decoded-cache miss on the head costs a
        store read here. Runs inside the registry lock via
        :meth:`MVCCManager.fill_lazy`, before the flush's store write.
        """
        if head is None:
            head = self.store.get(cluster, (serial, 0))
            if head is None:
                return None
        return (head, {version: state} if state is not None else {})

    def _materialize_snapshot(self, cluster: str, serial: int,
                              img) -> OdeObject:
        """A private, read-only materialization of a resolved image.

        Never the shared cache object (whose in-memory state may carry a
        concurrent writer's uncommitted mutations) and never cached: the
        object belongs to the resolving reader alone. Writing to it
        raises :class:`SnapshotConflictError` — the reader is looking at
        data that is (or is about to be) superseded, so a read-modify-
        write through it must retry on a fresh snapshot, not silently
        lose the concurrent update.
        """
        head, states = img
        version = head["current"]
        obj = self._materialize(Oid(cluster, serial), version,
                                dict(states[version]), readonly=True)
        obj.__dict__["_p_snapshot_stale"] = True
        return obj

    def snapshot_token(self) -> int:
        """An opaque token naming "the database as of now" for time-travel
        reads: pass it to ``ClusterHandle.as_of`` / ``Forall.as_of`` (or
        O++ ``forall ... as of``). Tokens are session-scoped (histories
        live in memory) and reach back only over recent activity; older
        tokens raise :class:`SnapshotTooOldError` rather than answer
        wrongly."""
        return self._mvcc.last_commit_lsn

    def _scan_visibility(self, cluster: str, as_of: Optional[int] = None):
        """The visibility overlay for one cluster scan, or None (2PL mode).

        The overlay holds a *live* reference to the cluster's history
        dict, so writers that register mid-scan are visible to the
        per-record check — combined with registration-before-mutation
        this means a scan that decodes a writer's uncommitted bytes
        always finds the history entry and resolves the committed
        pre-image instead.
        """
        if not self._mvcc_on:
            if as_of is not None:
                raise TransactionError(
                    "as-of reads require MVCC (REPRO_MVCC=0 disables it)")
            return None
        if as_of is not None:
            self._mvcc.check_snapshot(as_of)
            snapshot, txn_id = as_of, -2  # never matches a real txn
        else:
            handle = self._session.txn
            if handle is not None:
                snapshot, txn_id = handle.snapshot_lsn, handle.txn_id
            else:
                snapshot, txn_id = None, -1  # autocommit: read-committed
        return _ScanVis(self, cluster, self._mvcc.histories(cluster),
                        snapshot, txn_id)

    def _lock_cluster_ddl(self, cluster: str) -> None:
        """X-lock a whole cluster (index DDL, cluster rewrites)."""
        handle = self._session.txn
        if handle is not None:
            handle.lock_cluster(self.store.locks, cluster, EXCLUSIVE)
            handle.ddl = True

    # ------------------------------------------------------------------
    # clock (virtual time for timed triggers)
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Current virtual time (seconds; starts at 0 for a new database)."""
        return self._clock

    def advance_time(self, seconds: float) -> None:
        """Advance the virtual clock; timed triggers past their deadline
        fire their timeout actions (each as an independent transaction)."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._clock += float(seconds)
        self._clock_dirty = True
        with self._implicit_txn():
            pass  # the commit pipeline persists the clock and evaluates

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Run the block as one transaction.

        Commit on normal exit (constraints checked, triggers evaluated,
        fired actions run afterwards); abort and re-raise on exception.
        """
        if self._txn is not None:
            raise TransactionError("transactions do not nest")
        txn_id = self.store.begin()
        handle = Transaction(txn_id, self)
        self._txn = handle
        try:
            yield handle
        except BaseException as exc:
            self._abort(handle, reason=_abort_reason(exc))
            raise
        fired = self._commit(handle)
        self._run_fired_actions(fired)

    def run_transaction(self, fn: Callable[[], Any], retries: int = 3,
                        backoff: float = 0.01,
                        policy: Optional["RetryPolicy"] = None) -> Any:
        """Run *fn* inside a transaction, retrying on transient failures.

        Under concurrency a transaction can be picked as a deadlock
        victim (:class:`DeadlockError`), time out on a lock
        (:class:`LockTimeoutError`), or lose a first-updater-wins race
        (:class:`SnapshotConflictError`); a flaky disk can fail a read
        with :class:`TransientIOError`. All of these subclass
        :class:`~repro.errors.TransientError` — "aborted through no
        fault of its own, run it again" — and that single isinstance
        check is the retry criterion. This helper re-runs *fn* up to
        *retries* more times with jittered exponential backoff (see
        :mod:`repro.retry`), re-raising the last error if every attempt
        fails. *fn* takes no arguments and its return value is passed
        through. Permanent failures — checksum corruption, degraded
        mode, WAL flush failure — are not transient and never retried.

        *policy* overrides the whole delay curve; the *retries*/*backoff*
        pair is kept for callers of the historical signature and builds
        an equivalent policy lazily (only once a retry actually happens,
        so the no-conflict fast path allocates nothing).
        """
        attempt = 0
        while True:
            try:
                with self.transaction():
                    return fn()
            except TransientError:
                attempt += 1
                if policy is None:
                    from ..retry import RetryPolicy
                    policy = RetryPolicy(retries=retries,
                                         base_delay=backoff)
                if attempt > policy.retries:
                    raise
                self.metrics.counter("txn.retries").inc()
                policy.sleep(policy.delay(attempt))

    def _implicit_txn(self) -> "_ImplicitTxn":
        """Join the open transaction, or wrap the block in a private one.

        Hand-rolled context manager (not ``@contextmanager``): this wraps
        every autocommitted operation, where the generator machinery is
        measurable overhead.
        """
        return _ImplicitTxn(self)

    def _commit(self, handle: Transaction) -> List[FiredAction]:
        txn = handle.txn_id
        try:
            for obj in list(self._dirty.values()):
                obj.check_constraints()
            self._flush(txn)
            if self._clock_dirty:
                self.store.catalog.set_meta(txn, "clock", self._clock)
                self._clock_dirty = False
            # Trigger conditions are conceptually evaluated at the end of
            # each transaction (section 6). A transaction that wrote
            # nothing cannot have changed any condition, so evaluation is
            # skipped — this is what lets a side-effect-free perpetual
            # trigger action terminate instead of re-firing forever.
            if self.store._journal.active.get(txn) != handle._begin_lsn:
                fired = self.triggers.evaluate(txn)
            else:
                fired = []
        except BaseException as exc:
            self._abort(handle, reason=_abort_reason(exc))
            raise
        try:
            self.store.commit(txn)
        except BaseException:
            # WalFlushError path: the journal undid the transaction in
            # memory — drop its MVCC pre-images (and snapshot pin) the
            # same way an abort would.
            self._mvcc.abort(txn)
            raise
        self._txn_commits.inc()
        handle._done = True
        self._txn = None
        return fired

    def _abort(self, handle: Transaction, reason: str = "error") -> None:
        self.metrics.counter("txn.aborts", reason=reason).inc()
        # Keep the transaction's locks through the cache reload: once the
        # locks drop, another thread may start rewriting the very objects
        # we are restoring.
        self.store.abort(handle.txn_id, release_locks=False)
        # After the store rollback: readers resolving through a still-
        # pending history entry saw the pre-image, which is exactly the
        # rolled-back content, so either order is consistent.
        self._mvcc.abort(handle.txn_id)
        try:
            handle._done = True
            self._txn = None
            touched = self._touched_keys(handle)
            self._dirty.clear()
            self.triggers.invalidate()
            self.cluster_stats.invalidate()
            if handle.ddl:
                # DDL changed the plan space itself; every plan is suspect.
                self.plan_cache.clear()
                self.codegen_cache.clear()
            else:
                for cluster in {key[0] for key in touched}:
                    self.plan_cache.invalidate_cluster(cluster)
                    self.codegen_cache.invalidate_cluster(cluster)
            self._reload_cache_after_abort(touched)
        finally:
            self.store.locks.release_all(handle.txn_id)

    def _touched_keys(self, handle: Transaction) -> Set[Tuple[str, int]]:
        """Keys whose cached state the aborted *handle* may have changed:
        everything it wrote plus everything dirty-in-memory but unflushed."""
        touched = set(handle.write_set)
        for obj in self._dirty.values():
            if obj.is_persistent:
                oid = obj.oid
                touched.add((oid.cluster, oid.serial))
        return touched

    def _reload_cache_after_abort(self,
                                  touched: Set[Tuple[str, int]]) -> None:
        """Refresh live objects the aborted transaction touched.

        Only the transaction's own read/write footprint is visited — an
        abort is O(objects it touched), not O(objects resident in the
        cache). Objects that no longer exist (created inside the aborted
        transaction) are unbound: they become volatile instances again,
        keeping their in-memory field values.
        """
        with self._cache_lock:
            for key in touched:
                cluster, serial = key
                self._decoded.invalidate(key)
                obj = self._cache.get(key)
                if obj is not None:
                    head = self.store.get(cluster, (serial, 0))
                    if head is None:
                        obj.__dict__["_p_oid"] = None
                        obj.__dict__["_p_db"] = None
                        obj.__dict__["_p_version"] = 0
                        del self._cache[key]
                    else:
                        state = self.store.get(cluster,
                                               (serial, head["current"]))
                        obj._p_load_state(state["state"])
                        obj.__dict__["_p_version"] = head["current"]
                for vref in [v for v in self._vcache
                             if (v.cluster, v.serial) == key]:
                    stale = self._vcache[vref]
                    state = self.store.get(cluster, (serial, vref.version))
                    if state is None:
                        stale.__dict__["_p_oid"] = None
                        stale.__dict__["_p_db"] = None
                        stale.__dict__["_p_version"] = 0
                        self._vcache.pop(vref, None)
                    else:
                        stale._p_load_state(state["state"])

    def _run_fired_actions(self, fired: List[FiredAction]) -> None:
        """Weak coupling: run trigger actions as independent transactions.

        Actions may fire further triggers; the cascade is processed
        breadth-first with a hard bound. The activating transaction has
        already committed when this runs, so a failing action cannot undo
        it: the failing action's *own* transaction is aborted, the rest
        of the queue still runs, and a :class:`TriggerActionError`
        carrying every action's outcome is raised at the end if anything
        failed. With :attr:`concurrent_triggers` each breadth-first wave
        runs in parallel threads.
        """
        queue = deque(fired)
        results: List[Tuple[str, Optional[BaseException]]] = []
        steps = 0
        while queue:
            if self.concurrent_triggers and len(queue) > 1:
                wave = list(queue)
                queue.clear()
                steps += len(wave)
                if steps > MAX_TRIGGER_CASCADE:
                    raise TransactionError(
                        "trigger cascade exceeded %d actions"
                        % MAX_TRIGGER_CASCADE)
                outcomes: List = [None] * len(wave)

                def _runner(i: int, action: FiredAction) -> None:
                    outcomes[i] = self._run_one_action(action)

                threads = [threading.Thread(target=_runner, args=(i, a))
                           for i, a in enumerate(wave)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                for action, (follow, exc) in zip(wave, outcomes):
                    queue.extend(follow)
                    results.append((action.description, exc))
            else:
                steps += 1
                if steps > MAX_TRIGGER_CASCADE:
                    raise TransactionError(
                        "trigger cascade exceeded %d actions"
                        % MAX_TRIGGER_CASCADE)
                action = queue.popleft()
                follow, exc = self._run_one_action(action)
                queue.extend(follow)
                results.append((action.description, exc))
        failed = [desc for desc, exc in results if exc is not None]
        if failed:
            raise TriggerActionError(
                "%d of %d fired trigger action(s) failed: %s"
                % (len(failed), len(results), ", ".join(failed)),
                results=results)

    def _run_one_action(
            self, action: FiredAction
    ) -> Tuple[List[FiredAction], Optional[BaseException]]:
        """Run one fired action as its own transaction.

        Returns ``(follow_on_actions, error)``; the error (if any) has
        already aborted the action's transaction and is reported, not
        raised, so the remaining queue still runs.
        """
        txn_id = self.store.begin()
        handle = Transaction(txn_id, self)
        self._txn = handle
        try:
            action.thunk()
        except Exception as exc:
            self._abort(handle, reason=_abort_reason(exc))
            return [], exc
        except BaseException as exc:
            # KeyboardInterrupt/SystemExit: abort and propagate.
            self._abort(handle, reason=_abort_reason(exc))
            raise
        try:
            return self._commit(handle), None
        except Exception as exc:  # _commit aborts internally before raising
            return [], exc

    # -- dirty tracking -------------------------------------------------------

    def _note_dirty(self, obj: OdeObject) -> None:
        self._session.dirty[id(obj)] = obj
        # Inside a transaction the write lock is taken at the moment of
        # the first field write (strict 2PL); outside one, the deferred
        # autocommit's flush locks the object instead.
        if self._session.txn is not None and obj.is_persistent:
            oid = obj.oid
            self._lock_for_write(oid.cluster, oid.serial, lazy=True)

    def _flush(self, txn: int) -> None:
        """Write every dirty object's state to its current version.

        Two passes, reads before writes: state records are small and
        share pages, so a write invalidates the decoded-cache tokens of
        every not-yet-flushed neighbour on its page — a single pass
        would force a raw re-decode per object. Reading first keeps the
        whole batch on cache hits; a final sweep re-primes the cache
        with the states just written at their settled page LSNs, so the
        *next* transaction's flush (and any MVCC image load) hits too.
        """
        handle = self._session.txn
        todo = []
        for obj in list(self._dirty.values()):
            if not obj.is_persistent:
                continue
            oid = obj.oid
            self._lock_for_write(oid.cluster, oid.serial, lazy=True)
            version = obj.__dict__["_p_version"]
            key = (oid.cluster, oid.serial)
            old_state = None
            head = head_page = None
            try:
                self._load_current(oid.cluster, oid.serial)
            except DanglingReferenceError:
                pass
            entry = self._decoded.get(key)
            if entry is not None and entry[2] == version:
                tokens, head, _cur, old_state = entry
                head_page = tokens[0][0]
            else:
                old = self.store.get(oid.cluster, (oid.serial, version))
                old_state = None if old is None else old["state"]
            if self._mvcc_on and handle is not None:
                # A lazily registered pre-image must exist before the
                # store write below; build it from the state just read
                # (the loader only runs if the image is still lazy).
                self._mvcc.fill_lazy(
                    handle.txn_id, oid.cluster, oid.serial,
                    lambda h=head, v=version, s=old_state,
                    c=oid.cluster, n=oid.serial: self._lazy_image(
                        c, n, h, v, s))
            todo.append((obj, oid, key, version, head, head_page,
                         old_state))

        primed = []
        for obj, oid, key, version, head, head_page, old_state in todo:
            self._decoded.invalidate(key)
            new_state = obj._p_state_dict()
            payload = {"__key": [oid.serial, version], "state": new_state}
            if head_page is None:
                self.store.put(txn, oid.cluster, (oid.serial, version),
                               payload)
            else:
                rid, _lsn = self.store.put_with_token(
                    txn, oid.cluster, (oid.serial, version), payload)
                primed.append((key, oid.cluster, head_page, rid.page_no,
                               head, version, new_state))
            self._index_update(txn, obj, old_state)
            self.cluster_stats.record_update(oid.cluster, old_state,
                                             new_state)
        self._dirty.clear()

        if primed:
            by_cluster: Dict[str, set] = {}
            for _key, cluster, head_page, state_page, *_rest in primed:
                by_cluster.setdefault(cluster, set()).update(
                    (head_page, state_page))
            lsns = {c: self.store.page_lsns(c, pages)
                    for c, pages in by_cluster.items()}
            for (key, cluster, head_page, state_page, head, version,
                    new_state) in primed:
                got = lsns[cluster]
                self._decoded.put(key, ((head_page, got[head_page]),
                                        (state_page, got[state_page])),
                                  head, version, new_state)

    def _constraint_violated(self) -> None:
        """Hook called when a public member function's constraint check
        fails. Inside a transaction the exception aborts it; outside,
        revert the in-memory objects so the violation leaves no trace."""
        if self._txn is not None:
            return  # the propagating exception will abort the transaction
        for obj in list(self._dirty.values()):
            if obj.is_persistent:
                oid = obj.oid
                state = self.store.get(
                    oid.cluster, (oid.serial, obj.__dict__["_p_version"]))
                if state is not None:
                    obj._p_load_state(state["state"])
        self._dirty.clear()

    # ------------------------------------------------------------------
    # clusters
    # ------------------------------------------------------------------

    def create(self, cls: Union[Type[OdeObject], str],
               exist_ok: bool = False) -> None:
        """Create the cluster for *cls* (the paper's ``create`` macro).

        Ancestor clusters are created as needed, so the cluster hierarchy
        always mirrors the class hierarchy (section 2.5 / 3.1.1).
        """
        cls = self._resolve_class(cls)
        if self.store.has_cluster(cls.__name__):
            if exist_ok:
                return
            raise ClusterExistsError("cluster %r already exists"
                                     % cls.__name__)
        with self._implicit_txn() as txn:
            self._create_with_ancestors(txn, cls)

    def _create_with_ancestors(self, txn: int, cls: Type[OdeObject]) -> None:
        for parent in type(cls).parents.fget(cls):  # OdeMeta.parents
            if not self.store.has_cluster(parent.__name__):
                self._create_with_ancestors(txn, parent)
        if not self.store.has_cluster(cls.__name__):
            parents = [p.__name__ for p in type(cls).parents.fget(cls)]
            self.store.create_cluster(txn, cls.__name__, parents)
            self.cluster_stats.register_new(cls.__name__)
            handle = self._session.txn
            if handle is not None:
                handle.ddl = True  # an abort must re-check the catalog

    def has_cluster(self, cls: Union[Type[OdeObject], str]) -> bool:
        name = cls if isinstance(cls, str) else cls.__name__
        return self.store.has_cluster(name)

    def cluster(self, cls: Union[Type[OdeObject], str]):
        """Handle over the type extent of *cls* (see ClusterHandle)."""
        from .clusters import ClusterHandle
        return ClusterHandle(self, self._resolve_class(cls))

    def clusters(self) -> List[str]:
        """Names of all user clusters."""
        return [c.name for c in self.store.catalog.clusters()
                if not c.name.startswith("__")]

    def _resolve_class(self, cls: Union[Type[OdeObject], str]) -> Type[OdeObject]:
        if isinstance(cls, str):
            found = class_registry().get(cls)
            if found is None:
                raise SchemaError("no Ode class named %r is defined" % cls)
            return found
        if not isinstance(cls, OdeMeta) or cls is OdeObject:
            raise SchemaError("%r is not an Ode class" % (cls,))
        return cls

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------

    def pnew(self, cls: Union[Type[OdeObject], str], **field_values) -> OdeObject:
        """Create a persistent object (the paper's ``pnew``).

        The class's cluster must already exist — this is the paper's rule,
        and :class:`ClusterNotFoundError` enforces it.
        """
        cls = self._resolve_class(cls)
        obj = cls(**field_values)
        return self.pnew_from(obj)

    def pnew_from(self, obj: OdeObject) -> OdeObject:
        """Persist an existing volatile instance (same rules as pnew)."""
        if obj.is_persistent:
            raise SchemaError("%r is already persistent" % obj)
        cluster = type(obj).__name__
        if not self.store.has_cluster(cluster):
            raise ClusterNotFoundError(
                "cluster %r does not exist; call db.create(%s) first "
                "(the paper: 'Before creating a persistent object, the "
                "corresponding cluster must exist')" % (cluster, cluster))
        obj.check_constraints()
        with self._implicit_txn() as txn:
            serial = self.store.allocate_serial(txn, cluster)
            self._lock_for_write(cluster, serial, created=True)
            oid = Oid(cluster, serial)
            obj.__dict__["_p_oid"] = oid
            obj.__dict__["_p_db"] = self
            obj.__dict__["_p_version"] = 1
            self.store.put(txn, cluster, (serial, 0),
                           {"__key": [serial, 0], "current": 1, "chain": [1]},
                           new=True)
            state = obj._p_state_dict()
            self.store.put(txn, cluster, (serial, 1),
                           {"__key": [serial, 1], "state": state}, new=True)
            self._index_insert(txn, obj)
            self.cluster_stats.record_insert(cluster, state)
            with self._cache_lock:
                self._cache[(cluster, serial)] = obj
        return obj

    def pdelete(self, ref: Ref) -> None:
        """Delete a persistent object, or one version of it.

        ``pdelete(oid_or_obj)`` removes the object and all its versions.
        ``pdelete(vref)`` removes just that version (section 4): the chain
        is relinked; deleting the current version makes the latest
        remaining version current; deleting the last version deletes the
        object.
        """
        if isinstance(ref, Vref):
            self._pdelete_version(ref)
            return
        oid = self._as_oid(ref)
        with self._implicit_txn() as txn:
            self._lock_for_write(oid.cluster, oid.serial, full_image=True)
            head = self.store.get(oid.cluster, (oid.serial, 0))
            if head is None:
                raise DanglingReferenceError("pdelete of missing %r" % (oid,))
            stored = self.store.get(oid.cluster, (oid.serial, head["current"]))
            self._index_delete(txn, oid, stored["state"])
            self.cluster_stats.record_delete(oid.cluster, stored["state"])
            for version in head["chain"]:
                self.store.delete(txn, oid.cluster, (oid.serial, version))
            self.store.delete(txn, oid.cluster, (oid.serial, 0))
            self._evict(oid)

    def _pdelete_version(self, vref: Vref) -> None:
        with self._implicit_txn() as txn:
            self._lock_for_write(vref.cluster, vref.serial, full_image=True)
            head = self.store.get(vref.cluster, (vref.serial, 0))
            if head is None or vref.version not in head["chain"]:
                raise DanglingReferenceError("pdelete of missing %r" % (vref,))
            chain = [v for v in head["chain"] if v != vref.version]
            if not chain:
                self.pdelete(vref.oid)
                return
            self.store.delete(txn, vref.cluster, (vref.serial, vref.version))
            current = head["current"]
            if current == vref.version:
                current = chain[-1]
            self.store.put(txn, vref.cluster, (vref.serial, 0),
                           {"__key": [vref.serial, 0],
                            "current": current, "chain": chain})
            self._decoded.invalidate((vref.cluster, vref.serial))
            with self._cache_lock:
                self._vcache.pop(vref, None)
                cached = self._cache.pop((vref.cluster, vref.serial), None)
            if cached is not None:
                # Re-derefing rebinds the cache to the right version.
                self._dirty.pop(id(cached), None)

    def _evict(self, oid: Oid) -> None:
        self._decoded.invalidate((oid.cluster, oid.serial))
        with self._cache_lock:
            obj = self._cache.pop((oid.cluster, oid.serial), None)
            stale_vrefs = [v for v in self._vcache if v.oid == oid]
            stale_objs = [o for o in (self._vcache.pop(v)
                                      for v in stale_vrefs)
                          if o is not None]
        if obj is not None:
            self._dirty.pop(id(obj), None)
            obj.__dict__["_p_oid"] = None
            obj.__dict__["_p_db"] = None
            obj.__dict__["_p_version"] = 0
        for stale in stale_objs:
            stale.__dict__["_p_oid"] = None
            stale.__dict__["_p_db"] = None

    # ------------------------------------------------------------------
    # dereference
    # ------------------------------------------------------------------

    def deref(self, ref: Ref, _missing_ok: bool = False) -> Optional[OdeObject]:
        """Follow a pointer: the live object for *ref*.

        Generic :class:`Oid` references track the current version; the
        same live instance is returned for repeated derefs (object
        identity). :class:`Vref` references pin a version; non-current
        versions come back read-only (footnote 16 of the paper allows
        this). Raises :class:`DanglingReferenceError` for deleted objects
        unless *_missing_ok*.
        """
        if isinstance(ref, OdeObject):
            return ref
        if isinstance(ref, Vref):
            return self._deref_version(ref, _missing_ok)
        # Under MVCC this records the read (no lock); under 2PL it takes
        # the S lock that waits out a concurrent rewrite of the cached
        # instance.
        self._lock_for_read(ref.cluster, ref.serial)
        mvcc_on = self._mvcc_on
        if mvcc_on:
            # History check *before* trusting the shared cache: when a
            # writer is in flight (or committed past our snapshot) the
            # canonical object must not be served — resolve to the
            # visible committed image instead.
            resolved = self._mvcc_check(ref.cluster, ref.serial)
            if resolved is not _MVCC_STORE:
                return self._serve_image(ref, resolved, _missing_ok)
        cached = self._cache.get((ref.cluster, ref.serial))
        if cached is not None:
            return cached
        try:
            head, version, state = self._load_current(ref.cluster,
                                                      ref.serial)
        except DanglingReferenceError:
            # Head present but state record gone: a concurrent version
            # relink mid-flight. The history (registered before the
            # writer's first mutation) serves the committed image.
            if mvcc_on:
                resolved = self._mvcc_check(ref.cluster, ref.serial)
                if resolved is not _MVCC_STORE:
                    return self._serve_image(ref, resolved, _missing_ok)
            raise
        if mvcc_on:
            # Decode-then-validate: a writer may have registered (and
            # begun mutating records) between the first check and the
            # store read; registration-before-mutation guarantees this
            # re-check catches any such writer.
            resolved = self._mvcc_check(ref.cluster, ref.serial)
            if resolved is not _MVCC_STORE:
                return self._serve_image(ref, resolved, _missing_ok)
        if head is None:
            if _missing_ok:
                return None
            raise DanglingReferenceError("dangling reference %r" % (ref,))
        with self._cache_lock:
            cached = self._cache.get((ref.cluster, ref.serial))
            if cached is not None:  # another thread materialized it first
                return cached
            obj = self._materialize(ref, version, dict(state),
                                    readonly=False)
            self._cache[(ref.cluster, ref.serial)] = obj
        return obj

    def _mvcc_check(self, cluster: str, serial: int):
        """Resolve one object read against the MVCC histories.

        Returns :data:`_MVCC_STORE` (current store content / shared cache
        is correct for this reader), an image tuple, or None (no object
        visible at this snapshot).
        """
        hist = self._mvcc.lookup(cluster, serial)
        if hist is None:
            return _MVCC_STORE
        handle = self._session.txn
        if handle is not None:
            snapshot, txn_id = handle.snapshot_lsn, handle.txn_id
        else:
            snapshot, txn_id = None, -1  # autocommit: read-committed
        if not self._mvcc.needs_resolve(hist, snapshot, txn_id):
            return _MVCC_STORE
        return self._mvcc.visible(hist, snapshot, txn_id)

    def _serve_image(self, ref, img, missing_ok: bool):
        if img is None:
            if missing_ok:
                return None
            raise DanglingReferenceError("dangling reference %r" % (ref,))
        return self._materialize_snapshot(ref.cluster, ref.serial, img)

    def _load_current(self, cluster: str, serial: int):
        """Decoded ``(head, current_version, state)`` for one object.

        The materialization fast path: a :class:`DecodedCache` hit costs
        one or two page-LSN validations (buffer-pool hits) instead of two
        directory probes, two heap reads and two ``decode_value`` calls.
        Served state dicts are shared — callers must treat them as
        immutable (deref copies before loading into a live object).
        Returns ``(None, 0, None)`` for a missing object.
        """
        key = (cluster, serial)
        store = self.store
        entry = self._decoded.get(key)
        if entry is not None:
            tokens, head, version, state = entry
            if store.tokens_valid(tokens):
                self._decoded.hits += 1
                return head, version, state
            self._decoded.invalidate(key)
        self._decoded.misses += 1
        head, head_rid, head_lsn = store.get_with_token(cluster, (serial, 0))
        if head is None:
            return None, 0, None
        version = head["current"]
        stored, state_rid, state_lsn = store.get_with_token(
            cluster, (serial, version))
        if stored is None:
            raise DanglingReferenceError(
                "version %d of %s:%d has no state record"
                % (version, cluster, serial))
        state = stored["state"]
        self._decoded.put(key,
                          ((head_rid.page_no, head_lsn),
                           (state_rid.page_no, state_lsn)),
                          head, version, state)
        return head, version, state

    def _deref_version(self, vref: Vref,
                       missing_ok: bool) -> Optional[OdeObject]:
        self._lock_for_read(vref.cluster, vref.serial)
        if self._mvcc_on:
            resolved = self._mvcc_check(vref.cluster, vref.serial)
            if resolved is not _MVCC_STORE:
                if resolved is None:
                    if missing_ok:
                        return None
                    raise DanglingReferenceError(
                        "dangling reference %r" % (vref,))
                head, states = resolved
                state = (states.get(vref.version)
                         if vref.version in head["chain"] else None)
                if state is None and vref.version in head["chain"]:
                    # Partial image (see _load_image): the pinned state
                    # is immutable, so it lives in a later full
                    # pre-image (a delete registers the chain before
                    # mutating) or is still the store's record.
                    state = self._pinned_state_fallback(vref)
                if state is None:
                    if missing_ok:
                        return None
                    raise DanglingReferenceError(
                        "dangling reference %r" % (vref,))
                obj = self._materialize(vref.oid, vref.version,
                                        dict(state), readonly=True)
                obj.__dict__["_p_snapshot_stale"] = True
                return obj
        head = self.store.get(vref.cluster, (vref.serial, 0))
        if head is None or vref.version not in head["chain"]:
            if missing_ok:
                return None
            raise DanglingReferenceError("dangling reference %r" % (vref,))
        if head["current"] == vref.version:
            return self.deref(vref.oid, _missing_ok=missing_ok)
        cached = self._vcache.get(vref)
        if cached is not None:
            return cached
        state = self.store.get(vref.cluster, (vref.serial, vref.version))
        if state is None:
            # A concurrent delete/vacuum can remove the state record
            # between the chain-membership check above and this read;
            # that is a dangling reference, not a TypeError.
            if missing_ok:
                return None
            raise DanglingReferenceError("dangling reference %r" % (vref,))
        with self._cache_lock:
            cached = self._vcache.get(vref)
            if cached is not None:
                return cached
            obj = self._materialize(vref.oid, vref.version, state["state"],
                                    readonly=True)
            self._vcache.put(vref, obj)
        return obj

    def _pinned_state_fallback(self, vref: Vref) -> Optional[Dict]:
        """Resolve a pinned version missing from a partial pre-image.

        Order matters: a history probe first (a registered delete carries
        the state), then the store record, then the history again — if
        the record vanished between the probes, the deleter had
        registered its full pre-image before deleting, so the re-check
        finds it. A final None is a genuinely dangling version.
        """
        handle = self._session.txn
        if handle is not None:
            snapshot, txn_id = handle.snapshot_lsn, handle.txn_id
        else:
            snapshot, txn_id = None, -1
        hist = self._mvcc.lookup(vref.cluster, vref.serial)
        if hist is not None:
            state = self._mvcc.version_state(hist, snapshot, txn_id,
                                             vref.version)
            if state is not None:
                return state
        rec = self.store.get(vref.cluster, (vref.serial, vref.version))
        if rec is not None:
            return rec["state"]
        hist = self._mvcc.lookup(vref.cluster, vref.serial)
        if hist is not None:
            return self._mvcc.version_state(hist, snapshot, txn_id,
                                            vref.version)
        return None

    def _materialize_from_scan(self, cluster: str, serial: int, head: Dict,
                               states: Dict) -> Optional[OdeObject]:
        """Materialize one scanned head record, preferring in-batch state.

        *states* maps ``(serial, version)`` to state records decoded from
        the same scan batch. Version heads and their current state land on
        the same page for freshly created objects (pnew writes them back
        to back), so the common case needs no extra storage round-trip at
        all; otherwise the deref path (with its decoded cache) picks up
        the slack. Per-object locks are already subsumed by the scan's
        cluster S lock.
        """
        key = (cluster, serial)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        version = head["current"]
        state_rec = states.get((serial, version))
        if state_rec is None:
            return self.deref(Oid(cluster, serial), _missing_ok=True)
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
            obj = self._materialize(Oid(cluster, serial), version,
                                    dict(state_rec["state"]),
                                    readonly=False)
            self._cache[key] = obj
        return obj

    def _materialize(self, oid: Oid, version: int, state: Dict,
                     readonly: bool) -> OdeObject:
        cls = class_registry().get(oid.cluster)
        if cls is None:
            raise SchemaError(
                "no Ode class named %r is defined in this program; "
                "import or define it before dereferencing" % oid.cluster)
        obj = cls.__new__(cls)
        obj.__dict__["_p_db"] = self
        obj.__dict__["_p_oid"] = oid
        obj.__dict__["_p_version"] = version
        obj.__dict__["_p_dirty"] = False
        obj.__dict__["_p_readonly"] = readonly
        obj.__dict__["_p_loading"] = False
        obj._p_load_state(state)
        return obj

    def _as_oid(self, ref: Ref) -> Oid:
        if isinstance(ref, OdeObject):
            return ref.oid
        if isinstance(ref, Vref):
            return ref.oid
        if isinstance(ref, Oid):
            return ref
        raise NotPersistentError("%r is not a persistent reference" % (ref,))

    # ------------------------------------------------------------------
    # versioning (section 4)
    # ------------------------------------------------------------------

    def newversion(self, ref: Ref) -> Vref:
        """Create a new (current) version of the object (paper's macro).

        The previous current version becomes read-only history; a specific
        reference to the *new* current version is returned. Live generic
        handles now see the new version.
        """
        oid = self._as_oid(ref)
        with self._implicit_txn() as txn:
            self._lock_for_write(oid.cluster, oid.serial)
            # Flush pending in-memory changes into the old current version
            # first, so the copy is faithful; then one decoded-cache read
            # serves both the head and the state to copy.
            self._flush(txn)
            head, _cur, old_state = self._load_current(oid.cluster,
                                                       oid.serial)
            if head is None:
                raise DanglingReferenceError("newversion of missing %r"
                                             % (oid,))
            new_version = max(head["chain"]) + 1
            self.store.put(txn, oid.cluster, (oid.serial, new_version),
                           {"__key": [oid.serial, new_version],
                            "state": dict(old_state)})
            self.store.put(txn, oid.cluster, (oid.serial, 0),
                           {"__key": [oid.serial, 0],
                            "current": new_version,
                            "chain": head["chain"] + [new_version]})
            self._decoded.invalidate((oid.cluster, oid.serial))
            cached = self._cache.get((oid.cluster, oid.serial))
            if cached is not None:
                cached.__dict__["_p_version"] = new_version
        return Vref(oid.cluster, oid.serial, new_version)

    def versions(self, ref: Ref) -> List[Vref]:
        """All versions of the object, oldest first."""
        oid = self._as_oid(ref)
        head = self._head_of(oid)
        return [Vref(oid.cluster, oid.serial, v) for v in head["chain"]]

    def current_version(self, ref: Ref) -> Vref:
        oid = self._as_oid(ref)
        head = self._head_of(oid)
        return Vref(oid.cluster, oid.serial, head["current"])

    def vprev(self, ref: Ref) -> Optional[Vref]:
        """The version preceding *ref* (None at the first)."""
        vref = self._as_vref(ref)
        chain = self._head_of(vref.oid)["chain"]
        i = chain.index(vref.version)
        if i == 0:
            return None
        return Vref(vref.cluster, vref.serial, chain[i - 1])

    def vnext(self, ref: Ref) -> Optional[Vref]:
        """The version following *ref* (None at the last)."""
        vref = self._as_vref(ref)
        chain = self._head_of(vref.oid)["chain"]
        i = chain.index(vref.version)
        if i + 1 >= len(chain):
            return None
        return Vref(vref.cluster, vref.serial, chain[i + 1])

    def vfirst(self, ref: Ref) -> Vref:
        """The oldest version of the object."""
        oid = self._as_oid(ref)
        return Vref(oid.cluster, oid.serial, self._head_of(oid)["chain"][0])

    def vlast(self, ref: Ref) -> Vref:
        """The newest version of the object."""
        oid = self._as_oid(ref)
        return Vref(oid.cluster, oid.serial, self._head_of(oid)["chain"][-1])

    def _head_of(self, oid: Oid) -> Dict:
        self._lock_for_read(oid.cluster, oid.serial)
        if self._mvcc_on:
            resolved = self._mvcc_check(oid.cluster, oid.serial)
            if resolved is not _MVCC_STORE:
                if resolved is None:
                    raise DanglingReferenceError(
                        "dangling reference %r" % (oid,))
                return resolved[0]
        head = self.store.get(oid.cluster, (oid.serial, 0))
        if head is None:
            raise DanglingReferenceError("dangling reference %r" % (oid,))
        return head

    def _as_vref(self, ref: Ref) -> Vref:
        if isinstance(ref, Vref):
            chain = self._head_of(ref.oid)["chain"]
            if ref.version not in chain:
                raise VersionError("%r names a deleted version" % (ref,))
            return ref
        if isinstance(ref, OdeObject):
            return ref.vref
        if isinstance(ref, Oid):
            return self.current_version(ref)
        raise NotPersistentError("%r is not a persistent reference" % (ref,))

    # ------------------------------------------------------------------
    # secondary indexes
    # ------------------------------------------------------------------

    def create_index(self, cls: Union[Type[OdeObject], str], field,
                     kind: str = "btree", unique: bool = False) -> None:
        """Index *field* of *cls*'s cluster; existing objects are indexed.

        *field* may be a tuple of field names for a composite index
        (keyed on the value tuple, useful for equality-on-prefix plus
        range queries). Indexes serve the query optimizer and are
        maintained on every flush/delete.
        """
        cls = self._resolve_class(cls)
        cluster = cls.__name__
        fields = list(field) if isinstance(field, (tuple, list)) else [field]
        for fname in fields:
            if fname not in cls._ode_fields:
                raise SchemaError("%s has no field %r" % (cluster, fname))
        with self._implicit_txn() as txn:
            self._lock_cluster_ddl(cluster)
            info = self.store.create_index(txn, cluster, field, kind=kind,
                                           unique=unique)
            for _rid, record in self.store.scan(cluster):
                serial, version = record["__key"]
                if version != 0:
                    continue
                state = self.store.get(cluster, (serial, record["current"]))
                self.store.index_insert(
                    txn, cluster, info.field,
                    _state_key(state["state"], info.fields), serial)
            # Index DDL changes the plan space: invalidate cached plans
            # and rebuild exact statistics (the new field needs tracking).
            self._plan_epoch += 1
            self.codegen_cache.invalidate_cluster(cluster)
            self.cluster_stats.analyze(cluster)

    def _indexed_fields(self, cluster: str) -> Dict[str, Any]:
        if not self.store.has_cluster(cluster):
            return {}
        return self.store.indexes_on(cluster)

    def _index_insert(self, txn: int, obj: OdeObject) -> None:
        cluster = type(obj).__name__
        for name, info in self._indexed_fields(cluster).items():
            key = tuple(self._stored_field(obj, f) for f in info.fields)
            self.store.index_insert(
                txn, cluster, name, key[0] if len(key) == 1 else key,
                obj.oid.serial)

    def _index_delete(self, txn: int, oid: Oid,
                      stored_state: Dict) -> None:
        """Remove index entries using the *stored* (not live) field values."""
        for name, info in self._indexed_fields(oid.cluster).items():
            self.store.index_delete(
                txn, oid.cluster, name,
                _state_key(stored_state, info.fields), oid.serial)

    def _index_update(self, txn: int, obj: OdeObject,
                      old_state: Optional[Dict]) -> None:
        cluster = type(obj).__name__
        for name, info in self._indexed_fields(cluster).items():
            key = tuple(self._stored_field(obj, f) for f in info.fields)
            new_value = key[0] if len(key) == 1 else key
            old_value = (None if old_state is None
                         else _state_key(old_state, info.fields))
            if old_state is not None and old_value == new_value:
                continue
            if old_state is not None:
                self.store.index_delete(txn, cluster, name, old_value,
                                        obj.oid.serial)
            self.store.index_insert(txn, cluster, name, new_value,
                                    obj.oid.serial)

    def _stored_field(self, obj: OdeObject, field: str):
        return obj._ode_fields[field].to_stored(obj, getattr(obj, field))

    # ------------------------------------------------------------------
    # maintenance & introspection
    # ------------------------------------------------------------------

    def vacuum(self, cls: Union[Type[OdeObject], str, None] = None) -> Dict:
        """Compact cluster storage (see :meth:`Store.vacuum`).

        With *cls* vacuum one cluster; without, every user cluster.
        Pending in-memory changes are flushed first so nothing is lost.
        """
        if self._dirty:
            with self._implicit_txn():
                pass
        # A vacuum rewrites every record of the cluster into new pages;
        # the old tokens all die at once, so wholesale clearing beats
        # per-key invalidation. Pinned-version materializations of the
        # rewritten chains are dropped too (counted as evictions) — a
        # later deref re-pins from the new records.
        self._decoded.clear()
        if cls is not None:
            name = cls if isinstance(cls, str) else cls.__name__
            result = {name: self.store.vacuum(name)}
            self._vcache.invalidate_cluster(name)
            return result
        result = {name: self.store.vacuum(name) for name in self.clusters()}
        self._vcache.clear()
        return result

    def verify(self) -> List[str]:
        """Run the storage integrity checker plus object-layer checks.

        Object-layer checks: every version head's ``current`` appears in
        its ``chain``, and every version in the chain has a state record.
        Returns the list of problems (empty = consistent).
        """
        problems = self.store.verify_integrity()
        for name in self.clusters():
            for _rid, record in self.store.scan(name):
                serial, version = record["__key"]
                if version != 0:
                    continue
                chain = record["chain"]
                if record["current"] not in chain:
                    problems.append(
                        "%s:%d: current version %d not in chain %r"
                        % (name, serial, record["current"], chain))
                for v in chain:
                    if self.store.get(name, (serial, v)) is None:
                        problems.append(
                            "%s:%d: chain version %d has no state record"
                            % (name, serial, v))
        return problems

    def scrub(self) -> Dict[str, Any]:
        """Checksum-verify every allocated page's on-disk image.

        Background-maintenance / CLI entry point (``repro scrub``); see
        :meth:`Store.scrub`. Bad pages are quarantined and flip the
        database into read-only degraded mode; :meth:`repair` (or fixing
        the disk and reopening) clears it.
        """
        if self.store.degraded is None:
            # Flush and checkpoint first: a dirty frame's disk image is
            # legitimately stale and the scrub would have to skip it.
            if self._dirty:
                with self._implicit_txn():
                    pass
            self.store.checkpoint()
        return self.store.scrub()

    @property
    def degraded(self) -> Optional[str]:
        """Why the database is read-only, or ``None`` when healthy."""
        return self.store.degraded

    @property
    def faults(self):
        """The storage :class:`~repro.storage.faults.FaultInjector`.

        Test/crash-harness hook: ``db.faults.arm("wal.flush.fsync",
        "error")`` makes the next log fsync fail, and so on — see
        :mod:`repro.storage.faults` for the failpoint catalogue.
        """
        return self.store.faults

    def repair(self) -> Dict[str, Any]:
        """Salvage corruption-hit clusters and leave the database writable.

        Wraps :meth:`Store.repair_quarantined` with the object-layer
        aftermath the store cannot do itself: version chains of salvaged
        clusters are mended (versions whose state records were lost are
        pruned, ``current`` re-pointed at the newest survivor, objects
        with no surviving state dropped) and secondary indexes —
        recreated empty by the salvage — are repopulated from the
        surviving current versions. Clears degraded mode on success.
        Raises :class:`~repro.errors.StorageError` if the WAL has failed
        (only a close-and-reopen recovers that).
        """
        report = self.store.repair_quarantined()
        for cluster in report["clusters"]:
            if cluster.startswith("__"):
                continue  # internal clusters don't use the version layout
            fixes = self._repair_cluster_objects(cluster)
            report["clusters"][cluster].update(fixes)
        # The salvage rewrote records wholesale; every cache is suspect.
        self._decoded.clear()
        self.plan_cache.clear()
        self.codegen_cache.clear()
        with self._cache_lock:
            self._cache.clear()
            self._vcache.clear()
        for cluster in report["clusters"]:
            if not cluster.startswith("__"):
                self.cluster_stats.analyze(cluster)
        self.events.emit("db_repair", clusters=sorted(report["clusters"]),
                         leaked_pages=report.get("leaked_pages", 0))
        return report

    def _repair_cluster_objects(self, cluster: str) -> Dict[str, int]:
        """Mend version chains and rebuild index entries after a salvage."""
        infos = self.store.indexes_on(cluster)
        chains_fixed = 0
        objects_dropped = 0
        index_entries = 0
        with self._implicit_txn() as txn:
            self._lock_cluster_ddl(cluster)
            heads: Dict[int, Optional[Dict]] = {}
            states: Dict[int, set] = {}
            for _rid, record in self.store.scan(cluster):
                serial, version = record["__key"]
                if version == 0:
                    heads[serial] = record
                else:
                    states.setdefault(serial, set()).add(version)
            # Orphan states (their head was lost): synthesize a head.
            for serial, versions in states.items():
                if serial not in heads:
                    head = {"__key": [serial, 0],
                            "current": max(versions),
                            "chain": sorted(versions)}
                    heads[serial] = head
                    self.store.put(txn, cluster, (serial, 0), head)
                    chains_fixed += 1
            for serial, head in heads.items():
                have = states.get(serial, set())
                chain = [v for v in head["chain"] if v in have]
                if not chain:
                    # Every state of this object was lost with the page.
                    self.store.delete(txn, cluster, (serial, 0))
                    heads[serial] = None
                    objects_dropped += 1
                    continue
                current = head["current"]
                if current not in chain:
                    current = chain[-1]
                if chain != head["chain"] or current != head["current"]:
                    self.store.put(txn, cluster, (serial, 0),
                                   {"__key": [serial, 0],
                                    "current": current, "chain": chain})
                    head["current"] = current
                    head["chain"] = chain
                    chains_fixed += 1
                for version in have - set(chain):
                    self.store.delete(txn, cluster, (serial, version))
            if infos:
                for serial, head in heads.items():
                    if head is None:
                        continue
                    state = self.store.get(cluster,
                                           (serial, head["current"]))
                    if state is None:
                        continue
                    for name, info in infos.items():
                        self.store.index_insert(
                            txn, cluster, name,
                            _state_key(state["state"], info.fields),
                            serial)
                        index_entries += 1
        return {"chains_fixed": chains_fixed,
                "objects_dropped": objects_dropped,
                "index_entries_rebuilt": index_entries}

    def analyze(self, cls: Union[Type[OdeObject], str, None] = None) -> Dict:
        """Rebuild optimizer statistics exactly by scanning clusters.

        With *cls* analyze one cluster; without, every user cluster.
        Returns the refreshed statistics snapshot. Cached plans are
        dropped so the next query re-prices with the new numbers.
        """
        if self._dirty:
            with self._implicit_txn():
                pass
        names = ([cls if isinstance(cls, str) else cls.__name__]
                 if cls is not None else self.clusters())
        for name in names:
            if not self.store.has_cluster(name):
                raise ClusterNotFoundError("no cluster named %r" % name)
            self.cluster_stats.analyze(name)
        self.plan_cache.clear()
        self.codegen_cache.clear()
        return self.cluster_stats.snapshot()

    def stats(self) -> Dict[str, Any]:
        """Runtime counters: buffer pool, WAL, plan cache, statistics.

        The observability companion to :meth:`schema` — everything here
        is about *how* the engine is running, not what is stored.
        """
        store_stats = self.store.stats()
        fragmentation = {
            name: self.store.fragmentation(name)
            for name in self.clusters()
        }
        pool = store_stats["pool"]
        lookups = pool["hits"] + pool["misses"]
        buffer = dict(pool)
        buffer["hit_ratio"] = (pool["hits"] / lookups) if lookups else 0.0
        out = {
            # Canonical component namespaces.
            "buffer": buffer,
            "page_cache": store_stats["page_cache"],
            "decoded_cache": self._decoded.stats(),
            "vcache": self._vcache.stats(),
            "mvcc": self._mvcc.stats(),
            "fragmentation": fragmentation,
            "wal": {
                "appends": store_stats["wal_appends"],
                "syncs": store_stats["wal_syncs"],
                "flush_calls": store_stats["wal_flush_calls"],
                "group_deferrals": store_stats["wal_group_deferrals"],
                "durability": store_stats["durability"],
            },
            "plan_cache": self.plan_cache.stats(),
            "codegen": self.codegen_cache.stats(),
            "clusters": self.cluster_stats.snapshot(),
            "locks": store_stats["locks"],
            "txn": {
                "commits": self._txn_commits.value,
                "aborts": self.metrics.get("txn.aborts") or 0,
                "active": len(self.store._journal.active),
            },
            "query": {
                "count": self._query_count.value,
                "slow": self._query_slow.value,
            },
            "events": {
                "ring": len(self.events),
                "dropped": self.events.dropped,
            },
            "pages": store_stats["pages"],
            "shards": store_stats["shards"],
            "storage": store_stats["storage_health"],
        }
        # Compatibility shim: older tooling parsed --stats output keyed
        # by "buffer_pool"; keep it as an alias of the canonical dict.
        out["buffer_pool"] = out["buffer"]
        return out

    def set_durability(self, mode: str, group_size: Optional[int] = None,
                       group_window: Optional[float] = None) -> None:
        """Switch the commit fsync policy at runtime (``"full"``,
        ``"group"`` or ``"none"``; see :mod:`repro.storage.wal`)."""
        self.store.set_durability(mode, group_size, group_window)

    @property
    def durability(self) -> str:
        return self.store.durability

    def schema(self) -> Dict[str, Dict]:
        """Describe every user cluster: fields, parents, indexes, count."""
        out: Dict[str, Dict] = {}
        for name in self.clusters():
            info = self.store.cluster_info(name)
            cls = class_registry().get(name)
            fields = {}
            constraints: List[str] = []
            triggers: List[str] = []
            if cls is not None:
                fields = {fname: type(field).__name__
                          for fname, field in cls._ode_fields.items()}
                constraints = [cname for cname, _ in cls._ode_constraints]
                triggers = list(cls._ode_triggers)
            count = sum(1 for _rid, record in self.store.scan(name)
                        if record["__key"][1] == 0)
            out[name] = {
                "parents": list(info.parents),
                "fields": fields,
                "constraints": constraints,
                "triggers": triggers,
                "indexes": {f: ix.kind for f, ix in info.indexes.items()},
                "objects": count,
            }
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush pending changes and checkpoint the storage engine."""
        with self._implicit_txn() as txn:
            self.cluster_stats.persist_all(txn)
        self.store.checkpoint()

    def close(self) -> None:
        """Flush, checkpoint and close the database."""
        if self._closed:
            return
        if self._txn is not None:
            raise TransactionError("close() inside an open transaction")
        if self.recluster_daemon is not None:
            # Stop the daemon before anything is torn down; a migration
            # racing close would find the store half-closed. The join
            # must complete before the quiesce below — a daemon round
            # holds the scan gate for its chain rewrite.
            self.recluster_daemon.stop()
            self.recluster_daemon = None
        if ((self._dirty or self.cluster_stats.dirty())
                and self.store.degraded is None):
            # In degraded mode nothing can be flushed; the store's close
            # preserves the durable prefix instead.
            with self._implicit_txn() as txn:
                self.cluster_stats.persist_all(txn)
        if len(self.events):
            try:
                self.events.save(str(self.store.path) + ".events")
            except OSError:
                pass  # an unwritable sidecar must not block close()
        # store.close() quiesces the scan gate before its final
        # checkpoint: in-flight shard-parallel scans drain first and
        # late-arriving scans fail cleanly instead of racing the page
        # files closing. (The stats flush above must run *before* the
        # quiesce — its commit may evaluate triggers, which scan.)
        self.store.close()
        self._cache.clear()
        self._vcache.clear()
        self._decoded.clear()
        self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        if not self._closed:
            if self._txn is None:
                self.close()
            else:
                if self.recluster_daemon is not None:
                    self.recluster_daemon.stop()
                    self.recluster_daemon = None
                self.store.close()

    def __repr__(self) -> str:
        return "Database(%r)" % self.store.path


class _ScanVis:
    """Per-scan MVCC visibility overlay for one cluster.

    The scan loop consults it per head record: serials with an active
    history entry that matters for this reader (``needs``) are resolved
    through :meth:`materialize` (committed image at the snapshot, own
    writes from the store, invisible objects skipped); everything else
    takes the unchanged fast path, with the serial noted in ``seen`` so
    the post-scan :meth:`tail` pass can resurrect objects whose records
    were deleted from the store mid-scan without double-yielding anything
    the page walk already produced.
    """

    __slots__ = ("db", "cluster", "hists", "hget", "snapshot", "txn_id",
                 "seen")

    def __init__(self, db: Database, cluster: str, hists,
                 snapshot: Optional[int], txn_id: int):
        self.db = db
        self.cluster = cluster
        self.hists = hists
        self.hget = hists.get
        self.snapshot = snapshot
        self.txn_id = txn_id
        self.seen: Set[int] = set()

    def needs(self, hist) -> bool:
        return self.db._mvcc.needs_resolve(hist, self.snapshot, self.txn_id)

    def batch_clean(self) -> bool:
        """May a just-decoded batch skip the per-head history checks?

        Safe to call once per batch *after* its records are decoded:
        registration-before-mutation means any writer whose uncommitted
        bytes could have been decoded is registered (pending) by now, and
        a commit newer than the snapshot shows in the cluster's max
        commit LSN — either flips :meth:`MVCCManager.cluster_dirty`. With
        the cluster clean, ``needs_resolve`` is False for every history,
        so the whole batch takes the unchecked fast path.
        """
        return not self.db._mvcc.cluster_dirty(self.cluster, self.snapshot)

    def materialize(self, serial: int) -> Optional[OdeObject]:
        """Resolve one history-flagged serial; None = skip (invisible or
        already yielded)."""
        seen = self.seen
        if serial in seen:
            return None
        seen.add(serial)
        db = self.db
        hist = self.hget(serial)
        if hist is not None:
            img = db._mvcc.visible(hist, self.snapshot, self.txn_id)
            if img is None:
                return None
            if img is not _MVCC_STORE:
                return db._materialize_snapshot(self.cluster, serial, img)
        # Own write, or the writer finished in our favour: current store
        # content is right — the deref path re-resolves defensively.
        return db.deref(Oid(self.cluster, serial), _missing_ok=True)

    def tail(self) -> List[OdeObject]:
        """Visible-at-snapshot objects whose store records are gone
        (deleted mid-scan by another transaction): the page walk could
        not have yielded them, so they are resurrected from their
        committed images here."""
        db = self.db
        store = db.store
        seen = self.seen
        out: List[OdeObject] = []
        for serial, hist in list(self.hists.items()):
            if serial in seen:
                continue
            seen.add(serial)
            img = db._mvcc.visible(hist, self.snapshot, self.txn_id)
            if img is _MVCC_STORE or img is None:
                continue
            if store.exists(self.cluster, (serial, 0)):
                # The live record was visited (or skipped as invisible)
                # by the page walk itself.
                continue
            out.append(db._materialize_snapshot(self.cluster, serial, img))
        return out


class _ImplicitTxn:
    """Context manager behind :meth:`Database._implicit_txn`."""

    __slots__ = ("_db", "_handle", "_joined")

    def __init__(self, db: Database):
        self._db = db

    def __enter__(self) -> int:
        db = self._db
        if db._txn is not None:
            self._joined = True
            return db._txn.txn_id
        self._joined = False
        txn_id = db.store.begin()
        self._handle = Transaction(txn_id, db)
        db._txn = self._handle
        return txn_id

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._joined:
            return False
        db = self._db
        if exc_type is not None:
            db._abort(self._handle, reason=_abort_reason(exc))
            return False
        fired = db._commit(self._handle)
        db._run_fired_actions(fired)
        return False
