"""Object identity — the paper's object ids and version references.

Section 2 of the paper: "A database is a collection of persistent objects,
each identified by a unique identifier, called the object identifier (id)
that is its identity. We shall also refer to this object id as a pointer to
a persistent object."

Two reference flavours exist, mirroring section 4 (versioning):

* :class:`Oid` — a *generic* reference. It names an object; dereferencing
  it always yields the object's **current** version.
* :class:`Vref` — a *specific* reference, pinned to one version.

Both are small immutable values that can be stored inside other persistent
objects (the codec encodes them natively). Dereferencing goes through
:meth:`repro.core.database.Database.deref`.
"""

from __future__ import annotations

from typing import Any

from ..storage.codec import OidTriple, VrefTriple, register_extension


class Oid:
    """Generic reference: (cluster name, serial). Follows the current version."""

    __slots__ = ("cluster", "serial")

    def __init__(self, cluster: str, serial: int):
        object.__setattr__(self, "cluster", cluster)
        object.__setattr__(self, "serial", int(serial))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Oid is immutable")

    def __eq__(self, other: Any) -> bool:
        return (type(other) is type(self)
                and other.cluster == self.cluster
                and other.serial == self.serial)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.cluster, self.serial))

    def __repr__(self) -> str:
        return "Oid(%s:%d)" % (self.cluster, self.serial)


class Vref:
    """Specific reference, pinned to version *version* of an object."""

    __slots__ = ("cluster", "serial", "version")

    def __init__(self, cluster: str, serial: int, version: int):
        object.__setattr__(self, "cluster", cluster)
        object.__setattr__(self, "serial", int(serial))
        object.__setattr__(self, "version", int(version))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Vref is immutable")

    @property
    def oid(self) -> Oid:
        """The generic reference to the same object."""
        return Oid(self.cluster, self.serial)

    def __eq__(self, other: Any) -> bool:
        return (type(other) is type(self)
                and other.cluster == self.cluster
                and other.serial == self.serial
                and other.version == self.version)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.cluster,
                     self.serial, self.version))

    def __repr__(self) -> str:
        return "Vref(%s:%d@v%d)" % (self.cluster, self.serial, self.version)


# Stable on-disk tags for references; the storage codec persists them via
# these registrations without knowing about the object layer.
register_extension(
    0x41, Oid,
    to_state=lambda ref: (ref.cluster, ref.serial),
    from_state=lambda state: Oid(state[0], state[1]),
    key_state=lambda ref: (ref.cluster, ref.serial))
register_extension(
    0x42, Vref,
    to_state=lambda ref: (ref.cluster, ref.serial, ref.version),
    from_state=lambda state: Vref(state[0], state[1], state[2]),
    key_state=lambda ref: (ref.cluster, ref.serial, ref.version))


def to_triple(ref, cluster_ids) -> OidTriple:
    """Map a reference to its on-disk triple using *cluster_ids* (name->id)."""
    if isinstance(ref, Vref):
        return VrefTriple(cluster_ids[ref.cluster], ref.serial, ref.version)
    return OidTriple(cluster_ids[ref.cluster], ref.serial, 0)


def from_triple(triple: OidTriple, cluster_names):
    """Map an on-disk triple back to a reference (*cluster_names*: id->name)."""
    name = cluster_names[triple.cluster_id]
    if isinstance(triple, VrefTriple):
        return Vref(name, triple.serial, triple.version)
    return Oid(name, triple.serial)
