"""Cluster handles — iterating type extents (sections 2.5, 3.1.1).

All persistent objects of a type form its *cluster*; clusters mirror the
inheritance hierarchy. ``db.cluster(Person)`` returns a handle over the
``Person`` extent:

* iterating the handle visits the objects whose *exact* class is Person;
* ``db.cluster(Person).deep()`` — the paper's ``person*`` — visits the
  whole hierarchy: Person objects plus every object of a class derived
  from Person, which enables the income-averaging program of 3.1.1
  (``forall p in person*``) with ``isinstance`` playing the paper's
  ``p is persistent student *`` type test.

Iteration visits objects inserted into the cluster during the iteration
(the section 3.2 fixpoint property); for deep iteration this holds within
each member cluster.
"""

from __future__ import annotations

from typing import Iterator, List, Type

from .mvcc import STORE as _MVCC_STORE
from .objects import OdeObject, class_registry
from .oid import Oid


class ClusterHandle:
    """Live view over the extent of one Ode class."""

    def __init__(self, db, cls: Type[OdeObject]):
        self.db = db
        self.cls = cls
        self.name = cls.__name__

    @property
    def exists(self) -> bool:
        return self.db.store.has_cluster(self.name)

    # -- iteration ------------------------------------------------------------

    def __iter__(self) -> Iterator[OdeObject]:
        """Objects of exactly this cluster (current versions), as live
        objects. Pending in-memory changes are flushed first when a
        transaction is open, so the iteration sees them."""
        return self._iter_one(self.name)

    def deep(self) -> "DeepView":
        """The paper's ``cluster*``: this extent and all derived extents.

        Returns a re-iterable view (so it can feed joins), not a one-shot
        generator.
        """
        return DeepView(self)

    def _iter_one(self, cluster_name: str) -> Iterator[OdeObject]:
        for batch in self._iter_batches_one(cluster_name):
            yield from batch

    def iter_batches(self) -> Iterator[List[OdeObject]]:
        """Page-at-a-time batches of live objects (the scan fast path).

        Each yielded list holds the objects whose version heads share one
        heap page. The query layer's full-scan plan consumes these so the
        compiled residual filter runs across a batch at a time.
        """
        return self._iter_batches_one(self.name)

    def as_of(self, token: int) -> "AsOfHandle":
        """Time-travel view of this extent as of *token* (an opaque value
        from :meth:`Database.snapshot_token`). Iterating it yields the
        committed state of each object at that moment; objects created
        later are invisible, objects deleted later reappear. Requires
        MVCC; tokens older than the retention window raise
        :class:`~repro.errors.SnapshotTooOldError`."""
        return AsOfHandle(self, int(token))

    def _iter_batches_one(self, cluster_name: str,
                          as_of=None) -> Iterator[List[OdeObject]]:
        db = self.db
        if not db.store.has_cluster(cluster_name):
            return
        if db._txn is not None and db._dirty:
            db._flush(db._txn.txn_id)
        vis = db._scan_visibility(cluster_name, as_of)
        if as_of is None:
            # Under MVCC this only notes the cluster in the transaction's
            # read set (no lock); as-of reads are not the transaction's
            # own reads and must not create write-write conflicts.
            db._lock_cluster_scan(cluster_name)
        # Page-at-a-time batches: each batch carries the state records
        # that share the page with their version heads, so most objects
        # materialize with zero extra storage round-trips. Under MVCC the
        # per-record history check replaces the cluster S lock.
        if vis is None:
            for batch in db.store.scan_batches(cluster_name):
                objs = self._batch_objs(cluster_name, batch)
                if objs:
                    yield objs
            return
        hget, needs, seen = vis.hget, vis.needs, vis.seen
        batch_clean = vis.batch_clean
        for batch in db.store.scan_batches(cluster_name):
            heads = []
            states = {}
            for _rid, record in batch:
                record_key = record["__key"]
                if record_key[1] == 0:
                    heads.append(record)
                else:
                    states[(record_key[0], record_key[1])] = record
            # Checked after the batch is decoded (see batch_clean): a
            # clean cluster skips the two per-head history probes.
            checked = not batch_clean()
            objs = []
            for record in heads:
                serial = record["__key"][0]
                if checked:
                    hist = hget(serial)
                    if hist is not None and needs(hist):
                        obj = vis.materialize(serial)
                        if obj is not None:
                            objs.append(obj)
                        continue
                if serial in seen:
                    continue  # record relocated; already yielded once
                seen.add(serial)
                obj = db._materialize_from_scan(
                    cluster_name, serial, record, states)
                if obj is not None:
                    objs.append(obj)
            if objs:
                yield objs
        extra = vis.tail()
        if extra:
            yield extra

    def _batch_objs(self, cluster_name: str, batch) -> List[OdeObject]:
        """One scan batch to live objects (the pre-MVCC fast path)."""
        db = self.db
        heads = []
        states = {}
        for _rid, record in batch:
            record_key = record["__key"]
            if record_key[1] == 0:
                heads.append(record)
            else:
                states[(record_key[0], record_key[1])] = record
        objs = []
        for record in heads:
            obj = db._materialize_from_scan(
                cluster_name, record["__key"][0], record, states)
            if obj is not None:
                objs.append(obj)
        return objs

    def hierarchy(self) -> List[str]:
        """This cluster plus all transitively derived cluster names.

        Derivation is read from the catalog (persisted parent links), so
        extents created by other programs are included even if their
        classes are not imported here.
        """
        names = [self.name]
        seen = {self.name}
        i = 0
        while i < len(names):
            current = names[i]
            i += 1
            if self.db.store.has_cluster(current):
                for child in self.db.store.catalog.children_of(current):
                    if child.name not in seen:
                        seen.add(child.name)
                        names.append(child.name)
        return names

    # -- conveniences ------------------------------------------------------------

    def count(self, deep: bool = False, as_of=None) -> int:
        """Number of objects in the extent (heads only, versions uncounted).

        Served from the incrementally-maintained cluster statistics when
        they are exact (tracked since the cluster was empty, or rebuilt by
        ``db.analyze()``) and no concurrent writer has touched the cluster
        relative to this reader's snapshot; otherwise counted by scanning
        through the visibility overlay."""
        db = self.db
        total = 0
        names = self.hierarchy() if deep else [self.name]
        for name in names:
            if not db.store.has_cluster(name):
                continue
            vis = db._scan_visibility(name, as_of)
            if vis is not None and not db._mvcc.cluster_dirty(
                    name, vis.snapshot):
                # No in-flight writer and no commit newer than the
                # snapshot: store content is exactly the snapshot.
                vis = None
            if vis is None:
                stats = db.cluster_stats.get(name)
                if stats is not None and stats.exact:
                    total += stats.count
                    continue
                for batch in db.store.scan_batches(name):
                    for _rid, record in batch:
                        if record["__key"][1] == 0:
                            total += 1
                continue
            total += self._count_visible(name, vis)
        return total

    def _count_visible(self, name: str, vis) -> int:
        """Head count through the MVCC overlay (no materialization)."""
        db = self.db
        mvcc = db._mvcc
        seen = vis.seen
        n = 0
        for batch in db.store.scan_batches(name):
            for _rid, record in batch:
                serial, version = record["__key"]
                if version != 0 or serial in seen:
                    continue
                seen.add(serial)
                hist = vis.hget(serial)
                if hist is not None and vis.needs(hist):
                    if mvcc.visible(hist, vis.snapshot, vis.txn_id) is None:
                        continue  # created after the snapshot
                n += 1
        for serial, hist in list(vis.hists.items()):
            if serial in seen:
                continue
            img = mvcc.visible(hist, vis.snapshot, vis.txn_id)
            if img is None or img is _MVCC_STORE:
                continue
            if not db.store.exists(name, (serial, 0)):
                n += 1  # deleted after the snapshot: still visible
        return n

    def oids(self, deep: bool = False, as_of=None) -> Iterator[Oid]:
        """Object ids in the extent, without materialising the objects."""
        db = self.db
        names = self.hierarchy() if deep else [self.name]
        for name in names:
            if not db.store.has_cluster(name):
                continue
            vis = db._scan_visibility(name, as_of)
            if vis is None:
                for batch in db.store.scan_batches(name):
                    for _rid, record in batch:
                        serial, version = record["__key"]
                        if version == 0:
                            yield Oid(name, serial)
                continue
            mvcc = db._mvcc
            seen = vis.seen
            for batch in db.store.scan_batches(name):
                for _rid, record in batch:
                    serial, version = record["__key"]
                    if version != 0 or serial in seen:
                        continue
                    seen.add(serial)
                    hist = vis.hget(serial)
                    if hist is not None and vis.needs(hist):
                        if mvcc.visible(hist, vis.snapshot,
                                        vis.txn_id) is None:
                            continue
                    yield Oid(name, serial)
            for serial, hist in list(vis.hists.items()):
                if serial in seen:
                    continue
                img = mvcc.visible(hist, vis.snapshot, vis.txn_id)
                if img is None or img is _MVCC_STORE:
                    continue
                if not db.store.exists(name, (serial, 0)):
                    yield Oid(name, serial)

    def __repr__(self) -> str:
        return "ClusterHandle(%s)" % self.name


class DeepView:
    """Re-iterable view over a cluster hierarchy (the paper's ``name*``)."""

    def __init__(self, handle: ClusterHandle):
        self.handle = handle

    def __iter__(self) -> Iterator[OdeObject]:
        for name in self.handle.hierarchy():
            for obj in self.handle._iter_one(name):
                yield obj

    def iter_batches(self) -> Iterator[List[OdeObject]]:
        """Page-at-a-time batches across the whole hierarchy."""
        for name in self.handle.hierarchy():
            yield from self.handle._iter_batches_one(name)

    def as_of(self, token: int) -> "AsOfHandle":
        """Time-travel view over the whole hierarchy as of *token*."""
        return AsOfHandle(self.handle, int(token), deep=True)

    def count(self) -> int:
        return self.handle.count(deep=True)

    def __repr__(self) -> str:
        return "DeepView(%s*)" % self.handle.name


class AsOfHandle:
    """Time-travel view of an extent at a snapshot token (re-iterable).

    Produced by :meth:`ClusterHandle.as_of` / :meth:`DeepView.as_of`; the
    token comes from :meth:`Database.snapshot_token`. Iteration yields
    private read-only materializations of the committed state as of the
    token — writing through them raises
    :class:`~repro.errors.SnapshotConflictError`. Not a
    :class:`ClusterHandle`, so the query optimizer always full-scans it
    (index contents describe the present, not the past).
    """

    def __init__(self, handle: ClusterHandle, token: int,
                 deep: bool = False):
        self.handle = handle
        self.db = handle.db
        self.cls = handle.cls
        self.name = handle.name
        self.token = token
        self._deep = deep

    def _names(self) -> List[str]:
        return self.handle.hierarchy() if self._deep else [self.name]

    def __iter__(self) -> Iterator[OdeObject]:
        for batch in self.iter_batches():
            yield from batch

    def iter_batches(self) -> Iterator[List[OdeObject]]:
        for name in self._names():
            yield from self.handle._iter_batches_one(name,
                                                     as_of=self.token)

    def deep(self) -> "AsOfHandle":
        return AsOfHandle(self.handle, self.token, deep=True)

    def count(self) -> int:
        return self.handle.count(deep=self._deep, as_of=self.token)

    def oids(self) -> Iterator[Oid]:
        return self.handle.oids(deep=self._deep, as_of=self.token)

    def __repr__(self) -> str:
        star = "*" if self._deep else ""
        return "AsOfHandle(%s%s @ %d)" % (self.name, star, self.token)
