"""Cluster handles — iterating type extents (sections 2.5, 3.1.1).

All persistent objects of a type form its *cluster*; clusters mirror the
inheritance hierarchy. ``db.cluster(Person)`` returns a handle over the
``Person`` extent:

* iterating the handle visits the objects whose *exact* class is Person;
* ``db.cluster(Person).deep()`` — the paper's ``person*`` — visits the
  whole hierarchy: Person objects plus every object of a class derived
  from Person, which enables the income-averaging program of 3.1.1
  (``forall p in person*``) with ``isinstance`` playing the paper's
  ``p is persistent student *`` type test.

Iteration visits objects inserted into the cluster during the iteration
(the section 3.2 fixpoint property); for deep iteration this holds within
each member cluster.
"""

from __future__ import annotations

from typing import Iterator, List, Type

from .objects import OdeObject, class_registry
from .oid import Oid


class ClusterHandle:
    """Live view over the extent of one Ode class."""

    def __init__(self, db, cls: Type[OdeObject]):
        self.db = db
        self.cls = cls
        self.name = cls.__name__

    @property
    def exists(self) -> bool:
        return self.db.store.has_cluster(self.name)

    # -- iteration ------------------------------------------------------------

    def __iter__(self) -> Iterator[OdeObject]:
        """Objects of exactly this cluster (current versions), as live
        objects. Pending in-memory changes are flushed first when a
        transaction is open, so the iteration sees them."""
        return self._iter_one(self.name)

    def deep(self) -> "DeepView":
        """The paper's ``cluster*``: this extent and all derived extents.

        Returns a re-iterable view (so it can feed joins), not a one-shot
        generator.
        """
        return DeepView(self)

    def _iter_one(self, cluster_name: str) -> Iterator[OdeObject]:
        db = self.db
        if not db.store.has_cluster(cluster_name):
            return
        if db._txn is not None and db._dirty:
            db._flush(db._txn.txn_id)
        db._lock_cluster_scan(cluster_name)
        for _rid, record in db.store.scan(cluster_name):
            serial, version = record["__key"]
            if version != 0:
                continue  # version-state record; heads drive iteration
            obj = db.deref(Oid(cluster_name, serial), _missing_ok=True)
            if obj is not None:
                yield obj

    def hierarchy(self) -> List[str]:
        """This cluster plus all transitively derived cluster names.

        Derivation is read from the catalog (persisted parent links), so
        extents created by other programs are included even if their
        classes are not imported here.
        """
        names = [self.name]
        seen = {self.name}
        i = 0
        while i < len(names):
            current = names[i]
            i += 1
            if self.db.store.has_cluster(current):
                for child in self.db.store.catalog.children_of(current):
                    if child.name not in seen:
                        seen.add(child.name)
                        names.append(child.name)
        return names

    # -- conveniences ------------------------------------------------------------

    def count(self, deep: bool = False) -> int:
        """Number of objects in the extent (heads only, versions uncounted).

        Served from the incrementally-maintained cluster statistics when
        they are exact (tracked since the cluster was empty, or rebuilt by
        ``db.analyze()``); otherwise counted by scanning."""
        total = 0
        names = self.hierarchy() if deep else [self.name]
        for name in names:
            if not self.db.store.has_cluster(name):
                continue
            stats = self.db.cluster_stats.get(name)
            if stats is not None and stats.exact:
                total += stats.count
                continue
            for _rid, record in self.db.store.scan(name):
                if record["__key"][1] == 0:
                    total += 1
        return total

    def oids(self, deep: bool = False) -> Iterator[Oid]:
        """Object ids in the extent, without materialising the objects."""
        names = self.hierarchy() if deep else [self.name]
        for name in names:
            if not self.db.store.has_cluster(name):
                continue
            for _rid, record in self.db.store.scan(name):
                serial, version = record["__key"]
                if version == 0:
                    yield Oid(name, serial)

    def __repr__(self) -> str:
        return "ClusterHandle(%s)" % self.name


class DeepView:
    """Re-iterable view over a cluster hierarchy (the paper's ``name*``)."""

    def __init__(self, handle: ClusterHandle):
        self.handle = handle

    def __iter__(self) -> Iterator[OdeObject]:
        for name in self.handle.hierarchy():
            for obj in self.handle._iter_one(name):
                yield obj

    def count(self) -> int:
        return self.handle.count(deep=True)

    def __repr__(self) -> str:
        return "DeepView(%s*)" % self.handle.name
