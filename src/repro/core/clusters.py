"""Cluster handles — iterating type extents (sections 2.5, 3.1.1).

All persistent objects of a type form its *cluster*; clusters mirror the
inheritance hierarchy. ``db.cluster(Person)`` returns a handle over the
``Person`` extent:

* iterating the handle visits the objects whose *exact* class is Person;
* ``db.cluster(Person).deep()`` — the paper's ``person*`` — visits the
  whole hierarchy: Person objects plus every object of a class derived
  from Person, which enables the income-averaging program of 3.1.1
  (``forall p in person*``) with ``isinstance`` playing the paper's
  ``p is persistent student *`` type test.

Iteration visits objects inserted into the cluster during the iteration
(the section 3.2 fixpoint property); for deep iteration this holds within
each member cluster.
"""

from __future__ import annotations

from typing import Iterator, List, Type

from .objects import OdeObject, class_registry
from .oid import Oid


class ClusterHandle:
    """Live view over the extent of one Ode class."""

    def __init__(self, db, cls: Type[OdeObject]):
        self.db = db
        self.cls = cls
        self.name = cls.__name__

    @property
    def exists(self) -> bool:
        return self.db.store.has_cluster(self.name)

    # -- iteration ------------------------------------------------------------

    def __iter__(self) -> Iterator[OdeObject]:
        """Objects of exactly this cluster (current versions), as live
        objects. Pending in-memory changes are flushed first when a
        transaction is open, so the iteration sees them."""
        return self._iter_one(self.name)

    def deep(self) -> "DeepView":
        """The paper's ``cluster*``: this extent and all derived extents.

        Returns a re-iterable view (so it can feed joins), not a one-shot
        generator.
        """
        return DeepView(self)

    def _iter_one(self, cluster_name: str) -> Iterator[OdeObject]:
        for batch in self._iter_batches_one(cluster_name):
            yield from batch

    def iter_batches(self) -> Iterator[List[OdeObject]]:
        """Page-at-a-time batches of live objects (the scan fast path).

        Each yielded list holds the objects whose version heads share one
        heap page. The query layer's full-scan plan consumes these so the
        compiled residual filter runs across a batch at a time.
        """
        return self._iter_batches_one(self.name)

    def _iter_batches_one(self,
                          cluster_name: str) -> Iterator[List[OdeObject]]:
        db = self.db
        if not db.store.has_cluster(cluster_name):
            return
        if db._txn is not None and db._dirty:
            db._flush(db._txn.txn_id)
        db._lock_cluster_scan(cluster_name)
        # Page-at-a-time batches: one cluster S lock covers the whole
        # scan, and each batch carries the state records that share the
        # page with their version heads, so most objects materialize with
        # zero extra storage round-trips.
        for batch in db.store.scan_batches(cluster_name):
            heads = []
            states = {}
            for _rid, record in batch:
                record_key = record["__key"]
                if record_key[1] == 0:
                    heads.append(record)
                else:
                    states[(record_key[0], record_key[1])] = record
            objs = []
            for record in heads:
                obj = db._materialize_from_scan(
                    cluster_name, record["__key"][0], record, states)
                if obj is not None:
                    objs.append(obj)
            if objs:
                yield objs

    def hierarchy(self) -> List[str]:
        """This cluster plus all transitively derived cluster names.

        Derivation is read from the catalog (persisted parent links), so
        extents created by other programs are included even if their
        classes are not imported here.
        """
        names = [self.name]
        seen = {self.name}
        i = 0
        while i < len(names):
            current = names[i]
            i += 1
            if self.db.store.has_cluster(current):
                for child in self.db.store.catalog.children_of(current):
                    if child.name not in seen:
                        seen.add(child.name)
                        names.append(child.name)
        return names

    # -- conveniences ------------------------------------------------------------

    def count(self, deep: bool = False) -> int:
        """Number of objects in the extent (heads only, versions uncounted).

        Served from the incrementally-maintained cluster statistics when
        they are exact (tracked since the cluster was empty, or rebuilt by
        ``db.analyze()``); otherwise counted by scanning."""
        total = 0
        names = self.hierarchy() if deep else [self.name]
        for name in names:
            if not self.db.store.has_cluster(name):
                continue
            stats = self.db.cluster_stats.get(name)
            if stats is not None and stats.exact:
                total += stats.count
                continue
            for batch in self.db.store.scan_batches(name):
                for _rid, record in batch:
                    if record["__key"][1] == 0:
                        total += 1
        return total

    def oids(self, deep: bool = False) -> Iterator[Oid]:
        """Object ids in the extent, without materialising the objects."""
        names = self.hierarchy() if deep else [self.name]
        for name in names:
            if not self.db.store.has_cluster(name):
                continue
            for batch in self.db.store.scan_batches(name):
                for _rid, record in batch:
                    serial, version = record["__key"]
                    if version == 0:
                        yield Oid(name, serial)

    def __repr__(self) -> str:
        return "ClusterHandle(%s)" % self.name


class DeepView:
    """Re-iterable view over a cluster hierarchy (the paper's ``name*``)."""

    def __init__(self, handle: ClusterHandle):
        self.handle = handle

    def __iter__(self) -> Iterator[OdeObject]:
        for name in self.handle.hierarchy():
            for obj in self.handle._iter_one(name):
                yield obj

    def iter_batches(self) -> Iterator[List[OdeObject]]:
        """Page-at-a-time batches across the whole hierarchy."""
        for name in self.handle.hierarchy():
            yield from self.handle._iter_batches_one(name)

    def count(self) -> int:
        return self.handle.count(deep=True)

    def __repr__(self) -> str:
        return "DeepView(%s*)" % self.handle.name
