"""In-memory MVCC: snapshot visibility over the version-chain store.

The storage layout already keeps every object as a version head plus one
record per version (the paper's section 4 machinery) — what it lacks for
multi-version *concurrency* is knowing which record contents were
committed when. This module supplies that, without any on-disk format
change: writers register a **pre-image** of each object the first time a
transaction touches it (before the first store mutation), commit stamps
those pre-images with the transaction's commit LSN, and readers resolve
``(cluster, serial)`` to the newest content committed at or before their
snapshot LSN.

The protocol that makes record-level reads airtight without read locks:

* a writer registers its pre-image (under the object's X lock) **before**
  its first store mutation of that object;
* a reader checks the history **after** decoding record bytes (or before
  trusting a shared cached object).

If the reader decoded uncommitted bytes, the registration necessarily
preceded the decode, so the history check catches it and the reader is
served the pre-image instead. Conversely "no history entry" proves the
bytes it read were committed.

Retention is bounded: committed pre-images are kept only while some
active snapshot (an open transaction) may need them, plus a trailing
window of :data:`RETENTION_LSNS` log positions so recently-issued
time-travel tokens (``db.snapshot_token()`` / ``forall ... as of``)
remain resolvable. Asking for a snapshot older than what is retained
raises :class:`~repro.errors.SnapshotTooOldError` — an error, never a
wrong answer.

Everything here is process-local and rebuilt empty on open: crash
recovery restores the committed store state, which is exactly the state
a fresh history (no entries anywhere) describes.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import SnapshotTooOldError

#: Resolution sentinel: "the store's current content is what this reader
#: should see" (distinct from ``None``, which means "no object visible").
STORE = object()

class _LazyImage:
    """Placeholder pre-image: the writer holds the object's X lock but
    has not mutated the store yet, so the committed pre-image is still
    readable there. Used by the deferred-write path (bare field
    assignments flushed at commit): registration skips the image load,
    and whoever needs the image first pays for it — the flush via
    :meth:`MVCCManager.fill_lazy` (for free, from the old state it loads
    anyway) or a concurrent reader via the stored *loader*, whichever
    comes first. Never escapes this module.
    """

    __slots__ = ("loader",)

    def __init__(self, loader: Callable[[], "Image"]):
        self.loader = loader

#: An object image: ``(head_record, {version: state_dict})`` or ``None``
#: for "object does not exist". Images are immutable by convention.
Image = Optional[Tuple[Dict, Dict[int, Dict]]]

#: Committed pre-images are retained this many LSN units past the newest
#: commit even with no snapshot pinning them, so time-travel tokens keep
#: working across a window of recent activity. (LSNs advance once per
#: log record, so this is a generous multiple of any single commit.)
RETENTION_LSNS = 100_000

#: Commits between full retention sweeps (a sweep is O(live histories)).
PRUNE_EVERY = 64


class ObjectHistory:
    """Version-visibility record for one ``(cluster, serial)``.

    ``committed`` holds ``(clsn, image)`` pairs in ascending commit-LSN
    order: *image* was the committed content **before** the commit at
    *clsn*, i.e. what a snapshot older than *clsn* sees. ``pending_*``
    hold the in-flight writer (at most one — the object X lock serializes
    writers) and its pre-image. ``pruned_below`` is the largest commit
    LSN whose pre-image has been discarded: snapshots older than it can
    no longer be answered for this object.
    """

    __slots__ = ("pending_txn", "pending_img", "committed", "pruned_below")

    def __init__(self):
        self.pending_txn: Optional[int] = None
        self.pending_img: Image = None
        self.committed: List[Tuple[int, Image]] = []
        self.pruned_below = 0


class MVCCManager:
    """Snapshot registry + per-object history for one database."""

    def __init__(self, start_lsn: int = 0):
        self._lock = threading.Lock()
        #: cluster -> {serial -> ObjectHistory}. Cluster dicts are created
        #: once and never replaced, so a scan can hold a live reference
        #: and observe registrations that happen mid-scan.
        self._by_cluster: Dict[str, Dict[int, ObjectHistory]] = {}
        #: txn id -> keys it has registered pre-images for.
        self._txn_keys: Dict[int, Set[Tuple[str, int]]] = {}
        #: txn id -> snapshot LSN (the retention floor honours these).
        self._snapshots: Dict[int, int] = {}
        #: Per-cluster summaries for the O(1) "is an index plan safe"
        #: check: in-flight writer count and newest committed-write LSN.
        self._cluster_pending: Dict[str, int] = {}
        self._cluster_max_clsn: Dict[str, int] = {}
        #: Snapshot high-water: assigned to new transactions. Advanced
        #: only *after* a commit's histories are stamped, so a reader
        #: whose snapshot covers a commit always resolves its content.
        self.last_commit_lsn = int(start_lsn)
        #: Largest commit LSN whose pre-image was dropped anywhere; a
        #: time-travel snapshot older than this is unanswerable.
        self.dropped_horizon = 0
        self._commit_count = 0
        self.conflicts = 0     # bumped by the database on SnapshotConflict
        self.resolutions = 0   # reads served from a history image

    # -- fast lock-free lookups (hot paths) --------------------------------

    def lookup(self, cluster: str, serial: int) -> Optional[ObjectHistory]:
        hists = self._by_cluster.get(cluster)
        if hists is None:
            return None
        return hists.get(serial)

    def histories(self, cluster: str) -> Dict[int, ObjectHistory]:
        """The live per-cluster history dict (created on demand).

        Scans hold this reference for their whole run; writers insert
        into the same dict, so a mid-scan registration is visible to the
        per-record check.
        """
        hists = self._by_cluster.get(cluster)
        if hists is None:
            with self._lock:
                hists = self._by_cluster.setdefault(cluster, {})
        return hists

    @staticmethod
    def needs_resolve(hist: ObjectHistory, snapshot: Optional[int],
                      txn_id: int) -> bool:
        """Cheap, lock-free: must this reader go through :meth:`visible`?

        False means the store's current content (and the shared object
        cache) is exactly what the reader should see.
        """
        pending = hist.pending_txn
        if pending is not None:
            return pending != txn_id
        committed = hist.committed
        if not committed:
            return bool(snapshot is not None
                        and snapshot < hist.pruned_below)
        if snapshot is None:
            # Read-committed (autocommit): newest committed content is
            # what the store holds once no writer is in flight.
            return False
        return committed[-1][0] > snapshot or snapshot < hist.pruned_below

    # -- resolution --------------------------------------------------------

    def visible(self, hist: ObjectHistory, snapshot: Optional[int],
                txn_id: int):
        """What this reader sees for *hist*'s object.

        Returns :data:`STORE` (read the current store content), an image
        tuple, or ``None`` (no object visible at this snapshot). Raises
        :class:`SnapshotTooOldError` when the needed pre-image has been
        pruned (possible only for time-travel snapshots — the retention
        floor protects live transactions).
        """
        with self._lock:
            pending = hist.pending_txn
            if pending is not None and pending == txn_id:
                return STORE
            if snapshot is not None:
                if snapshot < hist.pruned_below:
                    raise SnapshotTooOldError(
                        "snapshot %d predates retained history (pruned "
                        "below %d)" % (snapshot, hist.pruned_below))
                for clsn, img in hist.committed:
                    if clsn > snapshot:
                        self.resolutions += 1
                        return img
            if pending is not None:
                self.resolutions += 1
                return self._resolve_lazy(hist)
            return STORE

    def committed_after(self, cluster: str, serial: int,
                        snapshot: int) -> bool:
        """Has another transaction committed a write to this object since
        *snapshot*? (The first-updater-wins write-conflict test; called
        under the object's X lock, so no in-flight writer can exist.)"""
        hist = self.lookup(cluster, serial)
        if hist is None:
            return False
        committed = hist.committed
        return bool(committed) and committed[-1][0] > snapshot

    def cluster_dirty(self, cluster: str, snapshot: Optional[int]) -> bool:
        """True when an index plan over *cluster* could be inconsistent
        with this snapshot (in-flight writers, or commits newer than the
        snapshot whose index entries reflect the present)."""
        if self._cluster_pending.get(cluster, 0):
            return True
        if snapshot is None:
            return False
        return self._cluster_max_clsn.get(cluster, 0) > snapshot

    def check_snapshot(self, snapshot: int) -> None:
        """Validate a time-travel snapshot against the global horizon."""
        if snapshot < self.dropped_horizon:
            raise SnapshotTooOldError(
                "as-of snapshot %d predates retained history (horizon %d); "
                "time travel reaches back only over recent activity"
                % (snapshot, self.dropped_horizon))

    # -- writer protocol ---------------------------------------------------

    def register(self, txn_id: int, cluster: str, serial: int,
                 loader: Optional[Callable[[], Image]],
                 lazy: bool = False) -> None:
        """Capture the pre-image of ``(cluster, serial)`` for *txn_id*.

        Must be called under the object's X lock and **before** the
        transaction's first store mutation of the object. Idempotent per
        (txn, object). *loader* materializes the current committed image
        (it is invoked at most once, inside the registry lock, so the
        image and the registration are atomic with respect to readers).

        With ``lazy=True`` (the deferred field-write path, where the
        store mutation only happens at flush) the image load is deferred:
        the registration just records the writer and keeps *loader* for
        whoever needs the image first — normally the flush, which fills
        it for free from the old state it loads anyway; a concurrent
        reader materializes it on demand. An eager ``register`` call on
        a lazily registered object materializes it immediately (a delete
        or new-version mutates the store at once).
        """
        with self._lock:
            hists = self._by_cluster.setdefault(cluster, {})
            hist = hists.get(serial)
            if hist is None:
                hist = hists[serial] = ObjectHistory()
            if hist.pending_txn == txn_id:
                if not lazy and type(hist.pending_img) is _LazyImage:
                    hist.pending_img = loader()
                return
            hist.pending_txn = txn_id
            hist.pending_img = _LazyImage(loader) if lazy else loader()
            self._txn_keys.setdefault(txn_id, set()).add((cluster, serial))
            self._cluster_pending[cluster] = \
                self._cluster_pending.get(cluster, 0) + 1

    def fill_lazy(self, txn_id: int, cluster: str, serial: int,
                  loader: Callable[[], Image]) -> None:
        """Materialize a lazily registered pre-image.

        Called by the flush just before its store write, with the old
        state the flush loaded anyway — so the common bare-assignment
        path costs no extra store reads for MVCC. No-op unless *txn_id*'s
        registration is still lazy (a concurrent reader may have
        materialized it already).
        """
        with self._lock:
            hist = self.lookup(cluster, serial)
            if (hist is None or hist.pending_txn != txn_id
                    or type(hist.pending_img) is not _LazyImage):
                return
            hist.pending_img = loader()

    def _resolve_lazy(self, hist: ObjectHistory) -> Image:
        """The pending image, materializing a lazy one. Caller holds the
        registry lock — which orders this store read strictly before the
        owning flush's store write (the flush fills the image under this
        same lock *before* writing), so the loader always reads the
        committed pre-state.
        """
        img = hist.pending_img
        if type(img) is _LazyImage:
            img = hist.pending_img = img.loader()
        return img

    def upgrade_image(self, txn_id: int, cluster: str, serial: int,
                      fill: Callable[[Tuple[Dict, Dict[int, Dict]]],
                                     None]) -> None:
        """Extend *txn_id*'s registered partial pre-image in place.

        Called (before the mutation) when a transaction that registered
        a partial image goes on to delete non-current version records:
        *fill* adds the missing chain states so snapshot readers can
        still resolve the pinned versions afterwards. No-op when nothing
        is registered (the fresh registration loads the full image).
        """
        with self._lock:
            hist = self.lookup(cluster, serial)
            if (hist is None or hist.pending_txn != txn_id
                    or hist.pending_img is None
                    or type(hist.pending_img) is _LazyImage):
                return
            fill(hist.pending_img)

    def version_state(self, hist: ObjectHistory, snapshot: Optional[int],
                      txn_id: int, version: int) -> Optional[Dict]:
        """Pinned-version fallback for partial images.

        Non-current version states are immutable short of deletion, and
        every deleting transaction registers (or upgrades to) a full
        pre-image first — so the state of *version* at *snapshot* is the
        one in the first retained image that carries it, and ``None``
        here means "the store record, if present, is still that state".
        """
        with self._lock:
            if snapshot is not None:
                for clsn, img in hist.committed:
                    if clsn > snapshot and img is not None:
                        state = img[1].get(version)
                        if state is not None:
                            return state
            pending = hist.pending_txn
            if pending is not None and pending != txn_id:
                img = self._resolve_lazy(hist)
                if img is not None:
                    state = img[1].get(version)
                    if state is not None:
                        return state
            return None

    def commit(self, txn_id: int, clsn: int) -> None:
        """Stamp *txn_id*'s pre-images with its commit LSN.

        Runs after the WAL commit record exists and **before** the
        transaction's locks are released and before the snapshot
        high-water advances — so no new snapshot can cover the commit
        until every touched object resolves it.
        """
        with self._lock:
            for cluster, serial in self._txn_keys.pop(txn_id, ()):
                hists = self._by_cluster.get(cluster)
                hist = hists.get(serial) if hists else None
                if hist is None or hist.pending_txn != txn_id:
                    continue
                img = hist.pending_img
                hist.pending_txn = None
                hist.pending_img = None
                self._cluster_pending[cluster] -= 1
                if type(img) is _LazyImage:
                    # Registered (locked) but never flushed: the store
                    # was not written, so there is no commit to record.
                    if not hist.committed and not hist.pruned_below:
                        del hists[serial]
                    continue
                hist.committed.append((clsn, img))
                if clsn > self._cluster_max_clsn.get(cluster, 0):
                    self._cluster_max_clsn[cluster] = clsn
            self._snapshots.pop(txn_id, None)
            if clsn > self.last_commit_lsn:
                self.last_commit_lsn = clsn
            self._commit_count += 1
            if self._commit_count % PRUNE_EVERY == 0:
                self._prune()

    def abort(self, txn_id: int) -> None:
        """Discard *txn_id*'s pre-images (the store rolls back to them)."""
        with self._lock:
            for cluster, serial in self._txn_keys.pop(txn_id, ()):
                hists = self._by_cluster.get(cluster)
                hist = hists.get(serial) if hists else None
                if hist is None or hist.pending_txn != txn_id:
                    continue
                hist.pending_txn = None
                hist.pending_img = None
                self._cluster_pending[cluster] -= 1
                if not hist.committed and not hist.pruned_below:
                    del hists[serial]
            self._snapshots.pop(txn_id, None)

    # -- snapshot registry -------------------------------------------------

    def begin_snapshot(self, txn_id: int) -> int:
        """Assign (and pin, for retention) a snapshot to a transaction."""
        with self._lock:
            snapshot = self.last_commit_lsn
            self._snapshots[txn_id] = snapshot
            return snapshot

    def release_snapshot(self, txn_id: int) -> None:
        with self._lock:
            self._snapshots.pop(txn_id, None)

    # -- retention ---------------------------------------------------------

    def _prune(self) -> None:
        """Drop pre-images no live snapshot (nor the trailing time-travel
        window) can need. Caller holds the lock."""
        floor = self.last_commit_lsn - RETENTION_LSNS
        for snapshot in self._snapshots.values():
            if snapshot < floor:
                floor = snapshot
        if floor <= 0:
            return
        for hists in self._by_cluster.values():
            dead = []
            for serial, hist in hists.items():
                committed = hist.committed
                k = 0
                while k < len(committed) and committed[k][0] <= floor:
                    k += 1
                if k:
                    hist.pruned_below = committed[k - 1][0]
                    del committed[:k]
                if not committed and hist.pending_txn is None:
                    if hist.pruned_below > self.dropped_horizon:
                        self.dropped_horizon = hist.pruned_below
                    dead.append(serial)
            for serial in dead:
                del hists[serial]

    # -- introspection -----------------------------------------------------

    def history_count(self) -> int:
        return sum(len(h) for h in self._by_cluster.values())

    def active_snapshots(self) -> int:
        return len(self._snapshots)

    def stats(self) -> Dict[str, int]:
        return {
            "histories": self.history_count(),
            "active_snapshots": len(self._snapshots),
            "resolutions": self.resolutions,
            "conflicts": self.conflicts,
            "last_commit_lsn": self.last_commit_lsn,
            "dropped_horizon": self.dropped_horizon,
        }
