"""The Ode data model: persistent objects, clusters, sets, versions,
constraints, triggers and transactions — the paper's primary contribution.
"""

from .clusters import ClusterHandle
from .database import Database, Transaction
from .fields import (AnyField, BoolField, BytesField, CharField, DictField,
                     Field, FloatField, IntField, ListField, RefField,
                     SetField, StringField)
from .objects import OdeObject, constraint, class_registry
from .oid import Oid, Vref
from .sets import OdeSet
from .triggers import Trigger, TriggerId, TriggerManager
from .versions import newversion, versions, vfirst, vlast, vnext, vprev

__all__ = [
    "ClusterHandle", "Database", "Transaction",
    "AnyField", "BoolField", "BytesField", "CharField", "DictField",
    "Field", "FloatField", "IntField", "ListField", "RefField",
    "SetField", "StringField",
    "OdeObject", "constraint", "class_registry", "Oid", "Vref", "OdeSet",
    "Trigger", "TriggerId", "TriggerManager",
    "newversion", "versions", "vfirst", "vlast", "vnext", "vprev",
]
