"""Triggers — the paper's active-database facility (section 6).

A trigger is declared in a class and *activated* per object, with
arguments; activation returns a trigger id::

    class StockItem(OdeObject):
        qty = IntField(default=0)
        reorder_level = IntField(default=0)

        reorder = Trigger(
            condition=lambda self, n: self.qty <= self.reorder_level,
            action=lambda self, n: place_order(self, n))

    tid = item.reorder(100)      # activate, as in the paper: sip->reorder(100)
    tid.deactivate()             # explicit deactivation

Semantics implemented exactly as the paper specifies:

* **Once-only vs perpetual** (``perpetual=True``): a once-only trigger is
  deactivated when it fires and must be reactivated explicitly; a
  perpetual trigger is reactivated automatically after firing.
* **Evaluation at end of transaction**: trigger conditions are conceptually
  evaluated at the end of each transaction, seeing its final state.
* **Weak coupling**: each firing creates an *independent* transaction
  whose body is the trigger action, executed after (but not necessarily
  immediately after) the triggering transaction commits. If the
  triggering transaction aborts, the trigger actions it generated are
  aborted with it.
* **Timed triggers** (``within=...``): if the condition does not become
  true within the duration (measured on the database's clock, which is
  virtual and advanced with ``db.advance_time``), the timeout action runs
  instead and the activation ends.
* Multiple activations of the same trigger on the same object may be in
  effect simultaneously, each with its own arguments and id.

Activations are persistent: they live in a hidden cluster and survive
database reopens, as an active database requires.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from ..errors import TriggerError
from .oid import Oid, Vref

#: Hidden cluster holding trigger activations.
ACTIVATION_CLUSTER = "__activations__"


def _compile_condition(condition):
    """Allow introspectable query predicates as trigger conditions.

    ``Trigger(condition=A.qty <= 100, ...)`` compiles the predicate's
    row check once at declaration time (``Predicate.compiled()``), so
    end-of-transaction evaluation runs a closure instead of walking the
    predicate tree per activation; activation arguments are ignored by
    the check, like the paper's clause form.
    """
    try:
        from ..query.predicates import Predicate
    except ImportError:  # pragma: no cover — partial installs
        return condition
    if not isinstance(condition, Predicate):
        return condition
    check = condition.compiled()

    def run(obj, *args):
        return bool(check(obj))
    run._ode_predicate = condition
    return run


class Trigger:
    """Class-level trigger declaration (a descriptor).

    *condition* and *action* are callables of ``(self, *args)`` where
    ``self`` is the object the activation is attached to and ``args`` are
    the activation arguments. *within*, for timed triggers, is either a
    number (duration) or a callable ``(self, *args) -> duration``;
    *timeout_action* then runs if the condition never became true in time.
    """

    def __init__(self, condition: Callable, action: Callable,
                 perpetual: bool = False,
                 within: Optional[Any] = None,
                 timeout_action: Optional[Callable] = None):
        if timeout_action is not None and within is None:
            raise TriggerError("timeout_action requires within=")
        condition = _compile_condition(condition)
        self.condition = condition
        self.action = action
        self.perpetual = perpetual
        self.within = within
        self.timeout_action = timeout_action
        self.name = "<unbound>"
        self.owner_name = "<unbound>"

    def __set_name__(self, owner, name: str) -> None:
        self.name = name
        self.owner_name = owner.__name__

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return _BoundTrigger(obj, self)

    def __repr__(self) -> str:
        kind = "perpetual " if self.perpetual else ""
        timed = " within" if self.within is not None else ""
        return "<%strigger %s.%s%s>" % (kind, self.owner_name,
                                        self.name, timed)


class _BoundTrigger:
    """``obj.trigger_name`` — calling it activates the trigger."""

    __slots__ = ("_obj", "_decl")

    def __init__(self, obj, decl: Trigger):
        self._obj = obj
        self._decl = decl

    def __call__(self, *args) -> "TriggerId":
        db = self._obj.database
        if db is None or not self._obj.is_persistent:
            raise TriggerError(
                "triggers can only be activated on persistent objects "
                "(%s.%s on a volatile instance)"
                % (self._decl.owner_name, self._decl.name))
        return db.triggers.activate(self._obj, self._decl, args)

    @property
    def declaration(self) -> Trigger:
        return self._decl


class TriggerId:
    """Handle for one activation; supports explicit deactivation."""

    __slots__ = ("serial", "_manager")

    def __init__(self, serial: int, manager: "TriggerManager"):
        self.serial = serial
        self._manager = manager

    def deactivate(self) -> bool:
        """Deactivate this activation (before it has fired).

        Returns False if it was already inactive. This is the paper's
        ``trigger-id`` deactivation form.
        """
        return self._manager.deactivate(self)

    @property
    def is_active(self) -> bool:
        return self._manager.is_active(self)

    def __eq__(self, other):
        return isinstance(other, TriggerId) and other.serial == self.serial

    def __hash__(self):
        return hash(("TriggerId", self.serial))

    def __repr__(self):
        return "TriggerId(%d)" % self.serial


class _Activation:
    """In-memory mirror of one persistent activation record."""

    __slots__ = ("serial", "oid", "class_name", "trigger_name", "args",
                 "deadline", "active")

    def __init__(self, serial: int, oid: Oid, class_name: str,
                 trigger_name: str, args: tuple,
                 deadline: Optional[float], active: bool):
        self.serial = serial
        self.oid = oid
        self.class_name = class_name
        self.trigger_name = trigger_name
        self.args = args
        self.deadline = deadline
        self.active = active

    def to_state(self) -> Dict[str, Any]:
        return {
            "serial": self.serial,
            "oid": [self.oid.cluster, self.oid.serial],
            "class_name": self.class_name,
            "trigger_name": self.trigger_name,
            "args": list(self.args),
            "deadline": self.deadline,
            "active": self.active,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "_Activation":
        return cls(state["serial"], Oid(*state["oid"]), state["class_name"],
                   state["trigger_name"], tuple(state["args"]),
                   state["deadline"], state["active"])


class FiredAction:
    """A scheduled trigger action, to run as an independent transaction."""

    __slots__ = ("activation_serial", "description", "thunk")

    def __init__(self, activation_serial: int, description: str,
                 thunk: Callable[[], None]):
        self.activation_serial = activation_serial
        self.description = description
        self.thunk = thunk

    def __repr__(self):
        return "FiredAction(%s)" % self.description


class TriggerManager:
    """Owns activations; evaluates conditions at transaction boundaries."""

    def __init__(self, db):
        self._db = db
        self._cache: Optional[Dict[int, _Activation]] = None
        # Guards the activation mirror: concurrent transactions evaluate
        # triggers at commit and may race a lazy rebuild against an
        # abort-driven invalidate.
        self._mutex = threading.RLock()
        # statistics
        self.evaluations = 0
        self.firings = 0
        self.timeouts = 0

    # -- activation bookkeeping ------------------------------------------------

    def _ensure_cluster(self, txn: int) -> None:
        store = self._db.store
        if not store.has_cluster(ACTIVATION_CLUSTER):
            store.create_cluster(txn, ACTIVATION_CLUSTER)

    def _activations(self) -> Dict[int, _Activation]:
        with self._mutex:
            if self._cache is None:
                cache: Dict[int, _Activation] = {}
                store = self._db.store
                if store.has_cluster(ACTIVATION_CLUSTER):
                    for _rid, state in store.scan(ACTIVATION_CLUSTER):
                        act = _Activation.from_state(state)
                        cache[act.serial] = act
                self._cache = cache
            return self._cache

    def invalidate(self) -> None:
        """Drop the in-memory mirror (after an abort)."""
        with self._mutex:
            self._cache = None

    def _save(self, txn: int, act: _Activation) -> None:
        self._db.store.put(txn, ACTIVATION_CLUSTER, (act.serial, 0),
                           act.to_state())

    # -- public operations -------------------------------------------------------

    def activate(self, obj, decl: Trigger, args: tuple) -> TriggerId:
        """Record a new activation of *decl* on *obj* with *args*."""
        db = self._db
        stored_args = tuple(
            a.oid if hasattr(a, "is_persistent") and a.is_persistent else a
            for a in args)
        with db._implicit_txn() as txn:
            self._ensure_cluster(txn)
            serial = db.store.allocate_serial(txn, ACTIVATION_CLUSTER)
            deadline = None
            if decl.within is not None:
                duration = (decl.within(obj, *args) if callable(decl.within)
                            else decl.within)
                deadline = db.now() + float(duration)
            act = _Activation(serial, obj.oid, type(obj).__name__,
                              decl.name, stored_args, deadline, True)
            self._activations()[serial] = act
            self._save(txn, act)
        return TriggerId(serial, self)

    def deactivate(self, tid: TriggerId) -> bool:
        act = self._activations().get(tid.serial)
        if act is None or not act.active:
            return False
        with self._db._implicit_txn() as txn:
            act.active = False
            self._save(txn, act)
        return True

    def is_active(self, tid: TriggerId) -> bool:
        act = self._activations().get(tid.serial)
        return bool(act and act.active)

    def active_count(self) -> int:
        return sum(1 for a in self._activations().values() if a.active)

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, txn: int) -> List[FiredAction]:
        """Evaluate all active conditions against the current state.

        Called by the database at the end of a transaction, *before*
        commit: deactivations of fired once-only triggers join the
        triggering transaction (so an abort restores them), while the
        returned actions are executed as independent transactions only if
        the commit succeeds (weak coupling).
        """
        fired: List[FiredAction] = []
        now = self._db.now()
        for act in list(self._activations().values()):
            if not act.active:
                continue
            decl = self._declaration_of(act)
            if decl is None:
                continue
            self.evaluations += 1
            obj = self._db.deref(act.oid, _missing_ok=True)
            if obj is None:
                # Object was deleted: the activation dies with it.
                act.active = False
                self._save(txn, act)
                continue
            args = self._rehydrate(act.args)
            if decl.condition(obj, *args):
                self.firings += 1
                if not decl.perpetual:
                    act.active = False
                    self._save(txn, act)
                fired.append(self._make_action(act, decl, False))
            elif act.deadline is not None and now >= act.deadline:
                self.timeouts += 1
                act.active = False
                self._save(txn, act)
                if decl.timeout_action is not None:
                    fired.append(self._make_action(act, decl, True))
        return fired

    def _make_action(self, act: _Activation, decl: Trigger,
                     timed_out: bool) -> FiredAction:
        db = self._db
        oid, args = act.oid, act.args
        run = decl.timeout_action if timed_out else decl.action

        def thunk() -> None:
            obj = db.deref(oid, _missing_ok=True)
            if obj is None:
                return
            run(obj, *self._rehydrate(args))

        what = "timeout of " if timed_out else ""
        description = "%s%s.%s on %r" % (what, act.class_name,
                                         act.trigger_name, oid)
        return FiredAction(act.serial, description, thunk)

    def _declaration_of(self, act: _Activation) -> Optional[Trigger]:
        from .objects import class_registry
        cls = class_registry().get(act.class_name)
        if cls is None:
            return None
        return cls._ode_triggers.get(act.trigger_name)

    def _rehydrate(self, args: tuple) -> tuple:
        """Turn stored Oid/Vref arguments back into live objects."""
        return tuple(self._db.deref(a) if isinstance(a, (Oid, Vref)) else a
                     for a in args)
