"""The storage engine substrate: pages, buffering, WAL, heaps, indexes.

The paper's prototype relied on an unpublished AT&T persistent store; this
package is the from-scratch replacement. The only class most users need is
:class:`Store`; the object layer (:mod:`repro.core`) builds the paper's
data model on top of it.
"""

from .btree import BTree
from .buffer import BufferPool
from .catalog import Catalog, ClusterInfo, IndexInfo
from .codec import decode_value, encode_key, encode_value
from .hashindex import HashIndex, stable_hash
from .heap import RID, HeapFile
from .journal import Journal
from .locks import EXCLUSIVE, SHARED, LockManager
from .page import PAGE_SIZE, PageType, SlottedPage
from .pagefile import PageFile
from .recovery import RecoveryReport, recover
from .store import Store
from .wal import LogRecordType, WriteAheadLog

__all__ = [
    "BTree", "BufferPool", "Catalog", "ClusterInfo", "IndexInfo",
    "decode_value", "encode_key", "encode_value", "HashIndex", "stable_hash",
    "RID", "HeapFile", "Journal", "EXCLUSIVE", "SHARED", "LockManager",
    "PAGE_SIZE", "PageType", "SlottedPage", "PageFile", "RecoveryReport",
    "recover", "Store", "LogRecordType", "WriteAheadLog",
]
