"""Store — the storage engine facade used by the object layer.

A :class:`Store` bundles the page file, buffer pool, WAL, journal, lock
manager and catalog behind an API of *clusters* holding *objects*:

* A cluster is a named extent with its own heap file and an
  object-directory hash index mapping object keys to heap RIDs.
* An object is an opaque codec-encodable dict addressed by a caller-chosen
  tuple key (the object layer uses ``(serial, version)``).
* Secondary indexes (B+tree or hash) may be created per cluster; the
  *caller* maintains their entries (the store does not know which fields
  of the payload are indexed).

Opening a store whose WAL is non-empty runs crash recovery first, so a
process killed mid-transaction leaves exactly the committed state.

**Sharding** (ISSUE 8). A store may be created with N > 1 *shards*: the
pages split across N page files (``<path>``, ``<path>.s1`` ...), each
with its own buffer pool and latch, behind the gpid router of
:mod:`repro.storage.sharding`. Every cluster then keeps one heap + object
directory *per shard*, objects route to a shard by their key's serial,
and per-key operations only contend on their shard's latch — threads
working different shards proceed in parallel. The WAL, journal, catalog
and secondary indexes stay shared (single commit protocol, single
recovery pass); catalog and index pages all live in shard 0. A one-shard
store takes none of these paths and its file format is byte-identical to
the pre-sharding layout. The shard count is fixed at creation (persisted
in the bootstrap root table) and read back on reopen.

Lock order (see also ``journal.py`` / ``sharding.py``): lock-manager
locks (blocking, outermost, never requested under a latch) -> the
store's metadata ``latch`` -> catalog lock -> journal latch -> shard
latches in ascending order -> WAL mutex -> leaf locks (decoded-page
cache, scan gate, metrics).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import CatalogError, CorruptPageError, StorageError
from ..obs import EventLog, MetricsRegistry
from ..obs.metrics import _count_value
from .btree import BTree
from .codec import decode_value, encode_value
from .buffer import DEFAULT_POOL_SIZE, BufferPool
from .catalog import Catalog, ClusterInfo, IndexInfo
from .faults import FaultInjector
from .hashindex import HashIndex
from .heap import RID, HeapFile
from .journal import Journal
from .locks import LockManager
from .pagefile import PageFile
from .recovery import RecoveryReport, recover
from .sharding import (MAX_SHARDS, ShardedPool, ShardJournal, ShardView,
                       global_page, local_page, shard_path)
from .wal import WriteAheadLog

#: Shard count at creation when the ``shards=`` parameter is not given.
ENV_SHARDS = "REPRO_SHARDS"
#: Worker threads for the parallel shard scan (default: one per shard,
#: capped at the core count; ``1`` forces the serial path).
ENV_SCAN_WORKERS = "REPRO_SCAN_WORKERS"


class Store:
    """Object store with WAL durability, 2PL locking and optional shards."""

    #: Bootstrap root entry persisting the shard count (0/absent = 1).
    SHARDS_ROOT_KEY = "shards"

    def __init__(self, path: str, pool_size: int = DEFAULT_POOL_SIZE,
                 durability: str = "full", shards: Optional[int] = None):
        """Open (or create) the store rooted at *path*.

        Files: ``<path>`` for shard-0 pages (and all metadata),
        ``<path>.sN`` for each further shard, ``<path>.wal`` for the
        shared log. If the log holds records from a previous crash,
        recovery runs before the store becomes usable; the report is kept
        at :attr:`last_recovery`. *durability* selects the commit fsync
        policy — ``"full"``, ``"group"`` or ``"none"`` (see
        :mod:`repro.storage.wal`). *shards* fixes the shard count when
        the store is first created (the ``REPRO_SHARDS`` environment
        variable applies when the parameter is omitted); an existing
        store always reopens with the count it was created with.
        """
        self.path = path
        # Observability first: one registry + event ring per store, shared
        # with the Database layer, attached before recovery so recovery
        # events (stopped-early scans, fault injections) are captured.
        self.metrics = MetricsRegistry()
        self.events = EventLog()
        #: Shared fault injector (see :mod:`repro.storage.faults`); armed
        #: from the environment so a harness subprocess injects before it
        #: finishes opening, or programmatically via ``db.faults``.
        self.faults = FaultInjector.from_env()
        self.faults.attach_observability(self.events)
        self._pagefile = PageFile(path, faults=self.faults)
        self._n_shards = self._resolve_shards(shards)
        self._pagefiles = [self._pagefile]
        for sid in range(1, self._n_shards):
            self.faults.fire("shard.open.pre", shard=sid)
            self._pagefiles.append(
                PageFile(shard_path(path, sid), faults=self.faults))
            self.faults.fire("shard.open.post", shard=sid)
        if self._n_shards == 1:
            self._pool = BufferPool(self._pagefile, capacity=pool_size)
            self._router: Optional[ShardedPool] = None
        else:
            per_shard = max(pool_size // self._n_shards, 16)
            self._router = ShardedPool(
                [BufferPool(pf, capacity=per_shard)
                 for pf in self._pagefiles])
            self._pool = self._router
        self._wal = WriteAheadLog(path + ".wal", durability=durability,
                                  faults=self.faults)
        self._wal.attach_observability(self.metrics, self.events)
        self.last_recovery: Optional[RecoveryReport] = None
        if self._wal.end_lsn > 0:
            # No corruption handler is attached yet: a torn page found
            # here is *repaired* by redo, not quarantined. Log records
            # carry gpids, so the one recovery pass covers every shard.
            self.last_recovery = recover(self._pool, self._wal)
            if self.last_recovery.repaired_pages:
                self.events.emit("recovery_repair",
                                 pages=sorted(
                                     self.last_recovery.repaired_pages))
        self._journal = Journal(self._pool, self._wal)
        if self._router is None:
            self._shard_journals: List[Any] = [self._journal]
        else:
            self._shard_journals = [
                ShardJournal(self._journal, ShardView(self._router, sid))
                for sid in range(self._n_shards)]
        #: Count of checksum failures seen at runtime (pages quarantined).
        self.corrupt_pages = 0
        if self._router is None:
            self._pool.on_corrupt_page = self._on_corrupt_page
        else:
            for sid, pool in enumerate(self._router.pools):
                pool.on_corrupt_page = (
                    lambda no, exc, s=sid:
                    self._on_corrupt_page(global_page(s, no), exc))
        #: The store's metadata latch: guards the catalog-backed state
        #: (structure caches, serial blocks, cluster DDL) and orders
        #: before every shard latch. Logical isolation is the lock
        #: manager's job; never block on :attr:`locks` while holding it.
        self.latch = threading.RLock()
        self.locks = LockManager()
        self.catalog = Catalog(self._journal, self._pagefile,
                               self._journal.begin)
        #: (cluster, shard) -> structure caches.
        self._heaps: Dict[Tuple[str, int], HeapFile] = {}
        self._directories: Dict[Tuple[str, int], HashIndex] = {}
        self._indexes: Dict[Tuple[str, str], Any] = {}
        #: cluster -> [next unissued serial, end of reserved block)
        self._serial_blocks: Dict[str, list] = {}
        #: gpid -> (page_lsn, slot_count, decoded records) for batched
        #: scans; entries self-invalidate on LSN mismatch (LSNs are
        #: globally monotone, even across WAL truncation, so a stale
        #: entry can never match a rewritten page). Guarded by its own
        #: leaf lock so parallel scan workers share it without touching
        #: the metadata latch.
        self._page_cache: "OrderedDict[int, tuple]" = OrderedDict()
        self._pc_lock = threading.Lock()
        self.page_cache_hits = 0
        self.page_cache_misses = 0
        #: Commit hook: called as ``on_commit(txn, clsn)`` after the WAL
        #: commit record exists but *before* the transaction's locks are
        #: released (clsn is None for degraded trivial commits). The
        #: object layer uses it to stamp MVCC visibility.
        self.on_commit = None
        #: Scan/vacuum gate. MVCC scans walk heap page chains without a
        #: cluster lock, but vacuum frees (and the allocator may recycle)
        #: the old chain's pages at commit; the gate makes vacuum wait
        #: until no other thread is inside a chain walk. Readers are
        #: counted per thread (re-entrant; a scanning thread that itself
        #: vacuums cannot deadlock against its own count).
        self._scan_gate = threading.Condition(threading.Lock())
        self._scan_readers: Dict[int, int] = {}
        #: Maintenance rewrites currently draining/holding the gate.
        self._maint_waiters = 0
        #: Set by :meth:`quiesce` on the close path: in-flight chain
        #: walks have drained and new ones are refused (StorageError)
        #: instead of racing the final checkpoint / file close.
        self._quiesced = False
        #: Scans started per shard (metric ``shard.scans{shard=...}``).
        #: ``itertools.count`` objects, not plain ints: concurrent scans
        #: of the *same* shard bump the same slot from different threads
        #: (the parallel executor's workers hold no lock here), and a
        #: list-element ``+=`` is a read-modify-write that loses updates
        #: under the GIL. ``next()`` is one C call, so it never does.
        self._shard_scans = [itertools.count()
                             for _ in range(self._n_shards)]
        #: Reclustering counters (``recluster.*`` metrics).
        self.recluster_runs = 0
        self.recluster_moved = 0
        #: Access profile feeding the reclustering daemon: (cluster,
        #: serial) -> hit count, recorded by ``get``/``get_with_token``
        #: when :attr:`track_access` is on. Bumps are GIL-atomic dict
        #: ops; racing threads can lose a count, which a usage *profile*
        #: tolerates.
        self.track_access = False
        self._access_counts: Dict[Tuple[str, Any], int] = {}
        raw_workers = os.environ.get(ENV_SCAN_WORKERS, "")
        try:
            workers = int(raw_workers)
        except ValueError:
            workers = 0
        if workers <= 0:
            # Default: one worker per shard, but never more threads than
            # cores — on a single-core host the executor's handoff
            # overhead can only lose, so the scan stays serial there.
            workers = min(self._n_shards, os.cpu_count() or 1)
        self._scan_worker_count = workers
        self._closed = False
        # Components keep their plain-int counters (bumped under their
        # existing locks) and the registry samples them lazily — absorbing
        # the old stats() dicts costs nothing on the hot paths.
        self._register_metrics()
        self.locks.attach_observability(self.metrics, self.events)

    def _resolve_shards(self, shards: Optional[int]) -> int:
        """The store's shard count: persisted on an existing store, else
        chosen at creation (parameter, then ``REPRO_SHARDS``, then 1) and
        persisted *durably before* any shard file exists — a crash at any
        point leaves either a plain 1-shard file or a root that names
        every shard file to (re)create on reopen."""
        persisted = self._pagefile.get_root(self.SHARDS_ROOT_KEY)
        if persisted:
            return persisted
        if self._pagefile.get_root(Catalog.BOOTSTRAP_KEY) != 0:
            return 1  # pre-sharding store: format is frozen at 1 shard
        if shards is None:
            raw = os.environ.get(ENV_SHARDS, "")
            try:
                shards = int(raw) if raw else 1
            except ValueError:
                shards = 1
        if shards <= 1:
            return 1
        if shards > MAX_SHARDS:
            raise StorageError("shard count %d exceeds the maximum %d"
                               % (shards, MAX_SHARDS))
        self.faults.fire("shard.root.pre", shards=shards)
        self._pagefile.set_root(self.SHARDS_ROOT_KEY, shards)
        self._pagefile.sync()
        return shards

    def _register_metrics(self) -> None:
        pool = self._pool
        metrics = self.metrics
        metrics.counter_fn("buffer.hits", lambda: pool.hits)
        metrics.counter_fn("buffer.misses", lambda: pool.misses)
        metrics.counter_fn("buffer.evictions", lambda: pool.evictions)
        metrics.counter_fn("buffer.writebacks", lambda: pool.writebacks)
        metrics.counter_fn("buffer.prefetches", lambda: pool.prefetches)
        metrics.counter_fn("buffer.readahead_pages",
                           lambda: pool.readahead_pages)
        metrics.gauge_fn("buffer.hit_ratio",
                         lambda: (pool.hits / (pool.hits + pool.misses))
                         if (pool.hits + pool.misses) else 0.0)
        if self._router is None:
            metrics.gauge_fn("buffer.cached", lambda: len(pool._frames))
        else:
            metrics.gauge_fn("buffer.cached", lambda: pool.cached_frames)
        metrics.gauge_fn("buffer.capacity", lambda: pool.capacity)
        metrics.counter_fn("page_cache.hits", lambda: self.page_cache_hits)
        metrics.counter_fn("page_cache.misses",
                           lambda: self.page_cache_misses)
        metrics.gauge_fn("page_cache.cached_pages",
                         lambda: len(self._page_cache))
        metrics.gauge_fn("store.pages",
                         lambda: sum(pf.page_count
                                     for pf in self._pagefiles))
        metrics.counter_fn("storage.corrupt_pages",
                           lambda: self.corrupt_pages)
        metrics.counter_fn("buffer.checksum_failures",
                           lambda: pool.checksum_failures)
        metrics.gauge_fn("storage.quarantined_pages",
                         lambda: len(self._pool.quarantined))
        metrics.gauge_fn("storage.degraded",
                         lambda: 0 if self.degraded is None else 1)
        metrics.counter_fn("faults.injected", lambda: self.faults.injected)
        metrics.counter_fn("events.dropped", lambda: self.events.dropped)
        metrics.gauge_fn("shard.count", lambda: self._n_shards)
        for sid in range(self._n_shards):
            metrics.counter_fn("shard.scans",
                               (lambda s=sid: _count_value(
                                   self._shard_scans[s])),
                               shard=str(sid))
        metrics.counter_fn("recluster.runs", lambda: self.recluster_runs)
        metrics.counter_fn("recluster.moved_objects",
                           lambda: self.recluster_moved)

    #: Pages per heap-growth extent for cluster heaps: objects of one
    #: cluster land in physically contiguous runs (cluster-local
    #: placement), which is what makes scan readahead effective.
    EXTENT_PAGES = 8

    #: Bound on the decoded-page cache (pages, not bytes).
    PAGE_CACHE_PAGES = 512

    #: Bound on the access-profile table feeding the recluster daemon.
    ACCESS_TABLE_MAX = 8192

    # -- sharding helpers --------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def _shard_of_key(self, key) -> int:
        """The shard an object key routes to. Serial-keyed objects (the
        object layer's ``(serial, version)`` tuples) map by serial, so
        every version of one object — head beside its states — shares a
        shard; other key shapes hash stably (crc32, not ``hash()``, so
        the placement survives process restarts)."""
        if self._n_shards == 1:
            return 0
        first = key[0] if isinstance(key, tuple) and key else key
        if isinstance(first, int):
            return first % self._n_shards
        return zlib.crc32(repr(first).encode("utf-8", "replace")) \
            % self._n_shards

    def _latch_of(self, shard: int):
        """The latch serializing per-key work in *shard* (the metadata
        latch on a single-shard store, preserving the pre-sharding
        critical sections exactly)."""
        if self._router is None:
            return self.latch
        return self._router.latch_of(shard)

    def _pool_of(self, shard: int):
        if self._router is None:
            return self._pool
        return self._router.pools[shard]

    @contextmanager
    def _keyed(self, cluster: str, key):
        """Yield ``(heap, directory)`` for *key*'s shard, shard latch held.

        Structure resolution must not run under the shard latch (it takes
        the metadata latch and catalog lock, both ordered before shard
        latches), so the caches are primed first and re-read — plain
        GIL-atomic dict gets — inside the latch; a concurrent
        vacuum/recluster/abort that swapped or dropped the entry is
        caught by the re-read and the resolution retries.
        """
        if self._router is None:
            with self.latch:
                yield self._heap(cluster), self._directory(cluster)
            return
        sid = self._shard_of_key(key)
        self._ensure_structs(cluster, sid)
        latch = self._router.latch_of(sid)
        while True:
            with latch:
                heap = self._heaps.get((cluster, sid))
                directory = self._directories.get((cluster, sid))
                if heap is not None and directory is not None:
                    yield heap, directory
                    return
            self._ensure_structs(cluster, sid)

    def _ensure_structs(self, cluster: str, shard: int) -> None:
        with self.latch:
            self._heap(cluster, shard)
            self._directory(cluster, shard)

    def _all_heaps(self, cluster: str) -> List[HeapFile]:
        with self.latch:
            return [self._heap(cluster, sid)
                    for sid in range(self._n_shards)]

    def _note_access(self, cluster: str, key) -> None:
        counts = self._access_counts
        serial = key[0] if isinstance(key, tuple) and key else key
        entry = (cluster, serial)
        counts[entry] = counts.get(entry, 0) + 1
        if len(counts) > self.ACCESS_TABLE_MAX:
            # Keep the hot half; racing bumps against the old dict are
            # lost, which the profile tolerates.
            floor = sorted(counts.values())[len(counts) // 2]
            self._access_counts = {k: v for k, v in counts.items()
                                   if v > floor}

    def take_access_profile(self) -> Dict[Tuple[str, Any], int]:
        """Hand the accumulated access counts to the caller and reset."""
        counts, self._access_counts = self._access_counts, {}
        return counts

    # -- transactions ------------------------------------------------------------

    def begin(self) -> int:
        """Start a transaction; returns its id."""
        return self._journal.begin()

    def commit(self, txn: int) -> None:
        """Durably commit *txn* and release its locks."""
        clsn = self._journal.commit(txn)
        hook = self.on_commit
        if hook is not None:
            # Before lock release: a conflicting writer waiting on one of
            # this transaction's X locks must find the commit already
            # stamped when it is granted.
            hook(txn, clsn)
        self.locks.release_all(txn)

    def abort(self, txn: int, release_locks: bool = True) -> None:
        """Roll back *txn* (undoing all its page effects), release locks.

        The in-memory catalog is re-read from disk because the aborted
        transaction may have created clusters or indexes. With
        *release_locks=False* the caller keeps the transaction's locks —
        the object layer uses this to reload its caches from the rolled
        back store before other transactions can touch the same objects,
        and then calls ``locks.release_all(txn)`` itself.
        """
        with self.latch:
            self._journal.abort(txn)
            self.catalog.invalidate()
            self._heaps.clear()
            self._directories.clear()
            self._indexes.clear()
            # The aborted transaction may have reserved a serial block whose
            # catalog update was rolled back; drop all in-memory blocks.
            self._serial_blocks.clear()
        if release_locks:
            self.locks.release_all(txn)

    def checkpoint(self) -> None:
        """Flush dirty pages; truncate the WAL if quiescent."""
        self._journal.checkpoint()
        for pagefile in self._pagefiles:
            pagefile.sync()

    def set_durability(self, mode: str, group_size: Optional[int] = None,
                       group_window: Optional[float] = None) -> None:
        """Switch the commit fsync policy (see :mod:`repro.storage.wal`)."""
        self._wal.set_durability(mode, group_size, group_window)

    @property
    def durability(self) -> str:
        return self._wal.durability

    @property
    def active_transactions(self) -> List[int]:
        return list(self._journal.active)

    # -- clusters -----------------------------------------------------------------

    def create_cluster(self, txn: int, name: str,
                       parents: Optional[List[str]] = None) -> ClusterInfo:
        """Create the extent for *name* (the paper's ``create`` macro).

        On a sharded store every shard gets its own heap + object
        directory up front, so the catalog record fixes the cluster's
        full physical layout at creation.
        """
        parents = parents or []
        with self.latch:
            for parent in parents:
                if not self.catalog.has_cluster(parent):
                    raise CatalogError(
                        "parent cluster %r of %r does not exist"
                        % (parent, name))
            heaps: List[HeapFile] = []
            directories: List[HashIndex] = []
            shard_pairs: List[List[int]] = []
            for sid in range(self._n_shards):
                journal = self._shard_journals[sid]
                heap = HeapFile.create(journal, txn,
                                       extent=self.EXTENT_PAGES)
                directory = HashIndex.create(journal, txn, unique=True)
                heaps.append(heap)
                directories.append(directory)
                shard_pairs.append([heap.first_page,
                                    directory.directory_page])
            info = self.catalog.add_cluster(
                txn, name, parents, shard_pairs[0][0], shard_pairs[0][1],
                shards=shard_pairs if self._n_shards > 1 else None)
            for sid in range(self._n_shards):
                self._heaps[(name, sid)] = heaps[sid]
                self._directories[(name, sid)] = directories[sid]
            return info

    def has_cluster(self, name: str) -> bool:
        return self.catalog.has_cluster(name)

    def cluster_info(self, name: str) -> ClusterInfo:
        info = self.catalog.get_cluster(name)
        if info is None:
            raise CatalogError("no cluster named %r" % name)
        return info

    def _shard_pair(self, info: ClusterInfo, shard: int) -> List[int]:
        if shard >= len(info.shards):
            raise StorageError(
                "cluster %r has %d shard(s) but the store expects %d"
                % (info.name, len(info.shards), self._n_shards))
        return info.shards[shard]

    def _heap(self, name: str, shard: int = 0) -> HeapFile:
        with self.latch:
            heap = self._heaps.get((name, shard))
            if heap is None:
                info = self.cluster_info(name)
                heap = HeapFile(self._shard_journals[shard],
                                self._shard_pair(info, shard)[0],
                                extent=self.EXTENT_PAGES)
                self._heaps[(name, shard)] = heap
            return heap

    def _directory(self, name: str, shard: int = 0) -> HashIndex:
        with self.latch:
            directory = self._directories.get((name, shard))
            if directory is None:
                info = self.cluster_info(name)
                directory = HashIndex(self._shard_journals[shard],
                                      self._shard_pair(info, shard)[1],
                                      unique=True)
                self._directories[(name, shard)] = directory
            return directory

    #: Serials are reserved from the catalog in blocks of this size, so a
    #: catalog write is paid once per block instead of once per pnew. A
    #: crash or abort wastes the block's unissued serials — ids stay
    #: unique, they are just not dense (the standard sequence trade-off).
    SERIAL_BLOCK = 64

    def allocate_serial(self, txn: int, cluster: str) -> int:
        """Hand out the next object serial number for *cluster*."""
        with self.latch:
            block = self._serial_blocks.get(cluster)
            if block is None or block[0] >= block[1]:
                info = self.cluster_info(cluster)
                start = info.next_serial
                info.next_serial += self.SERIAL_BLOCK
                self.catalog.save_cluster(txn, info)
                block = [start, info.next_serial]
                self._serial_blocks[cluster] = block
            serial = block[0]
            block[0] += 1
            return serial

    # -- objects --------------------------------------------------------------------

    def put(self, txn: int, cluster: str, key: Tuple, data: Dict,
            new: bool = False) -> None:
        """Insert or overwrite the object at *key* in *cluster*.

        *new=True* asserts the key does not exist yet and skips the
        directory probe (the directory is unique, so a wrong assertion
        raises rather than corrupting). Freshly allocated serials qualify.
        """
        payload = encode_value(data)
        with self._keyed(cluster, key) as (heap, directory):
            if not new:
                existing = directory.search(key)
                if existing:
                    heap.update(txn, RID(*existing[0]), payload)
                    return
            rid = heap.insert(txn, payload)
            # new=True asserted the key absent; a probe above proved it
            # otherwise — either way the dup check is already paid for.
            directory.insert(txn, key, tuple(rid), check_dup=False)

    def put_with_token(self, txn: int, cluster: str, key: Tuple,
                       data: Dict) -> Tuple[RID, int]:
        """Like :meth:`put`, returning ``(rid, home_page_lsn)``.

        The token pair is the post-write physical validity token for the
        record (see :meth:`get_with_token`): the home page is edited on
        every path of a heap update — in-place, overflow rewrite, and
        relocation all stamp its LSN — so callers may cache the decoded
        *data* under ``(rid.page_no, lsn)`` and trust
        :meth:`tokens_valid` to catch any later mutation, including an
        abort's compensation writes.
        """
        payload = encode_value(data)
        with self._keyed(cluster, key) as (heap, directory):
            existing = directory.search(key)
            if existing:
                rid = RID(*existing[0])
                heap.update(txn, rid, payload)
            else:
                rid = heap.insert(txn, payload)
                directory.insert(txn, key, tuple(rid), check_dup=False)
            return rid, heap.page_lsn(rid.page_no)

    def page_lsns(self, cluster: str, page_nos) -> Dict[int, int]:
        """Current LSNs of a set of *cluster* heap pages.

        Token-refresh helper for batch writers: after a run of puts has
        settled, the caller re-primes its decoded cache against these
        LSNs (see :meth:`get_with_token` for the token contract). Page
        numbers are gpids, so each pin routes to (and briefly latches)
        only its own shard.
        """
        pool = self._pool
        lsns: Dict[int, int] = {}
        for page_no in set(page_nos):
            with pool.page(page_no) as page:
                lsns[page_no] = page.page_lsn
        return lsns

    def get(self, cluster: str, key: Tuple) -> Optional[Dict]:
        """Fetch the object at *key*, or None."""
        if self.track_access:
            self._note_access(cluster, key)
        with self._keyed(cluster, key) as (heap, directory):
            hit = directory.search(key)
            if not hit:
                return None
            raw = heap.read(RID(*hit[0]))
        return decode_value(raw)

    def get_with_token(self, cluster: str,
                       key: Tuple) -> Tuple[Optional[Dict], Optional[RID],
                                            int]:
        """Fetch ``(data, rid, home_page_lsn)``; ``(None, None, 0)`` if absent.

        The ``(rid.page_no, lsn)`` pair is a physical validity token for
        the decoded value: as long as :meth:`tokens_valid` confirms it,
        the record's bytes cannot have changed (every mutation of a heap
        record edits its home page, bumping the LSN; LSNs are globally
        monotone even across WAL truncation and page recycling). Callers
        must not trust tokens with ``lsn == 0`` — freshly formatted pages
        start there.
        """
        if self.track_access:
            self._note_access(cluster, key)
        with self._keyed(cluster, key) as (heap, directory):
            hit = directory.search(key)
            if not hit:
                return None, None, 0
            rid = RID(*hit[0])
            raw, lsn = heap.read_with_lsn(rid)
        return decode_value(raw), rid, lsn

    def tokens_valid(self, tokens) -> bool:
        """True iff every ``(page_no, lsn)`` matches the page's current LSN.

        Pages for repeated page numbers are pinned once. This is the
        whole validation cost of the object layer's decoded cache: a
        couple of buffer-pool hits instead of directory probes + decodes.
        Each pin latches only its own shard's pool.
        """
        pool = self._pool
        seen: Dict[int, int] = {}
        for page_no, lsn in tokens:
            current = seen.get(page_no)
            if current is None:
                with pool.page(page_no) as page:
                    current = page.page_lsn
                seen[page_no] = current
            if current != lsn:
                return False
        return True

    def exists(self, cluster: str, key: Tuple) -> bool:
        with self._keyed(cluster, key) as (_heap, directory):
            return bool(directory.search(key))

    def delete(self, txn: int, cluster: str, key: Tuple) -> bool:
        """Delete the object at *key*; returns whether it existed."""
        with self._keyed(cluster, key) as (heap, directory):
            hit = directory.search(key)
            if not hit:
                return False
            heap.delete(txn, RID(*hit[0]))
            directory.delete(txn, key)
            return True

    # -- scan/vacuum gate --------------------------------------------------------

    def _scan_enter(self, force: bool = False) -> None:
        """Register this thread as a chain walker.

        A pending maintenance rewrite (vacuum/recluster) blocks *new*
        walkers until it commits — without that priority, back-to-back
        scans starve :meth:`_maintenance_begin` forever. Re-entrant
        admission (this thread already walks) always passes, and
        *force=True* lets the parallel executor's worker threads in under
        their consumer's admission (the consumer is registered for the
        whole parallel scan; blocking its workers would deadlock it
        against the waiting vacuum).
        """
        ident = threading.get_ident()
        with self._scan_gate:
            if self._quiesced and not self._scan_readers.get(ident):
                # The store is closing: failing cleanly here beats a page
                # read racing the final checkpoint or a closed file.
                raise StorageError("store is shutting down; scan refused")
            if not force:
                while (self._maint_waiters
                       and not self._scan_readers.get(ident)):
                    self._scan_gate.wait(timeout=1.0)
                    if (self._quiesced
                            and not self._scan_readers.get(ident)):
                        raise StorageError(
                            "store is shutting down; scan refused")
            self._scan_readers[ident] = self._scan_readers.get(ident, 0) + 1

    def _scan_exit(self) -> None:
        ident = threading.get_ident()
        with self._scan_gate:
            depth = self._scan_readers.get(ident, 0) - 1
            if depth <= 0:
                self._scan_readers.pop(ident, None)
                self._scan_gate.notify_all()
            else:
                self._scan_readers[ident] = depth

    def _maintenance_begin(self) -> None:
        """Drain chain walkers and hold new ones out.

        Returns once no *other* thread is inside a walk; scans arriving
        meanwhile (and until :meth:`_maintenance_end`) block at
        :meth:`_scan_enter`, so the caller's page rewrite + commit —
        which moves records and frees the old chain — can never overlap
        a walk of the chains it is retiring. Callers must already hold
        the cluster's X lock and must pair with ``_maintenance_end`` in
        a ``finally``.
        """
        ident = threading.get_ident()
        with self._scan_gate:
            self._maint_waiters += 1
            while any(t != ident for t in self._scan_readers):
                self._scan_gate.wait(timeout=1.0)

    def _maintenance_end(self) -> None:
        with self._scan_gate:
            self._maint_waiters -= 1
            self._scan_gate.notify_all()

    def quiesce(self, timeout: float = 10.0) -> bool:
        """Drain in-flight chain walks and refuse new ones (close path).

        Returns once no *other* thread is inside a scan (shard-parallel
        scans count their consumer *and* workers here), or after
        *timeout* seconds — a paused scan iterator held by application
        code must not hang ``close()`` forever, so the drain is
        best-effort-with-deadline. Either way the store is marked
        quiesced afterwards: late scans get a clean
        :class:`~repro.errors.StorageError` instead of racing the final
        checkpoint. Returns whether the drain completed. Idempotent.
        """
        ident = threading.get_ident()
        deadline = time.monotonic() + timeout
        with self._scan_gate:
            self._quiesced = True
            self._scan_gate.notify_all()
            while any(t != ident for t in self._scan_readers):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._scan_gate.wait(timeout=min(remaining, 1.0))
            return True

    def scan(self, cluster: str) -> Iterator[Tuple[RID, Dict]]:
        """Yield ``(rid, data)`` for every object in *cluster*.

        The object layer embeds its own key in the payload, so the RID is
        informational. Objects inserted behind the scan cursor during the
        iteration are visited — the property the paper's fixpoint queries
        require (section 3.2). Shards are walked in order.
        """
        # Enter the gate before resolving structures: a vacuum that was
        # admitted first swaps the caches before letting us through, so
        # the heaps we resolve can never be mid-retirement.
        self._scan_enter()
        try:
            heaps = self._all_heaps(cluster)
            # The heap scan pins (and thereby latches) per record advance
            # and never holds a pin across a yield, so concurrent mutators
            # only ever see the scan between records.
            for sid, heap in enumerate(heaps):
                next(self._shard_scans[sid])
                for rid, raw in heap.scan():
                    yield rid, decode_value(raw)
        finally:
            self._scan_exit()

    def scan_batches(self, cluster: str) -> Iterator[List[Tuple[RID, Dict]]]:
        """Yield page-at-a-time batches of ``(rid, data)`` for *cluster*.

        The batched counterpart of :meth:`scan`: ~2 pins per page instead
        of one per slot, heap readahead ahead of the cursor, and a bounded
        decoded-page cache keyed on the page LSN so a re-scan of an
        unchanged page skips both the slot reads and ``decode_value``
        entirely. The fixpoint property holds: each page is re-checked
        after its batch is consumed, so records inserted behind the cursor
        (same page or grown tail pages) are still visited.

        On a multi-shard store the shards' page walks fan out across a
        worker pool (see :mod:`repro.storage.parallel`) and batches merge
        back in shard order, with a serial fixpoint re-check after the
        workers drain; a single-shard store takes the plain serial path.
        """
        # Gate before structure resolution, as in :meth:`scan`.
        self._scan_enter()
        try:
            heaps = self._all_heaps(cluster)
            if len(heaps) > 1 and self._scan_worker_count > 1:
                from .parallel import parallel_scan_batches
                yield from parallel_scan_batches(self, heaps)
                return
            pool = self._pool
            readahead = HeapFile.READAHEAD
            from .page import NO_PAGE
            for sid, heap in enumerate(heaps):
                next(self._shard_scans[sid])
                yield from self._scan_batches_inner(heap, pool, readahead,
                                                    NO_PAGE)
        finally:
            self._scan_exit()

    def _scan_batches_inner(self, heap, pool, readahead, NO_PAGE,
                            start_page=None, start_slot=0, final_pos=None):
        """One heap's batched page walk.

        *start_page*/*start_slot* resume a previous walk (the parallel
        executor's fixpoint re-check); *final_pos*, when given, is a
        2-slot list updated in place with the cursor's last position
        ``[page_no, consumed_slots]`` so the walk can be resumed later.
        """
        page_no = heap.first_page if start_page is None else start_page
        resume_slot = start_slot
        span_lo = span_hi = -1
        while page_no != NO_PAGE:
            if not span_lo <= page_no < span_hi:
                pool.prefetch(page_no, readahead)
                span_lo, span_hi = page_no, page_no + readahead
            start = resume_slot
            resume_slot = 0
            while True:
                # Header peek: one (cold) pin tells us whether the cached
                # decode is current before we touch any slot.
                with pool.page(page_no, cold=True) as page:
                    lsn = page.page_lsn
                    slot_count = page.slot_count
                    next_page = page.next_page
                if slot_count <= start:
                    break
                if start == 0 and lsn:
                    with self._pc_lock:
                        hit = self._page_cache.get(page_no)
                        if (hit is not None and hit[0] == lsn
                                and hit[1] == slot_count):
                            self._page_cache.move_to_end(page_no)
                            self.page_cache_hits += 1
                            batch = hit[2]
                        else:
                            batch = None
                    if batch is not None:
                        yield batch
                        start = slot_count
                        continue
                records, slot_count2, next_page, lsn2 = \
                    heap.read_page_records(page_no, start)
                decoded = [(rid, decode_value(raw)) for rid, raw in records]
                if (start == 0 and lsn and lsn2 == lsn
                        and slot_count2 == slot_count):
                    with self._pc_lock:
                        self.page_cache_misses += 1
                        self._page_cache[page_no] = (lsn, slot_count,
                                                     decoded)
                        self._page_cache.move_to_end(page_no)
                        while len(self._page_cache) > self.PAGE_CACHE_PAGES:
                            self._page_cache.popitem(last=False)
                if decoded:
                    yield decoded
                start = slot_count2
            if final_pos is not None:
                final_pos[0] = page_no
                final_pos[1] = start
            page_no = next_page

    def count(self, cluster: str) -> int:
        return sum(heap.count() for heap in self._all_heaps(cluster))

    # -- secondary indexes ------------------------------------------------------------

    def create_index(self, txn: int, cluster: str, field,
                     kind: str = "btree", unique: bool = False) -> IndexInfo:
        """Create a secondary index on *cluster*.

        *field* is a field name, or a tuple/list of field names for a
        composite index (keyed on the value tuple, registered under the
        comma-joined name). Index pages always live in shard 0.
        """
        if isinstance(field, (tuple, list)):
            fields = list(field)
            name = ",".join(fields)
        else:
            fields = [field]
            name = field
        with self.latch:
            info = self.cluster_info(cluster)
            if name in info.indexes:
                raise CatalogError("cluster %r already has an index on %r"
                                   % (cluster, name))
            if kind == "btree":
                index = BTree.create(self._journal, txn, unique=unique)
                root = index.root_page
            elif kind == "hash":
                index = HashIndex.create(self._journal, txn, unique=unique)
                root = index.directory_page
            else:
                raise CatalogError("unknown index kind %r" % kind)
            ix_info = IndexInfo(name, kind, root, unique, fields)
            info.indexes[name] = ix_info
            self.catalog.save_cluster(txn, info)
            self._indexes[(cluster, name)] = index
            return ix_info

    def index(self, cluster: str, field: str):
        """The :class:`BTree` or :class:`HashIndex` registered on *field*."""
        with self.latch:
            cached = self._indexes.get((cluster, field))
            if cached is not None:
                return cached
            info = self.cluster_info(cluster)
            ix_info = info.indexes.get(field)
            if ix_info is None:
                raise CatalogError("cluster %r has no index on %r"
                                   % (cluster, field))
            if ix_info.kind == "btree":
                index = BTree(self._journal, ix_info.root_page,
                              ix_info.unique)
            else:
                index = HashIndex(self._journal, ix_info.root_page,
                                  ix_info.unique)
            self._indexes[(cluster, field)] = index
            return index

    def indexes_on(self, cluster: str) -> Dict[str, IndexInfo]:
        with self.latch:
            return dict(self.cluster_info(cluster).indexes)

    # Latched index entry points. A multi-level B+tree descent (or a hash
    # bucket split) touches several pages; holding the latch for the whole
    # operation keeps a concurrent reader from observing the intermediate
    # states between those page edits. Index pages are shard-0 residents,
    # so the metadata latch (ordered before shard latches) is the right
    # guard.

    def index_insert(self, txn: int, cluster: str, field: str, key,
                     value) -> None:
        with self.latch:
            self.index(cluster, field).insert(txn, key, value)

    def index_delete(self, txn: int, cluster: str, field: str, key,
                     value=None) -> None:
        with self.latch:
            self.index(cluster, field).delete(txn, key, value)

    def index_search(self, cluster: str, field: str, key) -> List:
        with self.latch:
            return list(self.index(cluster, field).search(key))

    def index_range(self, cluster: str, field: str, lo=None, hi=None,
                    include_hi: bool = False):
        """Lazy ``(key, serial)`` range scan of a B+tree index.

        The walk latches page-at-a-time (every node read pins under the
        shard-0 pool latch), which keeps early-exiting consumers — prefix
        scans, LIMIT-style iteration — from paying for keys they never
        look at. Logical consistency against concurrent writers comes
        from the *caller's* lock, not from here: plan executors inside a
        transaction hold the cluster's S lock for the duration of the
        scan, and reads outside transactions are the documented unlocked
        fast path (same contract as :meth:`scan`).
        """
        with self.latch:
            ix = self.index(cluster, field)
        return ix.range(lo, hi, include_hi=include_hi)

    # -- maintenance ----------------------------------------------------------------

    def vacuum(self, cluster: str) -> Dict[str, int]:
        """Rewrite *cluster*'s heap(s) and object director(ies) compactly.

        Deletes and relocations leave tombstones, forwarding stubs and
        sparse pages behind; vacuuming copies every live object into a
        fresh heap (and a fresh directory mapping keys to the new RIDs),
        swaps them into the catalog, and schedules the old pages for the
        free list at commit. The new heap is presized with one contiguous
        extent covering the live payloads, so vacuuming doubles as
        *reclustering*: a fragmented cluster comes back as a single
        physical run that readahead can stream. Secondary indexes map
        keys to *serials*, not RIDs, so they remain valid and are not
        rebuilt.

        On a multi-shard store the per-shard rewrites run in parallel
        worker threads, each as its own transaction touching only its
        shard; the parent transaction then swaps the catalog record and
        frees the old pages, so a crash anywhere leaks pages but never
        loses an object.

        Runs as its own transaction; returns ``{"objects": n, "pages_freed"
        : m}``.
        """
        import time as _time
        started = _time.perf_counter()
        txn = self.begin()
        # Take the cluster exclusively *before* latching (the lock can
        # block; the latch must not be held while it does), so concurrent
        # transactions reading or writing the cluster are shut out for the
        # duration of the rewrite.
        self.locks.acquire(txn, ("cluster", cluster), "X")
        # MVCC readers walk heap chains without a cluster lock; drain
        # in-flight walks and hold new ones out until the commit frees
        # the old chain (a walker admitted mid-rewrite could otherwise
        # read recycled garbage).
        self._maintenance_begin()
        try:
            try:
                with self.latch:
                    if self._router is None:
                        moved, old_pages = self._vacuum_shard_locked(
                            txn, cluster, 0)
                    else:
                        moved, old_pages = self._vacuum_sharded_locked(
                            txn, cluster)
            except BaseException:
                self.abort(txn)
                raise
            self.commit(txn)
        finally:
            self._maintenance_end()
        self.events.emit("vacuum", cluster=cluster, objects=moved,
                         pages_freed=len(old_pages),
                         ms=(_time.perf_counter() - started) * 1e3)
        return {"objects": moved, "pages_freed": len(old_pages)}

    def _vacuum_shard_locked(self, txn: int, cluster: str,
                             shard: int) -> Tuple[int, List[int]]:
        """Rewrite one shard of *cluster* under *txn*; swap it into the
        catalog. Caller holds the metadata latch and the cluster X lock."""
        info = self.cluster_info(cluster)
        new_heap, new_directory, moved, old_pages = self._rewrite_shard(
            txn, cluster, shard, hot_rank=None)
        info.shards[shard] = [new_heap.first_page,
                              new_directory.directory_page]
        if shard == 0:
            info.heap_page, info.directory_page = info.shards[0]
        self.catalog.save_cluster(txn, info)
        for page_no in old_pages:
            self._journal.free_page_deferred(txn, page_no)
        self._swap_structs(cluster, shard, new_heap, new_directory)
        return moved, old_pages

    def _vacuum_sharded_locked(self, parent: int,
                               cluster: str) -> Tuple[int, List[int]]:
        """Shard-parallel vacuum body (metadata latch + cluster X held).

        Each shard's rewrite runs in its own worker thread as its own
        committed transaction — shard-local page traffic only, so the
        workers' latch footprints are disjoint. The *parent* transaction
        then performs the single catalog swap and schedules every old
        page for the free list, making the whole vacuum atomic at the
        catalog level: a crash after some children committed leaks their
        fresh (unreferenced) pages and nothing else.
        """
        info = self.cluster_info(cluster)
        old = [(self._heap(cluster, sid), self._directory(cluster, sid))
               for sid in range(self._n_shards)]
        results: List[Any] = [None] * self._n_shards
        errors: List[BaseException] = []

        def rewrite(sid: int) -> None:
            child = self.begin()
            try:
                with self._router.latch_of(sid):
                    new_heap, new_directory, moved, old_pages = \
                        self._rewrite_shard(child, cluster, sid,
                                            hot_rank=None,
                                            structs=old[sid])
                # Commit outside the shard latch: the journal latch is
                # ordered before shard latches.
                self._journal.commit(child)
                results[sid] = (new_heap, new_directory, moved, old_pages)
            except BaseException as exc:
                try:
                    self._journal.abort(child)
                except Exception:
                    pass
                errors.append(exc)

        threads = [threading.Thread(target=rewrite, args=(sid,),
                                    name="repro-vacuum-s%d" % sid)
                   for sid in range(self._n_shards)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        moved = 0
        old_pages: List[int] = []
        for sid, (new_heap, new_directory, n, pages) in enumerate(results):
            info.shards[sid] = [new_heap.first_page,
                                new_directory.directory_page]
            moved += n
            old_pages.extend(pages)
        info.heap_page, info.directory_page = info.shards[0]
        self.catalog.save_cluster(parent, info)
        for page_no in old_pages:
            self._journal.free_page_deferred(parent, page_no)
        for sid, (new_heap, new_directory, _n, _pages) in \
                enumerate(results):
            self._swap_structs(cluster, sid, new_heap, new_directory)
        return moved, old_pages

    def _rewrite_shard(self, txn: int, cluster: str, shard: int,
                       hot_rank: Optional[Dict[Any, int]] = None,
                       structs=None):
        """Copy one shard's live objects into a fresh heap + directory.

        Returns ``(new_heap, new_directory, moved, old_pages)`` without
        touching the catalog or the structure caches — the caller owns
        the swap. With *hot_rank* (serial -> rank), hot objects are
        copied first in rank order so they share the leading extent
        (dynamic reclustering); the rest follow in old physical chain
        order, which preserves the insertion adjacency the batched scan
        materializer depends on.
        """
        if structs is None:
            old_heap = self._heap(cluster, shard)
            old_directory = self._directory(cluster, shard)
        else:
            old_heap, old_directory = structs
        # Copy in old *physical chain order*, not hash-bucket order:
        # insertion placed related records (an object's head next to its
        # state) adjacently, and the batched scan's materializer depends
        # on that adjacency. A bucket-order rewrite would scatter them
        # and degrade post-vacuum scans to per-object directory probes.
        chain_pos = {no: i for i, no in
                     enumerate(self._pages_of_heap(old_heap))}

        def order(kv):
            key, rid_tuple = kv
            chain = (chain_pos.get(rid_tuple[0], 1 << 60), rid_tuple[1])
            if hot_rank is not None:
                serial = key[0] if isinstance(key, tuple) and key else key
                rank = hot_rank.get(serial)
                if rank is not None:
                    return (0, rank, chain)
            return (1, 0, chain)

        rid_items = sorted(old_directory.items(), key=order)
        items = [(key, old_heap.read(RID(*rid_tuple)))
                 for key, rid_tuple in rid_items]
        journal = self._shard_journals[shard]
        new_heap = HeapFile.create(journal, txn, extent=self.EXTENT_PAGES)
        new_directory = HashIndex.create(journal, txn, unique=True)
        need = self._pages_for(payload for _key, payload in items)
        if need > 1:
            # Cap the single extent well below the pool size so
            # formatting it cannot churn the whole buffer pool.
            new_heap.preallocate(
                txn, min(need, max(self._pool_of(shard).capacity // 2, 1)))
        moved = 0
        for key, payload in items:
            new_rid = new_heap.insert(txn, payload)
            new_directory.insert(txn, key, tuple(new_rid), check_dup=False)
            moved += 1
        old_pages = (self._pages_of_heap(old_heap)
                     + self._pages_of_hash(old_directory))
        return new_heap, new_directory, moved, old_pages

    def _swap_structs(self, cluster: str, shard: int, heap: HeapFile,
                      directory: HashIndex) -> None:
        """Publish a rewritten shard's structures. The shard latch
        brackets the dict writes so a per-key operation that re-reads the
        caches inside its latch can never keep using a structure whose
        pages are scheduled to be freed."""
        with self._latch_of(shard):
            self._heaps[(cluster, shard)] = heap
            self._directories[(cluster, shard)] = directory

    def recluster_shard(self, cluster: str, serials,
                        shard: int = 0) -> Dict[str, int]:
        """Migrate hot *serials* of *cluster* into the leading extent of
        *shard* (the dynamic clustering policy from the Darmont studies:
        co-accessed objects end up physically adjacent, so the scans and
        dereference runs that made them hot read fewer pages).

        The rewrite is exactly a shard vacuum with a placement hint, runs
        as its own transaction under the cluster's X lock, and is invoked
        by the background :class:`~repro.storage.recluster.ReclusterDaemon`
        with serials ranked by observed access counts. MVCC readers are
        safe for the same reason vacuum is: logical content is unchanged,
        chain walkers are drained via the scan gate, and the page-LSN
        tokens of every moved record stop validating.
        """
        serials = list(serials)
        self.faults.fire("recluster.pre", cluster=cluster, shard=shard)
        txn = self.begin()
        self.locks.acquire(txn, ("cluster", cluster), "X")
        self._maintenance_begin()
        try:
            try:
                with self.latch:
                    info = self.cluster_info(cluster)
                    hot_rank = {serial: rank
                                for rank, serial in enumerate(serials)}
                    new_heap, new_directory, moved, old_pages = \
                        self._rewrite_shard(txn, cluster, shard,
                                            hot_rank=hot_rank)
                    info.shards[shard] = [new_heap.first_page,
                                          new_directory.directory_page]
                    if shard == 0:
                        info.heap_page, info.directory_page = \
                            info.shards[0]
                    self.catalog.save_cluster(txn, info)
                    for page_no in old_pages:
                        self._journal.free_page_deferred(txn, page_no)
                    self._swap_structs(cluster, shard, new_heap,
                                       new_directory)
            except BaseException:
                self.abort(txn)
                raise
            self.faults.fire("recluster.commit.pre", cluster=cluster,
                             shard=shard)
            self.commit(txn)
        finally:
            self._maintenance_end()
        hot_here = sum(1 for serial in serials
                       if self._shard_of_key((serial, 0)) == shard)
        self.recluster_runs += 1
        self.recluster_moved += hot_here
        self.events.emit("recluster", cluster=cluster, shard=shard,
                         hot=hot_here, objects=moved,
                         pages_freed=len(old_pages))
        return {"objects": moved, "moved": hot_here,
                "pages_freed": len(old_pages)}

    @staticmethod
    def _pages_for(payloads) -> int:
        """Heap pages needed to hold *payloads*, slightly overestimated."""
        from .heap import MIN_RECORD_SIZE, _REC_HDR
        from .page import HEADER_SIZE, PAGE_SIZE, SLOT_SIZE
        usable = PAGE_SIZE - HEADER_SIZE
        total = 0
        for payload in payloads:
            record = max(MIN_RECORD_SIZE, _REC_HDR.size + len(payload))
            total += min(record, usable) + SLOT_SIZE
        return -(-total // usable) if total else 1

    def fragmentation(self, cluster: str) -> Dict[str, Any]:
        """Physical layout of *cluster*'s heap chain(s).

        ``pages`` is the chain length, ``span`` the page-number distance
        covered (max - min + 1; equals ``pages`` for a perfectly clustered
        heap), ``runs`` the number of maximal physically-contiguous runs
        (1 is ideal). ``span / pages`` is the Darmont-style fragmentation
        factor the EXPERIMENTS entry tracks. On a multi-shard store the
        top-level numbers aggregate the shards (spans are computed on
        local page numbers, per file) and ``shards`` holds the per-shard
        breakdown.
        """
        from .page import NO_PAGE
        per_shard: List[Dict[str, Any]] = []
        with self.latch:
            for sid in range(self._n_shards):
                heap = self._heap(cluster, sid)
                pages: List[int] = []
                page_no = heap.first_page
                while page_no != NO_PAGE:
                    pages.append(local_page(page_no))
                    with self._pool.page(page_no, cold=True) as page:
                        page_no = page.next_page
                runs = 1 + sum(1 for a, b in zip(pages, pages[1:])
                               if b != a + 1)
                span = max(pages) - min(pages) + 1
                per_shard.append({
                    "shard": sid,
                    "pages": len(pages),
                    "span": span,
                    "runs": runs,
                    "fragmentation": span / len(pages),
                })
        total_pages = sum(entry["pages"] for entry in per_shard)
        total_span = sum(entry["span"] for entry in per_shard)
        out = {
            "pages": total_pages,
            "span": total_span,
            "runs": sum(entry["runs"] for entry in per_shard),
            "fragmentation": total_span / total_pages,
        }
        if self._n_shards > 1:
            out["shards"] = per_shard
        return out

    def _pages_of_heap(self, heap: HeapFile) -> List[int]:
        from .page import NO_PAGE
        pages = []
        page_no = heap.first_page
        while page_no != NO_PAGE:
            pages.append(page_no)
            with self._pool.page(page_no) as page:
                page_no = page.next_page
        # Overflow chains hang off records; collect them via raw slots.
        from . import heap as heap_mod
        for home in list(pages):
            with self._pool.page(home) as page:
                records = list(page.slots())
            for _slot, raw in records:
                kind, body = heap_mod._unpack_record(raw)
                if kind == heap_mod.KIND_OVERFLOW:
                    first, _total = heap_mod._OVERFLOW.unpack(body)
                    chain = first
                    while chain != NO_PAGE:
                        pages.append(chain)
                        with self._pool.page(chain) as page:
                            chain = page.next_page
        return pages

    def _pages_of_hash(self, index: HashIndex) -> List[int]:
        from .page import NO_PAGE
        pages = [index.directory_page]
        _, pointers = index._read_directory()
        for bucket in dict.fromkeys(pointers):
            page_no = bucket
            while page_no != NO_PAGE:
                pages.append(page_no)
                with self._pool.page(page_no) as page:
                    page_no = page.next_page
        return pages

    def verify_integrity(self) -> List[str]:
        """Cross-check every structure; returns a list of problems
        (empty means the store is internally consistent).

        Checks per cluster (and per shard): the directory's RIDs resolve
        to readable heap records; heap record count matches directory
        entry count; index structural invariants hold; secondary-index
        entries reference serials that exist in some shard's directory.
        """
        problems: List[str] = []
        self.latch.acquire()
        try:
            return self._verify_integrity_locked(problems)
        finally:
            self.latch.release()

    def _verify_integrity_locked(self, problems: List[str]) -> List[str]:
        for info in self.catalog.clusters():
            cluster = info.name
            keys = set()
            for sid in range(self._n_shards):
                where = (cluster if self._n_shards == 1
                         else "%s[s%d]" % (cluster, sid))
                directory = self._directory(cluster, sid)
                heap = self._heap(cluster, sid)
                try:
                    directory.check_invariants()
                except Exception as exc:
                    problems.append("%s: directory invariant: %s"
                                    % (where, exc))
                entries = 0
                for key, rid_tuple in directory.items():
                    entries += 1
                    keys.add(key)
                    try:
                        heap.read(RID(*rid_tuple))
                    except Exception as exc:
                        problems.append(
                            "%s: key %r -> unreadable RID %r: %s"
                            % (where, key, rid_tuple, exc))
                heap_count = heap.count()
                if heap_count != entries:
                    problems.append(
                        "%s: heap has %d records but directory has %d "
                        "entries" % (where, heap_count, entries))
            serials = {key[0] for key in keys}
            for field, ix_info in info.indexes.items():
                index = self.index(cluster, field)
                try:
                    index.check_invariants()
                except Exception as exc:
                    problems.append("%s.%s: index invariant: %s"
                                    % (cluster, field, exc))
                for _key, serial in index.items():
                    if serial not in serials:
                        problems.append(
                            "%s.%s: index references missing serial %r"
                            % (cluster, field, serial))
        return problems

    # -- corruption containment, scrubbing & repair ---------------------------------

    def _on_corrupt_page(self, page_no: int, exc: Exception) -> None:
        """Buffer-pool callback: a page failed its checksum at admit time.

        Called under the owning shard's latch with a *gpid*. Quarantines
        the page and flips the store into read-only degraded mode: reads
        off healthy pages keep working, writers get
        :class:`DegradedModeError` until :meth:`repair_quarantined` (or a
        reopen after the disk is fixed) clears it.
        """
        self._pool.quarantined.add(page_no)
        self.corrupt_pages += 1
        if self._journal.degraded is None:
            self._journal.degraded = "page %d failed its checksum" % page_no
        self.events.emit("page_corrupt", page_no=page_no, error=str(exc),
                         quarantined=len(self._pool.quarantined))

    @property
    def degraded(self) -> Optional[str]:
        """Why the store is read-only, or ``None`` when healthy."""
        if self._journal.degraded is not None:
            return self._journal.degraded
        if self._wal.failed is not None:
            return "WAL flush failed: %s" % self._wal.failed
        return None

    #: Pages per scrub read batch (one I/O each).
    SCRUB_SPAN = 64

    def scrub(self) -> Dict[str, Any]:
        """Verify the checksum of every allocated page's on-disk image.

        Reads straight from each shard's page file (bypassing the pools)
        in large spans. Pages with a dirty in-memory frame are skipped —
        their disk image is legitimately stale and will be rewritten,
        with a fresh checksum, at the next flush. Bad pages are
        quarantined exactly as if a pin had found them, flipping the
        store into degraded mode.
        """
        import time as _time
        from .page import PAGE_SIZE, verify_checksum
        started = _time.perf_counter()
        bad: List[int] = []
        checked = 0
        with self.latch:
            for sid, pagefile in enumerate(self._pagefiles):
                frames = self._pool_of(sid)._frames
                count = pagefile.page_count
                for start in range(1, count, self.SCRUB_SPAN):
                    raw = pagefile.read_span(
                        start, min(self.SCRUB_SPAN, count - start))
                    mv = memoryview(raw)
                    for i in range(len(raw) // PAGE_SIZE):
                        local_no = start + i
                        frame = frames.get(local_no)
                        if frame is not None and frame.dirty:
                            continue
                        checked += 1
                        if not verify_checksum(
                                mv[i * PAGE_SIZE:(i + 1) * PAGE_SIZE]):
                            bad.append(global_page(sid, local_no))
            for page_no in bad:
                if page_no not in self._pool.quarantined:
                    self._on_corrupt_page(page_no, CorruptPageError(
                        "scrub: page %d failed its checksum" % page_no,
                        page_no=page_no))
        self.events.emit("scrub", pages_checked=checked, bad_pages=len(bad),
                         quarantined=len(self._pool.quarantined),
                         ms=(_time.perf_counter() - started) * 1e3)
        return {"pages_checked": checked, "bad_pages": bad,
                "quarantined": len(self._pool.quarantined),
                "degraded": self.degraded}

    def repair_quarantined(self) -> Dict[str, Any]:
        """Salvage every cluster touched by corruption; clear degraded mode.

        Each cluster whose heap, object directory or secondary indexes
        hit a corrupt page has its surviving objects copied into a fresh
        heap and directory — directory-driven when the directory is
        readable, otherwise a tolerant heap-chain walk recovering keys
        from the payloads' embedded ``__key`` — and all of its secondary
        indexes recreated *empty* (the object layer knows the field
        semantics and repopulates them; see ``Database.repair``). Old
        pages still reachable without touching corruption are freed;
        corrupt pages and anything stranded behind them stay quarantined
        and are leaked — never reused, never decoded.

        Raises :class:`StorageError` if the WAL itself has failed (only
        a reopen recovers that) and propagates the corruption error if
        the catalog is damaged (unrepairable in place).
        """
        if self._wal.failed is not None:
            raise StorageError(
                "cannot repair in place: the WAL has failed (%s); close "
                "and reopen the store to recover from the durable prefix"
                % self._wal.failed)
        report: Dict[str, Any] = {"clusters": {}}
        prior = self._journal.degraded
        # Lift the write gate for the repair itself; restored on failure.
        self._journal.degraded = None
        try:
            with self.latch:
                affected = []
                for info in self.catalog.clusters():
                    probe = self._probe_cluster(info)
                    if probe is not None:
                        affected.append((info.name, probe))
            for name, (items, lost, authoritative) in affected:
                stats = self._rebuild_cluster(name, items)
                stats["lost_objects"] = lost
                stats["directory_authoritative"] = authoritative
                report["clusters"][name] = stats
        except BaseException:
            self._journal.degraded = prior
            raise
        report["leaked_pages"] = len(self._pool.quarantined)
        report["degraded"] = self.degraded
        self.events.emit("repair", clusters=sorted(report["clusters"]),
                         leaked_pages=report["leaked_pages"])
        return report

    def _probe_cluster(self, info: ClusterInfo):
        """Health-check one cluster under the latch.

        Returns ``None`` when every page of the cluster (all shards) is
        reachable and sound, else ``(items, lost, directory_authoritative)``
        where *items* is an ordered ``key -> payload`` map of the
        salvageable objects across every shard.
        """
        cluster = info.name
        healthy = True
        items: "OrderedDict[Tuple, bytes]" = OrderedDict()
        lost = 0
        authoritative = True
        sound: List[Tuple[HeapFile, HashIndex]] = []
        for sid in range(self._n_shards):
            heap = directory = None
            try:
                # find_tail=False: the probe must be able to read records
                # by RID even when a corrupt page cuts the chain walk
                # short.
                heap = HeapFile(self._shard_journals[sid],
                                self._shard_pair(info, sid)[0],
                                extent=self.EXTENT_PAGES, find_tail=False)
                directory = self._directory(cluster, sid)
                rid_items = list(directory.items())
            except Exception:
                healthy = False
                rid_items = None
            if rid_items is not None:
                sound.append((heap, directory))
                for key, rid_tuple in rid_items:
                    try:
                        items[tuple(key)] = heap.read(RID(*rid_tuple))
                    except Exception:
                        healthy = False
                        lost += 1
            else:
                authoritative = False
                for key, payload in self._salvage_heap_chain(cluster, sid):
                    if key is None:
                        lost += 1
                    else:
                        items[key] = payload
        if healthy:
            try:
                # Structural walks: chains can hold corrupt pages that no
                # live directory entry references (tombstone-only pages),
                # and index corruption is invisible to heap reads.
                for heap, directory in sound:
                    self._pages_of_heap(heap)
                    self._pages_of_hash(directory)
                for field in info.indexes:
                    self.index(cluster, field).check_invariants()
            except Exception:
                healthy = False
        if healthy:
            return None
        return items, lost, authoritative

    def _salvage_heap_chain(self, cluster: str, shard: int = 0):
        """Tolerantly walk one shard's heap, yielding ``(key, payload)``.

        Used when the object directory is unreadable. Stops at the first
        broken chain link (records beyond it are lost). Payloads that do
        not decode to a dict carrying the object layer's embedded
        ``__key`` yield ``(None, payload)`` so the caller can count them
        as lost.
        """
        from .page import NO_PAGE
        try:
            info = self.cluster_info(cluster)
            heap = HeapFile(self._shard_journals[shard],
                            self._shard_pair(info, shard)[0],
                            extent=self.EXTENT_PAGES, find_tail=False)
        except Exception:
            return
        page_no = heap.first_page
        seen = set()
        while page_no != NO_PAGE and page_no not in seen:
            seen.add(page_no)
            try:
                records, _slots, next_page, _lsn = \
                    heap.read_page_records(page_no, 0)
            except Exception:
                return
            for _rid, raw in records:
                key = None
                try:
                    value = decode_value(raw)
                    if isinstance(value, dict):
                        key = value.get("__key")
                except Exception:
                    key = None
                yield (None if key is None else tuple(key)), raw
            page_no = next_page

    def _rebuild_cluster(self, cluster: str, items) -> Dict[str, Any]:
        """Rewrite *cluster* from salvaged *items*; fresh empty indexes.

        Every shard gets new structures and each item routes back to its
        home shard (the key -> shard mapping is deterministic, so a
        rebuild reproduces the original placement).
        """
        txn = self.begin()
        self.locks.acquire(txn, ("cluster", cluster), "X")
        self._maintenance_begin()
        try:
            try:
                with self.latch:
                    old_pages = self._rebuild_cluster_locked(txn, cluster,
                                                             items)
            except BaseException:
                self.abort(txn)
                raise
            self.commit(txn)
        finally:
            self._maintenance_end()
        return {"objects": len(items), "pages_freed": len(old_pages)}

    def _rebuild_cluster_locked(self, txn: int, cluster: str,
                                items) -> List[int]:
        """The rebuild body; caller holds latch, X lock and the gate."""
        info = self.cluster_info(cluster)
        old_pages = self._enumerable_pages(info)
        new_heaps: List[HeapFile] = []
        new_directories: List[HashIndex] = []
        for sid in range(self._n_shards):
            journal = self._shard_journals[sid]
            new_heaps.append(HeapFile.create(
                journal, txn, extent=self.EXTENT_PAGES))
            new_directories.append(HashIndex.create(
                journal, txn, unique=True))
        for key, payload in items.items():
            sid = self._shard_of_key(key)
            rid = new_heaps[sid].insert(txn, payload)
            new_directories[sid].insert(txn, key, tuple(rid),
                                        check_dup=False)
        info.shards = [[heap.first_page, directory.directory_page]
                       for heap, directory in
                       zip(new_heaps, new_directories)]
        info.heap_page, info.directory_page = info.shards[0]
        for field, ix_info in list(info.indexes.items()):
            if ix_info.kind == "btree":
                index = BTree.create(self._journal, txn,
                                     unique=ix_info.unique)
                root = index.root_page
            else:
                index = HashIndex.create(self._journal, txn,
                                         unique=ix_info.unique)
                root = index.directory_page
            info.indexes[field] = IndexInfo(
                field, ix_info.kind, root, ix_info.unique,
                list(ix_info.fields))
            self._indexes[(cluster, field)] = index
        self.catalog.save_cluster(txn, info)
        for page_no in old_pages:
            if page_no not in self._pool.quarantined:
                self._journal.free_page_deferred(txn, page_no)
        for sid in range(self._n_shards):
            self._heaps[(cluster, sid)] = new_heaps[sid]
            self._directories[(cluster, sid)] = new_directories[sid]
        with self._pc_lock:
            self._page_cache.clear()
        return old_pages

    def _enumerable_pages(self, info: ClusterInfo) -> List[int]:
        """Pages of the cluster reachable without touching corruption.

        Chains are truncated at the first unreadable link; B+tree
        subtrees under an unreadable node are skipped. The result is safe
        to free — a page only appears if a sound pointer led to it.
        """
        from .page import NO_PAGE
        from . import heap as heap_mod
        pages: List[int] = []
        seen: set = set()

        def chain(first: int) -> None:
            page_no = first
            while page_no != NO_PAGE and page_no not in seen:
                seen.add(page_no)
                try:
                    with self._pool.page(page_no) as page:
                        nxt = page.next_page
                except Exception:
                    return
                pages.append(page_no)
                page_no = nxt

        def hash_pages(directory_page: int, directory) -> None:
            with self._pool.page(directory_page):
                pass
            seen.add(directory_page)
            pages.append(directory_page)
            _, pointers = directory._read_directory()
            for bucket in dict.fromkeys(pointers):
                chain(bucket)

        heap_homes: List[int] = []
        for sid in range(min(self._n_shards, len(info.shards))):
            before = len(pages)
            chain(info.shards[sid][0])
            heap_homes.extend(pages[before:])
        for home in heap_homes:
            try:
                with self._pool.page(home) as page:
                    records = list(page.slots())
                for _slot, raw in records:
                    kind, body = heap_mod._unpack_record(raw)
                    if kind == heap_mod.KIND_OVERFLOW:
                        first, _total = heap_mod._OVERFLOW.unpack(body)
                        chain(first)
            except Exception:
                continue
        for sid in range(min(self._n_shards, len(info.shards))):
            try:
                hash_pages(info.shards[sid][1],
                           self._directory(info.name, sid))
            except Exception:
                pass
        for field, ix_info in info.indexes.items():
            try:
                index = self.index(info.name, field)
            except Exception:
                continue
            if ix_info.kind == "hash":
                try:
                    hash_pages(ix_info.root_page, index)
                except Exception:
                    pass
            else:
                queue = [ix_info.root_page]
                while queue:
                    page_no = queue.pop()
                    if page_no in seen:
                        continue
                    seen.add(page_no)
                    try:
                        node = index._read(page_no)
                    except Exception:
                        continue
                    pages.append(page_no)
                    if not node.leaf:
                        queue.extend(node.children)
        return pages

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Checkpoint and close. Active transactions are aborted first.

        After a WAL flush failure the checkpoint is skipped entirely —
        nothing volatile may reach the page file past the durable log
        prefix; the reopen recovers to it.
        """
        # Drain chain walkers *before* taking the latch (a walker needs
        # the latch to make progress, so waiting under it would deadlock)
        # and before the final checkpoint below — a shard-parallel scan
        # still in flight must never race the page files closing.
        self.quiesce()
        with self.latch:
            if self._closed:
                return
            for txn in list(self._journal.active):
                self.abort(txn)
            if self._wal.failed is None:
                self.checkpoint()
            self._pool.close()
            self._wal.close()
            for pagefile in self._pagefiles:
                pagefile.close()
            self._closed = True

    def crash(self) -> None:
        """Simulate a crash: drop everything volatile without flushing.

        For tests and the durability benchmarks. The store object becomes
        unusable; reopen the path to run recovery.
        """
        self._wal.close()
        for pagefile in self._pagefiles:
            pagefile.close()
        self._closed = True

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        """Counters from the pool(s), WAL and lock manager."""
        total_pages = sum(pf.page_count for pf in self._pagefiles)
        out = {
            "pool": self._pool.stats(),
            "page_cache": {
                "hits": self.page_cache_hits,
                "misses": self.page_cache_misses,
                "cached_pages": len(self._page_cache),
                "capacity_pages": self.PAGE_CACHE_PAGES,
            },
            "wal_appends": self._wal.appends,
            "wal_syncs": self._wal.syncs,
            "wal_flush_calls": self._wal.flush_calls,
            "wal_group_deferrals": self._wal.group_deferrals,
            "durability": self._wal.durability,
            "locks": self.locks.stats(),
            "pages": total_pages,
            "shards": {
                "count": self._n_shards,
                "scans": [_count_value(c) for c in self._shard_scans],
                "recluster_runs": self.recluster_runs,
                "recluster_moved_objects": self.recluster_moved,
                "per_shard": [
                    {"shard": sid,
                     "pages": pf.page_count,
                     "occupancy": (pf.page_count / total_pages)
                     if total_pages else 0.0}
                    for sid, pf in enumerate(self._pagefiles)],
            },
            "storage_health": {
                "degraded": self.degraded,
                "corrupt_pages": self.corrupt_pages,
                "quarantined": sorted(self._pool.quarantined),
                "wal_failed": (None if self._wal.failed is None
                               else str(self._wal.failed)),
                "faults_injected": self.faults.injected,
            },
        }
        return out
