"""Buffer pool — an LRU cache of page frames with pin/unpin discipline.

Higher layers never touch the :class:`~repro.storage.pagefile.PageFile`
directly; they *fetch* pages from the pool, which faults them in from disk
on a miss and evicts clean-or-flushed unpinned frames when full. A fetched
page is pinned until released; pinned pages are never evicted.

The idiomatic way to use the pool is the :meth:`BufferPool.page` context
manager::

    with pool.page(page_no) as page:          # read access
        payload = page.read(slot)

    with pool.page(page_no, write=True) as page:   # marks frame dirty
        page.insert(b"...")

Dirty frames are written back on eviction, on :meth:`flush_page`, and on
:meth:`flush_all` (used by checkpoints and close). When a
:class:`~repro.storage.wal.WriteAheadLog` is attached, the pool enforces
the WAL rule: before a dirty page goes to disk, the log is flushed up to
that page's LSN.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from ..errors import BufferPoolError, CorruptPageError
from .page import PAGE_SIZE, SlottedPage, PageType, verify_checksum
from .pagefile import PageFile

DEFAULT_POOL_SIZE = 256


class _Frame:
    __slots__ = ("page_no", "buf", "pin_count", "dirty", "cold")

    def __init__(self, page_no: int):
        self.page_no = page_no
        self.buf = bytearray(PAGE_SIZE)
        self.pin_count = 0
        self.dirty = False
        #: Scan-resistance flag: cold frames (readahead, scan touches) sit
        #: at the LRU end and are evicted first; a frame only becomes hot
        #: — and earns a trip to the MRU end — on a non-cold pin.
        self.cold = False


class BufferPool:
    """LRU buffer pool over a :class:`PageFile`."""

    def __init__(self, pagefile: PageFile, capacity: int = DEFAULT_POOL_SIZE):
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        self._pagefile = pagefile
        self._capacity = capacity
        # OrderedDict as LRU: most recently used at the end.
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._wal = None
        #: The storage latch. One reentrant lock guards *physical* state —
        #: frames, the page file, the WAL tail, catalog caches — across the
        #: whole storage layer. :meth:`pin` acquires it and the matching
        #: :meth:`unpin` releases it, so a pinned page is never mutated or
        #: evicted under a concurrent thread. Logical isolation between
        #: transactions is the LockManager's job, not the latch's; callers
        #: must never block on the lock manager while holding the latch.
        self.latch = threading.RLock()
        #: Pages that failed their checksum: pinning one raises
        #: :class:`CorruptPageError` until it is repaired or reformatted.
        #: The empty-set truthiness check keeps the healthy path at one
        #: attribute load.
        self.quarantined: set = set()
        #: Called (under the latch) with ``(page_no, exc)`` when a page
        #: fails verification; the store quarantines/degrades here.
        self.on_corrupt_page = None
        #: Pages formatted by :meth:`new_page`/:meth:`new_extent` whose
        #: format has not been WAL-logged yet. The journal diffs such a
        #: page's first edit against a *zero* page, so the format itself
        #: lands in the log — otherwise a crash before the frame's
        #: writeback leaves a page the log cannot rebuild (and, for pages
        #: whose only edit was empty, not even extend the file for).
        self.fresh_pages: set = set()
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.prefetches = 0
        self.readahead_pages = 0
        self.checksum_failures = 0

    def attach_wal(self, wal) -> None:
        """Attach a write-ahead log; enforces flush-log-before-page."""
        self._wal = wal

    def all_latches(self):
        """The pool's latch as a context manager — the single-shard
        counterpart of ``ShardedPool.all_latches()``, so the journal's
        abort/checkpoint paths are shard-agnostic."""
        return self.latch

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def has_free_pages(self) -> bool:
        """Whether the underlying page file has recyclable freed pages."""
        return self._pagefile.has_free_pages

    # -- pinning ---------------------------------------------------------------

    def pin(self, page_no: int, cold: bool = False,
            unchecked: bool = False) -> SlottedPage:
        """Pin *page_no*, faulting it in if needed, and return a page view.

        Acquires the storage latch; the matching :meth:`unpin` releases it.
        The latch is reentrant, so nested pins from one thread are fine.

        *cold* pins (sequential scans) are scan-resistant: a cold fault
        enters the frame at the LRU end instead of the MRU end, and a cold
        hit on a cold frame does not promote it — so one large scan churns
        through at most the cold end of the pool and cannot evict the hot
        working set. Any non-cold pin rehabilitates the frame.

        A faulted-in page is checksum-verified before it is served; a
        mismatch raises :class:`CorruptPageError` (after notifying
        :attr:`on_corrupt_page`) and nothing is admitted. *unchecked*
        skips both the verification and the quarantine gate — crash
        recovery uses it to pin a torn page it is about to rebuild from
        the log.
        """
        self.latch.acquire()
        try:
            if self.quarantined and not unchecked \
                    and page_no in self.quarantined:
                raise CorruptPageError(
                    "page %d is quarantined (failed checksum)" % page_no,
                    page_no=page_no)
            frame = self._frames.get(page_no)
            if frame is not None:
                self.hits += 1
                if cold and frame.cold:
                    pass  # scan re-touch: leave it where it is
                else:
                    frame.cold = False
                    self._frames.move_to_end(page_no)
            else:
                self.misses += 1
                frame = self._admit(page_no)
                try:
                    self._pagefile.read_page(page_no, frame.buf)
                    if not unchecked and not verify_checksum(frame.buf):
                        self.checksum_failures += 1
                        exc = CorruptPageError(
                            "page %d failed its checksum" % page_no,
                            page_no=page_no)
                        if self.on_corrupt_page is not None:
                            self.on_corrupt_page(page_no, exc)
                        raise exc
                except BaseException:
                    # Never leave a half-faulted frame behind.
                    self._frames.pop(page_no, None)
                    raise
                if cold:
                    frame.cold = True
                    self._frames.move_to_end(page_no, last=False)
            frame.pin_count += 1
        except BaseException:
            self.latch.release()
            raise
        return SlottedPage(frame.buf)

    def prefetch(self, page_no: int, count: int) -> int:
        """Fault pages ``[page_no, page_no+count)`` in with one read.

        Heap readahead: the span is read from the file in a single I/O and
        the pages not already resident are admitted as *cold* frames (see
        :meth:`pin`), so the readahead itself cannot evict the working
        set. Pages already in the pool keep their (possibly dirty) frames.
        Returns the number of pages actually admitted.
        """
        with self.latch:
            count = min(count, max(self._capacity - 1, 1))
            # Pages resident when the span is read. For these, `raw` may be
            # STALE: a resident frame can be dirty, with the only current
            # bytes in memory. They are never admitted from the span — not
            # even if an eviction below drops them mid-loop (the eviction's
            # write-back makes disk fresher than `raw`; a later pin must
            # re-fault them from disk). For never-resident pages `raw` is
            # current: no dirty frame existed at read time, and mid-loop
            # write-backs only touch pages that *were* resident.
            resident = {page_no + i for i in range(count)
                        if page_no + i in self._frames}
            if len(resident) == count:
                return 0
            raw = self._pagefile.read_span(page_no, count)
            batch = []
            for i in range(len(raw) // PAGE_SIZE):
                no = page_no + i
                if no in resident:
                    continue
                span_page = raw[i * PAGE_SIZE:(i + 1) * PAGE_SIZE]
                if not verify_checksum(span_page):
                    # Never admit corrupt bytes. Quarantine via the
                    # handler; the later pin of this page raises the
                    # typed error on the reader's own stack.
                    self.checksum_failures += 1
                    if self.on_corrupt_page is not None:
                        self.on_corrupt_page(no, CorruptPageError(
                            "page %d failed its checksum (readahead)" % no,
                            page_no=no))
                    continue
                # Admit at the MRU end first so evictions triggered by the
                # batch itself pick older frames, never batch-mates ...
                try:
                    frame = self._admit(no)
                except BufferPoolError:
                    break  # everything pinned — readahead is best-effort
                frame.buf[:] = span_page
                frame.cold = True
                batch.append(no)
            # ... then rotate the whole batch to the LRU end (reversed, so
            # forward page order is preserved there): by the time the next
            # prefetch needs victims, these pages have been consumed.
            for no in reversed(batch):
                self._frames.move_to_end(no, last=False)
            self.prefetches += 1
            self.readahead_pages += len(batch)
            return len(batch)

    def unpin(self, page_no: int, dirty: bool = False) -> None:
        """Release one pin on *page_no*, optionally marking it dirty."""
        frame = self._frames.get(page_no)
        if frame is None or frame.pin_count == 0:
            # The caller never pinned, so it does not hold this pin's latch.
            raise BufferPoolError("unpin of page %d that is not pinned" % page_no)
        if dirty:
            frame.dirty = True
        frame.pin_count -= 1
        self.latch.release()

    def page(self, page_no: int, write: bool = False,
             cold: bool = False) -> "_PinnedPage":
        """Context manager combining :meth:`pin` and :meth:`unpin`."""
        return _PinnedPage(self, page_no, write, cold)

    def new_page(self, page_type: int) -> int:
        """Allocate a page, format it in the pool, and return its number.

        The new page enters the pool already formatted and dirty; it is not
        left pinned.
        """
        with self.latch:
            page_no = self._pagefile.allocate_page()
            self.quarantined.discard(page_no)  # a reformat heals the page
            frame = self._frames.get(page_no)
            if frame is None:
                frame = self._admit(page_no)
            SlottedPage.format(frame.buf, page_no, page_type)
            frame.cold = False
            frame.dirty = True
            self.fresh_pages.add(page_no)
            return page_no

    def new_extent(self, page_type: int, count: int) -> list:
        """Allocate *count* physically contiguous pages, formatted.

        Like :meth:`new_page` but the pages come from one end-of-file
        extent (bypassing the free list), so a later sequential scan over
        them is a single contiguous read.
        """
        with self.latch:
            page_nos = self._pagefile.allocate_extent(count)
            for page_no in page_nos:
                self.quarantined.discard(page_no)
                frame = self._frames.get(page_no)
                if frame is None:
                    frame = self._admit(page_no)
                SlottedPage.format(frame.buf, page_no, page_type)
                frame.cold = False
                frame.dirty = True
                self.fresh_pages.add(page_no)
            return page_nos

    def ensure_allocated(self, page_no: int) -> None:
        """Extend the page file so *page_no* exists (crash recovery only)."""
        with self.latch:
            self._pagefile.ensure_allocated(page_no)

    def free_page(self, page_no: int) -> None:
        """Drop *page_no* from the pool and return it to the file free list."""
        with self.latch:
            frame = self._frames.pop(page_no, None)
            if frame is not None and frame.pin_count > 0:
                raise BufferPoolError("cannot free pinned page %d" % page_no)
            self.quarantined.discard(page_no)  # free_page rewrites it
            self.fresh_pages.discard(page_no)
            self._pagefile.free_page(page_no)

    # -- write-back ---------------------------------------------------------------

    def flush_page(self, page_no: int) -> None:
        """Write *page_no* back to disk if dirty (stays cached)."""
        with self.latch:
            if self._wal_failed():
                return  # see flush_all: the WAL rule cannot be honoured
            frame = self._frames.get(page_no)
            if frame is not None and frame.dirty:
                self._write_back(frame)

    def flush_all(self) -> None:
        """Write every dirty frame back to disk (checkpoint/close path)."""
        with self.latch:
            if self._wal_failed():
                # The WAL rule cannot be honoured (the log will not fsync);
                # writing these pages could persist changes whose log
                # records are not durable. Leave disk at the durable
                # prefix; reopening recovers to it.
                return
            for frame in self._frames.values():
                if frame.dirty:
                    self._write_back(frame)

    def sync(self) -> None:
        """fsync the underlying page file (checkpoint durability point)."""
        self._pagefile.sync()

    def dirty_page_numbers(self):
        """Page numbers of currently dirty frames (for checkpointing)."""
        with self.latch:
            return [f.page_no for f in self._frames.values() if f.dirty]

    def invalidate_all(self) -> None:
        """Drop every frame without writing back (crash simulation)."""
        with self.latch:
            for frame in self._frames.values():
                if frame.pin_count > 0:
                    raise BufferPoolError(
                        "cannot invalidate: page %d is pinned" % frame.page_no)
            self._frames.clear()

    def close(self) -> None:
        with self.latch:
            self.flush_all()
            self._frames.clear()

    # -- internals --------------------------------------------------------------

    def _admit(self, page_no: int) -> _Frame:
        while len(self._frames) >= self._capacity:
            self._evict_one()
        frame = _Frame(page_no)
        self._frames[page_no] = frame
        return frame

    def _evict_one(self) -> None:
        # With a failed WAL dirty frames must stay resident (their log
        # records will never be durable; writing them back would break
        # the WAL rule) — evict clean frames only.
        wal_dead = self._wal_failed()
        for victim_no, frame in self._frames.items():
            if frame.pin_count == 0 and not (frame.dirty and wal_dead):
                if frame.dirty:
                    self._write_back(frame)
                del self._frames[victim_no]
                self.evictions += 1
                return
        raise BufferPoolError(
            "buffer pool exhausted: all %d frames pinned" % self._capacity)

    def _wal_failed(self) -> bool:
        return self._wal is not None and self._wal.failed is not None

    def _write_back(self, frame: _Frame) -> None:
        if self._wal is not None:
            page_lsn = SlottedPage(frame.buf).page_lsn
            self._wal.flush(page_lsn)
        self._pagefile.write_page(frame.page_no, frame.buf)
        frame.dirty = False
        self.writebacks += 1

    def stats(self) -> Dict[str, int]:
        """Counters for benchmarks and tests."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": (self.hits / lookups) if lookups else 0.0,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "prefetches": self.prefetches,
            "readahead_pages": self.readahead_pages,
            "checksum_failures": self.checksum_failures,
            "quarantined": len(self.quarantined),
            "cached": len(self._frames),
            "capacity": self._capacity,
        }


class _PinnedPage:
    """Hand-rolled pin/unpin context manager (see :meth:`BufferPool.page`).

    A plain class instead of ``@contextmanager``: page fetches happen on
    every record read in the engine, where the generator machinery is
    measurable overhead.
    """

    __slots__ = ("_pool", "_page_no", "_write", "_cold")

    def __init__(self, pool: BufferPool, page_no: int, write: bool,
                 cold: bool = False):
        self._pool = pool
        self._page_no = page_no
        self._write = write
        self._cold = cold

    def __enter__(self) -> SlottedPage:
        return self._pool.pin(self._page_no, cold=self._cold)

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._pool.unpin(self._page_no, dirty=self._write)
        return False
