"""Buffer pool — an LRU cache of page frames with pin/unpin discipline.

Higher layers never touch the :class:`~repro.storage.pagefile.PageFile`
directly; they *fetch* pages from the pool, which faults them in from disk
on a miss and evicts clean-or-flushed unpinned frames when full. A fetched
page is pinned until released; pinned pages are never evicted.

The idiomatic way to use the pool is the :meth:`BufferPool.page` context
manager::

    with pool.page(page_no) as page:          # read access
        payload = page.read(slot)

    with pool.page(page_no, write=True) as page:   # marks frame dirty
        page.insert(b"...")

Dirty frames are written back on eviction, on :meth:`flush_page`, and on
:meth:`flush_all` (used by checkpoints and close). When a
:class:`~repro.storage.wal.WriteAheadLog` is attached, the pool enforces
the WAL rule: before a dirty page goes to disk, the log is flushed up to
that page's LSN.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from ..errors import BufferPoolError
from .page import PAGE_SIZE, SlottedPage, PageType
from .pagefile import PageFile

DEFAULT_POOL_SIZE = 256


class _Frame:
    __slots__ = ("page_no", "buf", "pin_count", "dirty")

    def __init__(self, page_no: int):
        self.page_no = page_no
        self.buf = bytearray(PAGE_SIZE)
        self.pin_count = 0
        self.dirty = False


class BufferPool:
    """LRU buffer pool over a :class:`PageFile`."""

    def __init__(self, pagefile: PageFile, capacity: int = DEFAULT_POOL_SIZE):
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        self._pagefile = pagefile
        self._capacity = capacity
        # OrderedDict as LRU: most recently used at the end.
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._wal = None
        #: The storage latch. One reentrant lock guards *physical* state —
        #: frames, the page file, the WAL tail, catalog caches — across the
        #: whole storage layer. :meth:`pin` acquires it and the matching
        #: :meth:`unpin` releases it, so a pinned page is never mutated or
        #: evicted under a concurrent thread. Logical isolation between
        #: transactions is the LockManager's job, not the latch's; callers
        #: must never block on the lock manager while holding the latch.
        self.latch = threading.RLock()
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def attach_wal(self, wal) -> None:
        """Attach a write-ahead log; enforces flush-log-before-page."""
        self._wal = wal

    @property
    def capacity(self) -> int:
        return self._capacity

    # -- pinning ---------------------------------------------------------------

    def pin(self, page_no: int) -> SlottedPage:
        """Pin *page_no*, faulting it in if needed, and return a page view.

        Acquires the storage latch; the matching :meth:`unpin` releases it.
        The latch is reentrant, so nested pins from one thread are fine.
        """
        self.latch.acquire()
        frame = self._frames.get(page_no)
        if frame is not None:
            self.hits += 1
            self._frames.move_to_end(page_no)
        else:
            self.misses += 1
            frame = self._admit(page_no)
            self._pagefile.read_page(page_no, frame.buf)
        frame.pin_count += 1
        return SlottedPage(frame.buf)

    def unpin(self, page_no: int, dirty: bool = False) -> None:
        """Release one pin on *page_no*, optionally marking it dirty."""
        frame = self._frames.get(page_no)
        if frame is None or frame.pin_count == 0:
            # The caller never pinned, so it does not hold this pin's latch.
            raise BufferPoolError("unpin of page %d that is not pinned" % page_no)
        if dirty:
            frame.dirty = True
        frame.pin_count -= 1
        self.latch.release()

    def page(self, page_no: int, write: bool = False) -> "_PinnedPage":
        """Context manager combining :meth:`pin` and :meth:`unpin`."""
        return _PinnedPage(self, page_no, write)

    def new_page(self, page_type: int) -> int:
        """Allocate a page, format it in the pool, and return its number.

        The new page enters the pool already formatted and dirty; it is not
        left pinned.
        """
        with self.latch:
            page_no = self._pagefile.allocate_page()
            frame = self._frames.get(page_no)
            if frame is None:
                frame = self._admit(page_no)
            SlottedPage.format(frame.buf, page_no, page_type)
            frame.dirty = True
            return page_no

    def ensure_allocated(self, page_no: int) -> None:
        """Extend the page file so *page_no* exists (crash recovery only)."""
        with self.latch:
            self._pagefile.ensure_allocated(page_no)

    def free_page(self, page_no: int) -> None:
        """Drop *page_no* from the pool and return it to the file free list."""
        with self.latch:
            frame = self._frames.pop(page_no, None)
            if frame is not None and frame.pin_count > 0:
                raise BufferPoolError("cannot free pinned page %d" % page_no)
            self._pagefile.free_page(page_no)

    # -- write-back ---------------------------------------------------------------

    def flush_page(self, page_no: int) -> None:
        """Write *page_no* back to disk if dirty (stays cached)."""
        with self.latch:
            frame = self._frames.get(page_no)
            if frame is not None and frame.dirty:
                self._write_back(frame)

    def flush_all(self) -> None:
        """Write every dirty frame back to disk (checkpoint/close path)."""
        with self.latch:
            for frame in self._frames.values():
                if frame.dirty:
                    self._write_back(frame)

    def dirty_page_numbers(self):
        """Page numbers of currently dirty frames (for checkpointing)."""
        with self.latch:
            return [f.page_no for f in self._frames.values() if f.dirty]

    def invalidate_all(self) -> None:
        """Drop every frame without writing back (crash simulation)."""
        with self.latch:
            for frame in self._frames.values():
                if frame.pin_count > 0:
                    raise BufferPoolError(
                        "cannot invalidate: page %d is pinned" % frame.page_no)
            self._frames.clear()

    def close(self) -> None:
        with self.latch:
            self.flush_all()
            self._frames.clear()

    # -- internals --------------------------------------------------------------

    def _admit(self, page_no: int) -> _Frame:
        while len(self._frames) >= self._capacity:
            self._evict_one()
        frame = _Frame(page_no)
        self._frames[page_no] = frame
        return frame

    def _evict_one(self) -> None:
        for victim_no, frame in self._frames.items():
            if frame.pin_count == 0:
                if frame.dirty:
                    self._write_back(frame)
                del self._frames[victim_no]
                self.evictions += 1
                return
        raise BufferPoolError(
            "buffer pool exhausted: all %d frames pinned" % self._capacity)

    def _write_back(self, frame: _Frame) -> None:
        if self._wal is not None:
            page_lsn = SlottedPage(frame.buf).page_lsn
            self._wal.flush(page_lsn)
        self._pagefile.write_page(frame.page_no, frame.buf)
        frame.dirty = False
        self.writebacks += 1

    def stats(self) -> Dict[str, int]:
        """Counters for benchmarks and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "cached": len(self._frames),
            "capacity": self._capacity,
        }


class _PinnedPage:
    """Hand-rolled pin/unpin context manager (see :meth:`BufferPool.page`).

    A plain class instead of ``@contextmanager``: page fetches happen on
    every record read in the engine, where the generator machinery is
    measurable overhead.
    """

    __slots__ = ("_pool", "_page_no", "_write")

    def __init__(self, pool: BufferPool, page_no: int, write: bool):
        self._pool = pool
        self._page_no = page_no
        self._write = write

    def __enter__(self) -> SlottedPage:
        return self._pool.pin(self._page_no)

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._pool.unpin(self._page_no, dirty=self._write)
        return False
