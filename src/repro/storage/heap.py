"""Heap files — unordered record storage with stable record ids.

A heap file is a chain of slotted pages. Records are addressed by a
:class:`RID` (page number, slot). RIDs are stable for the life of the
record:

* An update that no longer fits on the record's home page relocates the
  payload and leaves a 15-byte *forwarding stub* in the home slot, so the
  RID keeps working.
* A record bigger than a page spills into a chain of *overflow pages*; the
  home slot stores an overflow stub.

Record wire format: ``kind:u8 | length:u32 | payload``, zero-padded to at
least :data:`MIN_RECORD_SIZE` bytes. The padding guarantees a forwarding
stub always fits in place of any record, so forwarding can never fail.

All mutations go through :class:`~repro.storage.journal.Journal` edits and
are therefore atomic and durable under the enclosing transaction.
"""

from __future__ import annotations

import struct
from typing import Iterator, NamedTuple, Optional, Tuple

from ..errors import PageError, PageFullError, StorageError
from .journal import Journal
from .page import (HEADER_SIZE, MAX_RECORD_SIZE, NO_PAGE, PAGE_SIZE,
                   PageType, SlottedPage)

_REC_HDR = struct.Struct("<BI")
_FORWARD = struct.Struct("<QH")
_OVERFLOW = struct.Struct("<QI")
_OVF_USED = struct.Struct("<H")

#: Every record is padded to this size so a forwarding stub always fits.
MIN_RECORD_SIZE = _REC_HDR.size + _FORWARD.size  # 15 bytes

#: Payload capacity of one overflow page.
OVERFLOW_CAPACITY = PAGE_SIZE - HEADER_SIZE - _OVF_USED.size

#: Largest payload stored inline on the home page.
MAX_INLINE_PAYLOAD = MAX_RECORD_SIZE - _REC_HDR.size

KIND_DATA = 0        # payload follows inline
KIND_FORWARD = 1     # payload lives at another RID (a KIND_MOVED record)
KIND_MOVED = 2       # relocated payload; skipped by scans, found via stubs
KIND_OVERFLOW = 3    # payload lives in an overflow page chain


class RID(NamedTuple):
    """Stable record id: (page_no, slot)."""

    page_no: int
    slot: int

    def __repr__(self) -> str:
        return "RID(%d:%d)" % (self.page_no, self.slot)


def _pack_record(kind: int, payload: bytes) -> bytes:
    raw = _REC_HDR.pack(kind, len(payload)) + payload
    if len(raw) < MIN_RECORD_SIZE:
        raw += b"\x00" * (MIN_RECORD_SIZE - len(raw))
    return raw


def _unpack_record(raw: bytes) -> Tuple[int, bytes]:
    kind, length = _REC_HDR.unpack_from(raw, 0)
    return kind, raw[_REC_HDR.size:_REC_HDR.size + length]


class HeapFile:
    """A chain of heap pages storing variable-length records."""

    def __init__(self, journal: Journal, first_page: int,
                 extent: int = 1, find_tail: bool = True):
        self._journal = journal
        self._pool = journal._pool
        self._first_page = first_page
        #: Pages added per :meth:`_grow`. With ``extent > 1`` growth
        #: allocates physically contiguous end-of-file runs, so a cluster's
        #: records land together and sequential scans read whole spans.
        self._extent = max(1, extent)
        # Session-local cache of pages believed to have free room. Not
        # persisted: correctness never depends on it, only insert locality.
        self._free_candidates: list = []
        # ``find_tail=False`` is the read-only salvage mode: locating the
        # tail walks the whole chain, which is exactly what a corrupt
        # mid-chain page makes impossible. Such a heap must never insert.
        self._tail_page = self._find_tail() if find_tail else first_page

    @classmethod
    def create(cls, journal: Journal, txn: int,
               extent: int = 1) -> "HeapFile":
        """Allocate a fresh single-page heap file."""
        page_no = journal._pool.new_page(PageType.HEAP)
        with journal.edit(txn, page_no):
            pass  # formatting happened in new_page; edit stamps nothing
        return cls(journal, page_no, extent=extent)

    @property
    def first_page(self) -> int:
        return self._first_page

    def _find_tail(self) -> int:
        page_no = self._first_page
        while True:
            with self._pool.page(page_no) as page:
                nxt = page.next_page
            if nxt == NO_PAGE:
                return page_no
            page_no = nxt

    # -- public operations --------------------------------------------------

    def insert(self, txn: int, payload: bytes) -> RID:
        """Store *payload*; return its stable RID."""
        if len(payload) > MAX_INLINE_PAYLOAD:
            first_ovf = self._write_overflow_chain(txn, payload)
            record = _pack_record(KIND_OVERFLOW,
                                  _OVERFLOW.pack(first_ovf, len(payload)))
        else:
            record = _pack_record(KIND_DATA, payload)
        return self._place(txn, record)

    def read(self, rid: RID) -> bytes:
        """Return the payload stored at *rid*, following indirections."""
        kind, body = self._read_raw(rid)
        if kind in (KIND_DATA, KIND_MOVED):
            return body
        if kind == KIND_FORWARD:
            target = RID(*_FORWARD.unpack(body))
            kind2, body2 = self._read_raw(target)
            if kind2 != KIND_MOVED:
                raise StorageError("dangling forward stub at %r" % (rid,))
            return body2
        if kind == KIND_OVERFLOW:
            first_ovf, total = _OVERFLOW.unpack(body)
            return self._read_overflow_chain(first_ovf, total)
        raise StorageError("unknown record kind %d at %r" % (kind, rid))

    def page_lsn(self, page_no: int) -> int:
        """Current LSN of *page_no* (token semantics of read_with_lsn)."""
        with self._pool.page(page_no) as page:
            return page.page_lsn

    def read_with_lsn(self, rid: RID) -> Tuple[bytes, int]:
        """Like :meth:`read`, also returning the *home* page's LSN.

        The home-page LSN is a physical version token for the record:
        every mutation of the record — in-place update, relocation,
        overflow rewrite, delete — edits the home page (that is where the
        slot or stub lives), so a later LSN mismatch is exactly "this
        record may have changed".
        """
        with self._pool.page(rid.page_no) as page:
            raw = page.read(rid.slot)
            lsn = page.page_lsn
        kind, body = _unpack_record(raw)
        if kind in (KIND_DATA, KIND_MOVED):
            return body, lsn
        if kind == KIND_FORWARD:
            target = RID(*_FORWARD.unpack(body))
            kind2, body2 = self._read_raw(target)
            if kind2 != KIND_MOVED:
                raise StorageError("dangling forward stub at %r" % (rid,))
            return body2, lsn
        if kind == KIND_OVERFLOW:
            first_ovf, total = _OVERFLOW.unpack(body)
            return self._read_overflow_chain(first_ovf, total), lsn
        raise StorageError("unknown record kind %d at %r" % (kind, rid))

    def update(self, txn: int, rid: RID, payload: bytes) -> None:
        """Replace the payload at *rid*; the RID remains valid."""
        kind, body = self._read_raw(rid)
        # Release any indirect storage held by the old record.
        if kind == KIND_FORWARD:
            target = RID(*_FORWARD.unpack(body))
            self._delete_slot(txn, target)
        elif kind == KIND_OVERFLOW:
            first_ovf, _ = _OVERFLOW.unpack(body)
            self._free_overflow_chain(txn, first_ovf)

        if len(payload) > MAX_INLINE_PAYLOAD:
            # An overflow stub is MIN_RECORD_SIZE bytes, and every record is
            # at least that large, so this in-place update cannot fail.
            first_ovf = self._write_overflow_chain(txn, payload)
            record = _pack_record(KIND_OVERFLOW,
                                  _OVERFLOW.pack(first_ovf, len(payload)))
            with self._journal.edit(txn, rid.page_no) as page:
                page.update(rid.slot, record)
            return
        record = _pack_record(KIND_DATA, payload)
        try:
            with self._journal.edit(txn, rid.page_no) as page:
                page.update(rid.slot, record)
            self._free_candidates.append(rid.page_no)
            return
        except PageFullError:
            pass
        # Doesn't fit at home: relocate and leave a forwarding stub. The
        # stub is MIN_RECORD_SIZE bytes, never larger than the old record.
        moved_rid = self._place(txn, _pack_record(KIND_MOVED, payload))
        stub = _pack_record(KIND_FORWARD, _FORWARD.pack(*moved_rid))
        with self._journal.edit(txn, rid.page_no) as page:
            page.update(rid.slot, stub)

    def delete(self, txn: int, rid: RID) -> None:
        """Delete the record at *rid*, releasing indirect storage."""
        kind, body = self._read_raw(rid)
        if kind == KIND_FORWARD:
            target = RID(*_FORWARD.unpack(body))
            self._delete_slot(txn, target)
        elif kind == KIND_OVERFLOW:
            first_ovf, _ = _OVERFLOW.unpack(body)
            self._free_overflow_chain(txn, first_ovf)
        self._delete_slot(txn, rid)

    def scan(self) -> Iterator[Tuple[RID, bytes]]:
        """Yield ``(rid, payload)`` for every record, in physical order.

        Relocated bodies (KIND_MOVED) are reported at their *home* RID via
        the forwarding stub, not at their physical location. The scan
        tolerates records inserted behind the cursor during iteration (the
        fixpoint-query requirement flows down to this property).
        """
        page_no = self._first_page
        while page_no != NO_PAGE:
            slot = 0
            while True:
                with self._pool.page(page_no) as page:
                    if slot >= page.slot_count:
                        next_page = page.next_page
                        break
                    try:
                        raw = page.read(slot)
                    except PageError:
                        slot += 1
                        continue
                kind, body = _unpack_record(raw)
                rid = RID(page_no, slot)
                slot += 1
                if kind == KIND_DATA:
                    yield rid, body
                elif kind == KIND_FORWARD:
                    yield rid, self.read(rid)
                elif kind == KIND_OVERFLOW:
                    first_ovf, total = _OVERFLOW.unpack(body)
                    yield rid, self._read_overflow_chain(first_ovf, total)
                # KIND_MOVED: skipped, reached via its stub
            page_no = next_page

    #: Pages fetched per readahead request during batched scans.
    READAHEAD = 8

    def read_page_records(self, page_no: int, start_slot: int = 0):
        """Decode-free bulk read of one page under a single pin.

        Returns ``(records, slot_count, next_page, page_lsn)`` where
        *records* is a list of ``(RID, payload)`` for the live records in
        slots ``[start_slot, slot_count)``. Forwarding stubs and overflow
        stubs are resolved *after* the home pin is released (their chains
        take their own short pins), so no pin spans the whole batch.
        ``page_lsn`` is the page's physical version — any later mutation
        of any record homed here bumps it, which is what makes the LSN a
        safe cache-validity token for every payload in *records*.
        """
        out = []
        indirect = []
        with self._pool.page(page_no, cold=True) as page:
            slot_count = page.slot_count
            next_page = page.next_page
            page_lsn = page.page_lsn
            for slot in range(start_slot, slot_count):
                try:
                    raw = page.read(slot)
                except PageError:
                    continue
                kind, body = _unpack_record(raw)
                if kind == KIND_DATA:
                    out.append((RID(page_no, slot), body))
                elif kind in (KIND_FORWARD, KIND_OVERFLOW):
                    out.append(None)
                    indirect.append((len(out) - 1, RID(page_no, slot),
                                     kind, body))
                # KIND_MOVED: skipped, reached via its stub
        for i, rid, kind, body in indirect:
            if kind == KIND_FORWARD:
                out[i] = (rid, self.read(rid))
            else:
                first_ovf, total = _OVERFLOW.unpack(body)
                out[i] = (rid, self._read_overflow_chain(first_ovf, total))
        return out, slot_count, next_page, page_lsn

    def scan_batches(self):
        """Page-at-a-time scan: yield ``(page_no, page_lsn, records, start)``.

        *records* is the :meth:`read_page_records` list for slots
        ``[start, slot_count)``. Costs ~2 pins per page (the batch read
        plus one re-check) instead of one pin per slot, and issues
        readahead for the pages ahead of the cursor.

        The fixpoint property (records inserted behind the cursor during
        iteration are visited) survives batching because of the re-check:
        after the consumer processes a batch, the page is read again from
        the previous high-water slot, so same-page inserts made while the
        batch was being consumed show up as a follow-up batch, and the
        chain pointer is re-read each pass so newly grown tail pages are
        walked too.
        """
        page_no = self._first_page
        span_lo = span_hi = -1  # last readahead window
        while page_no != NO_PAGE:
            if not span_lo <= page_no < span_hi:
                self._pool.prefetch(page_no, self.READAHEAD)
                span_lo, span_hi = page_no, page_no + self.READAHEAD
            start = 0
            while True:
                records, slot_count, next_page, lsn = \
                    self.read_page_records(page_no, start)
                if slot_count <= start:
                    break
                if records:
                    yield page_no, lsn, records, start
                start = slot_count
            page_no = next_page

    def count(self) -> int:
        """Number of live records (scans the file)."""
        return sum(1 for _ in self.scan())

    # -- placement ----------------------------------------------------------

    def _place(self, txn: int, record: bytes) -> RID:
        """Find a page with room for *record* and insert it."""
        # 1. recently-seen pages with space
        while self._free_candidates:
            page_no = self._free_candidates[-1]
            with self._pool.page(page_no) as page:
                if page.room_for(len(record)):
                    break
            self._free_candidates.pop()
        else:
            page_no = self._tail_page
            with self._pool.page(page_no) as page:
                has_room = page.room_for(len(record))
            if not has_room:
                page_no = self._grow(txn)
        with self._journal.edit(txn, page_no) as page:
            slot = page.insert(record)
        return RID(page_no, slot)

    def _grow(self, txn: int, force_extent: bool = False) -> int:
        """Append fresh page(s) to the chain; return the first new number.

        With an extent size > 1 a whole contiguous run is allocated and
        linked at once; inserts fill it front to back (via the
        free-candidate stack), so the chain order matches the physical
        order and readahead stays effective. While the page file still
        has freed pages, growth recycles those one at a time instead
        (keeping the file bounded); *force_extent* overrides this for
        vacuum's reclustering rewrite, where contiguity is the point.
        """
        if self._extent <= 1 or \
                (self._pool.has_free_pages and not force_extent):
            new_no = self._pool.new_page(PageType.HEAP)
            with self._journal.edit(txn, self._tail_page) as tail:
                tail.next_page = new_no
            self._tail_page = new_no
            return new_no
        pages = self._pool.new_extent(PageType.HEAP, self._extent)
        with self._journal.edit(txn, self._tail_page) as tail:
            tail.next_page = pages[0]
        for i in range(len(pages) - 1):
            with self._journal.edit(txn, pages[i]) as page:
                page.next_page = pages[i + 1]
        with self._journal.edit(txn, pages[-1]):
            pass  # log the reserve tail's format: the chain now points at
            # it, so recovery must be able to rebuild it from the log
        self._tail_page = pages[-1]
        # LIFO stack peeks at [-1]: reversed() makes pages[1] the first
        # candidate tried, so the run fills in physical order.
        self._free_candidates.extend(reversed(pages[1:]))
        return pages[0]

    def preallocate(self, txn: int, pages: int) -> None:
        """Grow the chain by one contiguous *pages*-page extent now.

        Used by vacuum to reserve the rewrite target up front so the
        copied records land in one physical run instead of interleaving
        with the pages of other structures grown during the same pass.
        """
        if pages < 1:
            return
        saved = self._extent
        self._extent = pages
        try:
            first = self._grow(txn, force_extent=True)
        finally:
            self._extent = saved
        self._free_candidates.append(first)

    def _delete_slot(self, txn: int, rid: RID) -> None:
        with self._journal.edit(txn, rid.page_no) as page:
            page.delete(rid.slot)
        self._free_candidates.append(rid.page_no)

    def _read_raw(self, rid: RID) -> Tuple[int, bytes]:
        with self._pool.page(rid.page_no) as page:
            raw = page.read(rid.slot)
        return _unpack_record(raw)

    # -- overflow chains --------------------------------------------------------

    def _write_overflow_chain(self, txn: int, payload: bytes) -> int:
        """Write *payload* across fresh overflow pages; return the first."""
        chunks = [payload[i:i + OVERFLOW_CAPACITY]
                  for i in range(0, len(payload), OVERFLOW_CAPACITY)]
        page_nos = [self._pool.new_page(PageType.OVERFLOW) for _ in chunks]
        for i, (page_no, chunk) in enumerate(zip(page_nos, chunks)):
            nxt = page_nos[i + 1] if i + 1 < len(page_nos) else NO_PAGE
            with self._journal.edit(txn, page_no) as page:
                page.next_page = nxt
                _OVF_USED.pack_into(page.buf, HEADER_SIZE, len(chunk))
                start = HEADER_SIZE + _OVF_USED.size
                page.buf[start:start + len(chunk)] = chunk
        return page_nos[0]

    def _read_overflow_chain(self, first_page: int, total: int) -> bytes:
        parts = []
        page_no = first_page
        remaining = total
        while page_no != NO_PAGE and remaining > 0:
            with self._pool.page(page_no) as page:
                used = _OVF_USED.unpack_from(page.buf, HEADER_SIZE)[0]
                start = HEADER_SIZE + _OVF_USED.size
                parts.append(bytes(page.buf[start:start + used]))
                page_no = page.next_page
            remaining -= used
        data = b"".join(parts)
        if len(data) != total:
            raise StorageError("overflow chain truncated: %d of %d bytes"
                               % (len(data), total))
        return data

    def _free_overflow_chain(self, txn: int, first_page: int) -> None:
        """Return overflow pages to the free list — at commit.

        The frees are deferred through the journal so that aborting the
        transaction (whose undo restores the overflow stub) can never
        leave the stub pointing at recycled pages.
        """
        page_no = first_page
        while page_no != NO_PAGE:
            with self._pool.page(page_no) as page:
                nxt = page.next_page
            self._journal.free_page_deferred(txn, page_no)
            page_no = nxt
