"""Self-describing binary codec for database values.

The storage engine stores object states as flat byte strings. This module
provides the tagged binary encoding used everywhere a Python value must be
written to a page: object states, index keys, catalog entries, and WAL
payloads.

The format is deliberately simple and fully self-describing: a one-byte type
tag followed by a fixed- or length-prefixed payload. Supported value types
are ``None``, booleans, 64-bit signed integers, big integers, doubles,
strings, bytes, datetimes (as epoch micros), and the containers list, tuple,
dict, set and frozenset (recursively). Two special tags encode persistent
object references: OID (a plain object id) and VREF (a versioned reference,
see :mod:`repro.core.versions`); the codec treats them as opaque integer
triples and the object layer interprets them.

A separate *orderable* key encoding (:func:`encode_key`) produces byte
strings whose lexicographic order matches the natural order of the encoded
values. B+tree pages compare keys with plain ``bytes`` comparison, so this
property is what makes range scans work.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

from ..errors import CodecError

# Type tags. Stable on-disk values: never renumber, only append.
TAG_NONE = 0x00
TAG_FALSE = 0x01
TAG_TRUE = 0x02
TAG_INT64 = 0x03
TAG_BIGINT = 0x04
TAG_FLOAT = 0x05
TAG_STR = 0x06
TAG_BYTES = 0x07
TAG_LIST = 0x08
TAG_TUPLE = 0x09
TAG_DICT = 0x0A
TAG_SET = 0x0B
TAG_FROZENSET = 0x0C
TAG_OID = 0x0D
TAG_VREF = 0x0E

#: First tag number available to extension types (see register_extension).
TAG_EXT_BASE = 0x40

_I64 = struct.Struct("<q")
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_OID = struct.Struct("<qqq")

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


class OidTriple(tuple):
    """Opaque (cluster_id, serial, version) triple used by the object layer.

    The codec round-trips these so the storage engine never needs to import
    the object layer. ``version`` is 0 for unversioned references.
    """

    __slots__ = ()

    def __new__(cls, cluster_id: int, serial: int, version: int = 0):
        return super().__new__(cls, (int(cluster_id), int(serial), int(version)))

    @property
    def cluster_id(self) -> int:
        return self[0]

    @property
    def serial(self) -> int:
        return self[1]

    @property
    def version(self) -> int:
        return self[2]


class VrefTriple(OidTriple):
    """A specific (pinned) versioned reference; distinct tag on disk."""

    __slots__ = ()


# Extension types: higher layers (e.g. the object layer's Oid/Vref) register
# their value classes here so the storage engine can persist them without
# importing those layers. Each extension maps a class to a tag plus
# to-/from-state converters; the state must itself be codec-encodable.
_EXT_BY_CLASS: dict = {}
_EXT_BY_TAG: dict = {}


def register_extension(tag: int, cls: type, to_state, from_state,
                       key_state=None) -> None:
    """Register *cls* as an encodable extension type.

    *tag* must be >= TAG_EXT_BASE and stable across releases (it goes on
    disk). *to_state(value)* returns an encodable representation;
    *from_state(state)* rebuilds the value. *key_state*, if given, returns
    an order-preserving key representation so values of the class can be
    used as index keys. Re-registering the same tag for the same class is
    a no-op; conflicting registrations raise CodecError.
    """
    if tag < TAG_EXT_BASE or tag > 0xFF:
        raise CodecError("extension tag 0x%02x out of range" % tag)
    existing = _EXT_BY_TAG.get(tag)
    if existing is not None and existing[0] is not cls:
        raise CodecError("extension tag 0x%02x already registered for %s"
                         % (tag, existing[0].__name__))
    _EXT_BY_TAG[tag] = (cls, from_state)
    _EXT_BY_CLASS[cls] = (tag, to_state, key_state)


def encode_value(value: Any) -> bytes:
    """Encode *value* into the tagged binary format.

    Raises :class:`CodecError` for unsupported types. Containers are encoded
    recursively; dict keys may be any encodable value.
    """
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Decode a byte string produced by :func:`encode_value`."""
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise CodecError(
            "trailing garbage after value: %d of %d bytes consumed"
            % (offset, len(data)))
    return value


def decode_prefix(data: bytes) -> Tuple[Any, int]:
    """Decode one value from the front of *data*, ignoring what follows.

    Returns ``(value, consumed)``. For callers that store an encoded value
    inside a larger, possibly padded buffer (e.g. fixed-size index
    records).
    """
    return _decode_from(data, 0)


# Encoding dispatches on exact type first (one dict lookup instead of a
# ten-branch isinstance chain — this is the hottest loop in the engine:
# every page record, WAL payload and index bucket passes through it).
# Subclasses, extension types and the odd bytearray fall through to
# _encode_slow, which preserves the original semantics.

def _encode_into(out: bytearray, value: Any) -> None:
    enc = _ENCODERS.get(value.__class__)
    if enc is not None:
        enc(out, value)
    else:
        _encode_slow(out, value)


def _enc_none(out, value):
    out.append(TAG_NONE)


def _enc_bool(out, value):
    out.append(TAG_TRUE if value else TAG_FALSE)


def _enc_int(out, value):
    if _INT64_MIN <= value <= _INT64_MAX:
        out.append(TAG_INT64)
        out += _I64.pack(value)
    else:
        raw = value.to_bytes(
            (value.bit_length() + 8) // 8, "little", signed=True)
        out.append(TAG_BIGINT)
        out += _U32.pack(len(raw))
        out += raw


def _enc_float(out, value):
    out.append(TAG_FLOAT)
    out += _F64.pack(value)


def _enc_str(out, value):
    raw = value.encode("utf-8")
    out.append(TAG_STR)
    out += _U32.pack(len(raw))
    out += raw


def _enc_bytes(out, value):
    out.append(TAG_BYTES)
    out += _U32.pack(len(value))
    out += value


def _enc_list(out, value):
    out.append(TAG_LIST)
    out += _U32.pack(len(value))
    encoders = _ENCODERS
    for item in value:
        enc = encoders.get(item.__class__)
        if enc is not None:
            enc(out, item)
        else:
            _encode_slow(out, item)


def _enc_tuple(out, value):
    out.append(TAG_TUPLE)
    out += _U32.pack(len(value))
    encoders = _ENCODERS
    for item in value:
        enc = encoders.get(item.__class__)
        if enc is not None:
            enc(out, item)
        else:
            _encode_slow(out, item)


def _enc_dict(out, value):
    out.append(TAG_DICT)
    out += _U32.pack(len(value))
    encoders = _ENCODERS
    for key, item in value.items():
        enc = encoders.get(key.__class__)
        if enc is not None:
            enc(out, key)
        else:
            _encode_slow(out, key)
        enc = encoders.get(item.__class__)
        if enc is not None:
            enc(out, item)
        else:
            _encode_slow(out, item)


def _enc_set(out, value):
    out.append(TAG_SET)
    out += _U32.pack(len(value))
    for item in _stable_order(value):
        _encode_into(out, item)


def _enc_frozenset(out, value):
    out.append(TAG_FROZENSET)
    out += _U32.pack(len(value))
    for item in _stable_order(value):
        _encode_into(out, item)


def _enc_oid(out, value):
    out.append(TAG_OID)
    out += _OID.pack(*value)


def _enc_vref(out, value):
    out.append(TAG_VREF)
    out += _OID.pack(*value)


_ENCODERS = {
    type(None): _enc_none,
    bool: _enc_bool,
    int: _enc_int,
    float: _enc_float,
    str: _enc_str,
    bytes: _enc_bytes,
    list: _enc_list,
    tuple: _enc_tuple,
    dict: _enc_dict,
    set: _enc_set,
    frozenset: _enc_frozenset,
    OidTriple: _enc_oid,
    VrefTriple: _enc_vref,
}


def _encode_slow(out: bytearray, value: Any) -> None:
    ext = _EXT_BY_CLASS.get(type(value))
    if ext is not None:
        tag, to_state, _ = ext
        out.append(tag)
        _encode_into(out, to_state(value))
        return
    # bool must be tested before int: bool is a subclass of int.
    if value is None:
        out.append(TAG_NONE)
    elif value is False:
        out.append(TAG_FALSE)
    elif value is True:
        out.append(TAG_TRUE)
    elif isinstance(value, VrefTriple):
        _enc_vref(out, value)
    elif isinstance(value, OidTriple):
        _enc_oid(out, value)
    elif isinstance(value, int):
        _enc_int(out, value)
    elif isinstance(value, float):
        _enc_float(out, value)
    elif isinstance(value, str):
        _enc_str(out, value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        _enc_bytes(out, bytes(value))
    elif isinstance(value, list):
        _enc_list(out, value)
    elif isinstance(value, tuple):
        _enc_tuple(out, value)
    elif isinstance(value, dict):
        _enc_dict(out, value)
    elif isinstance(value, frozenset):
        _enc_frozenset(out, value)
    elif isinstance(value, set):
        _enc_set(out, value)
    else:
        raise CodecError("cannot encode value of type %s" % type(value).__name__)


def _stable_order(items):
    """Order set elements deterministically so encodings are reproducible."""
    try:
        return sorted(items)
    except TypeError:
        return sorted(items, key=lambda x: (type(x).__name__, repr(x)))


# Decoding dispatches on the tag byte through a 256-entry table (one
# index instead of a branch chain); extension tags and unknown tags take
# the slow path.

def _decode_from(data: bytes, offset: int) -> Tuple[Any, int]:
    try:
        tag = data[offset]
    except IndexError:
        raise CodecError("truncated value: no tag byte at offset %d" % offset)
    dec = _DECODERS[tag]
    if dec is None:
        return _decode_ext(data, offset + 1, tag)
    return dec(data, offset + 1)


def _dec_none(data, offset):
    return None, offset


def _dec_false(data, offset):
    return False, offset


def _dec_true(data, offset):
    return True, offset


def _dec_int64(data, offset):
    _check(data, offset, 8)
    return _I64.unpack_from(data, offset)[0], offset + 8


def _dec_bigint(data, offset):
    length, offset = _read_length(data, offset)
    _check(data, offset, length)
    raw = data[offset:offset + length]
    return int.from_bytes(raw, "little", signed=True), offset + length


def _dec_float(data, offset):
    _check(data, offset, 8)
    return _F64.unpack_from(data, offset)[0], offset + 8


def _dec_str(data, offset):
    length, offset = _read_length(data, offset)
    _check(data, offset, length)
    try:
        text = data[offset:offset + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError("invalid utf-8 in string payload: %s" % exc)
    return text, offset + length


def _dec_bytes(data, offset):
    length, offset = _read_length(data, offset)
    _check(data, offset, length)
    return bytes(data[offset:offset + length]), offset + length


def _dec_list(data, offset):
    count, offset = _read_length(data, offset)
    items = []
    append = items.append
    for _ in range(count):
        item, offset = _decode_from(data, offset)
        append(item)
    return items, offset


def _dec_tuple(data, offset):
    items, offset = _dec_list(data, offset)
    return tuple(items), offset


def _dec_set(data, offset):
    items, offset = _dec_list(data, offset)
    return set(items), offset


def _dec_frozenset(data, offset):
    items, offset = _dec_list(data, offset)
    return frozenset(items), offset


def _dec_dict(data, offset):
    count, offset = _read_length(data, offset)
    result = {}
    for _ in range(count):
        key, offset = _decode_from(data, offset)
        item, offset = _decode_from(data, offset)
        result[key] = item
    return result, offset


def _dec_oid(data, offset):
    _check(data, offset, 24)
    return OidTriple(*_OID.unpack_from(data, offset)), offset + 24


def _dec_vref(data, offset):
    _check(data, offset, 24)
    return VrefTriple(*_OID.unpack_from(data, offset)), offset + 24


_DECODERS = [None] * 256
_DECODERS[TAG_NONE] = _dec_none
_DECODERS[TAG_FALSE] = _dec_false
_DECODERS[TAG_TRUE] = _dec_true
_DECODERS[TAG_INT64] = _dec_int64
_DECODERS[TAG_BIGINT] = _dec_bigint
_DECODERS[TAG_FLOAT] = _dec_float
_DECODERS[TAG_STR] = _dec_str
_DECODERS[TAG_BYTES] = _dec_bytes
_DECODERS[TAG_LIST] = _dec_list
_DECODERS[TAG_TUPLE] = _dec_tuple
_DECODERS[TAG_DICT] = _dec_dict
_DECODERS[TAG_SET] = _dec_set
_DECODERS[TAG_FROZENSET] = _dec_frozenset
_DECODERS[TAG_OID] = _dec_oid
_DECODERS[TAG_VREF] = _dec_vref


def _decode_ext(data: bytes, offset: int, tag: int) -> Tuple[Any, int]:
    ext = _EXT_BY_TAG.get(tag)
    if ext is not None:
        _cls, from_state = ext
        state, offset = _decode_from(data, offset)
        return from_state(state), offset
    raise CodecError("unknown type tag 0x%02x at offset %d" % (tag, offset - 1))


def _read_length(data: bytes, offset: int) -> Tuple[int, int]:
    _check(data, offset, 4)
    return _U32.unpack_from(data, offset)[0], offset + 4


def _check(data: bytes, offset: int, need: int) -> None:
    if offset + need > len(data):
        raise CodecError(
            "truncated value: need %d bytes at offset %d, have %d"
            % (need, offset, len(data) - offset))


# ---------------------------------------------------------------------------
# Order-preserving key encoding
# ---------------------------------------------------------------------------
#
# B+tree pages store keys as raw bytes and compare them lexicographically.
# encode_key maps None < booleans < numbers < strings < bytes < tuples such
# that byte order == value order within each family, and numbers (ints and
# floats) compare by numeric value across the two types.

_KIND_NONE = 0x10
_KIND_BOOL = 0x20
_KIND_NUMBER = 0x30
_KIND_STR = 0x40
_KIND_BYTES = 0x50
_KIND_TUPLE = 0x60
_KIND_EXT = 0x70

_F64_BE = struct.Struct(">d")


def encode_key(value: Any) -> bytes:
    """Encode *value* as an order-preserving byte string.

    ``encode_key(a) < encode_key(b)`` iff ``a < b`` under the total order
    None < False < True < numbers < strings < bytes < tuples (tuples compare
    element-wise). Ints larger than 2**63 are not supported as keys.
    """
    out = bytearray()
    _encode_key_into(out, value)
    return bytes(out)


def _encode_key_into(out: bytearray, value: Any) -> None:
    ext = _EXT_BY_CLASS.get(type(value))
    if ext is not None:
        tag, _, key_state = ext
        if key_state is None:
            raise CodecError("type %s cannot be used as an index key"
                             % type(value).__name__)
        out.append(_KIND_EXT)
        out.append(tag)
        _encode_key_into(out, key_state(value))
        return
    if value is None:
        out.append(_KIND_NONE)
    elif isinstance(value, bool):
        out.append(_KIND_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, (int, float)):
        out.append(_KIND_NUMBER)
        out += _encode_number_key(value)
    elif isinstance(value, str):
        out.append(_KIND_STR)
        out += _escape_terminated(value.encode("utf-8"))
    elif isinstance(value, (bytes, bytearray, memoryview)):
        out.append(_KIND_BYTES)
        out += _escape_terminated(bytes(value))
    elif isinstance(value, tuple):
        out.append(_KIND_TUPLE)
        for item in value:
            out.append(0x01)  # element-follows marker: > terminator 0x00
            _encode_key_into(out, item)
        out.append(0x00)  # terminator: shorter tuple sorts first
    else:
        raise CodecError(
            "type %s cannot be used as an index key" % type(value).__name__)


def _encode_number_key(value) -> bytes:
    """Encode a number so byte order matches numeric order.

    Uses the classic IEEE-754 trick: interpret the double's bits, flip the
    sign bit for positives, flip all bits for negatives. Ints within 2**53
    are exact as doubles; larger ints raise to avoid silent collisions.
    """
    if isinstance(value, int) and abs(value) > 2 ** 53:
        raise CodecError("integer key out of exactly-representable range: %d" % value)
    if value == 0:
        value = 0.0  # fold -0.0 onto +0.0: they compare equal, so their
        #              key encodings must be identical too
    raw = _F64_BE.pack(float(value))
    bits = int.from_bytes(raw, "big")
    if bits & (1 << 63):
        bits ^= (1 << 64) - 1  # negative: flip everything
    else:
        bits |= 1 << 63  # positive: flip sign bit
    return bits.to_bytes(8, "big")


def _escape_terminated(raw: bytes) -> bytes:
    """0x00-terminate *raw*, escaping embedded 0x00 as 0x00 0xFF.

    This keeps prefix ordering correct: "ab" < "ab\\x00c" < "ac".
    """
    return raw.replace(b"\x00", b"\x00\xff") + b"\x00"
