"""Disk-resident extendible hash index.

Equality-only companion to the B+tree: O(1) point lookups, no range scans.
The paper's `suchthat` clauses with equality predicates can be served by
either; the optimizer prefers the hash index for pure equality.

Structure: a *directory* of 2**global_depth bucket pointers plus *bucket*
pages. Each bucket page stores one codec-encoded record: its local depth
and its entry list. When a bucket overflows, it splits; if its local depth
equals the global depth, the directory doubles first. Keys hash through a
stable (process-independent) 64-bit blake2b digest of the order-preserving
key encoding, so the on-disk layout does not depend on Python's randomized
``hash()``.

The directory is stored on one page, which bounds the global depth. A
bucket whose entries cannot be separated by splitting (many duplicates of
one key, or hash-identical keys) chains across additional bucket pages
instead, so the index handles arbitrarily skewed key distributions —
degenerating gracefully to a linked list for pathological ones.
"""

from __future__ import annotations

import struct
from hashlib import blake2b
from typing import Any, Iterator, List, Tuple

from ..errors import DuplicateKeyError, IndexError_
from .codec import (TAG_INT64, TAG_LIST, decode_prefix, encode_key,
                    encode_value)
from .journal import Journal
from .page import MAX_RECORD_SIZE, NO_PAGE, PageType

_U32 = struct.Struct("<I")

#: Hard capacity of one bucket page's record.
MAX_BUCKET_BYTES = MAX_RECORD_SIZE - 512

#: Every directory/bucket record is zero-padded to this fixed size. A
#: same-length update never relocates the record within its page, so an
#: append changes only the entry count word and the appended bytes — which
#: the journal's run diff then logs as two tiny UPDATE images instead of
#: the whole shifted record.
RECORD_SIZE = MAX_RECORD_SIZE

#: Preferred bucket size: buckets split well before the page fills, so the
#: per-insert work stays proportional to one entry. Duplicate-heavy
#: buckets that cannot split still grow to MAX_BUCKET_BYTES and chain.
SPLIT_TARGET_BYTES = 3072


def _pad(raw: bytes) -> bytes:
    return raw + b"\x00" * (RECORD_SIZE - len(raw))

#: Directory growth stops here (pointers must fit on the directory page).
MAX_GLOBAL_DEPTH = 8

def hash_key_bytes(data: bytes) -> int:
    """64-bit blake2b of an already-encoded key. Stable across runs."""
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "little")


def stable_hash(key: Any) -> int:
    """64-bit stable hash of the canonical key encoding."""
    return hash_key_bytes(encode_key(key))


class HashIndex:
    """Extendible hash index mapping keys to values (duplicates optional)."""

    #: Decoded-record cache capacity (directory + bucket pages).
    CACHE_SIZE = 512

    def __init__(self, journal: Journal, directory_page: int,
                 unique: bool = False):
        self._journal = journal
        self._pool = journal._pool
        self.directory_page = directory_page
        self.unique = unique
        #: page_no -> (page_lsn at decode time, decoded record)
        self._decoded: dict = {}
        #: first_page -> (tail_page, tail_lsn): where the last chain
        #: append landed. A hint, not a source of truth — any later edit
        #: of that page (another append, a chain extension, an abort's
        #: compensation write) bumps its LSN and the hint is discarded.
        self._chain_tails: dict = {}

    @classmethod
    def create(cls, journal: Journal, txn: int,
               unique: bool = False) -> "HashIndex":
        """Allocate a depth-0 index: one directory slot, one empty bucket."""
        dir_page = journal._pool.new_page(PageType.HASH_DIRECTORY)
        bucket_page = journal._pool.new_page(PageType.HASH_BUCKET)
        with journal.edit(txn, bucket_page) as page:
            page.insert(_pad(encode_value([0, []])))  # [local_depth, entries]
        with journal.edit(txn, dir_page) as page:
            page.insert(_pad(encode_value([0, [bucket_page]])))  # [depth, ptrs]
        return cls(journal, dir_page, unique=unique)

    # -- directory / bucket I/O ------------------------------------------------

    def _read_decoded(self, page_no: int):
        """Decode a page's record, memoised against the page LSN. The
        cached value is returned as-is; callers must not mutate it.

        Pins/unpins directly instead of going through ``pool.page()``:
        the generator-based context manager costs more than the decode
        cache hit it wraps, and this runs on every index probe."""
        pool = self._pool
        page = pool.pin(page_no)
        try:
            lsn = page.page_lsn
            cached = self._decoded.get(page_no)
            if cached is not None and cached[0] == lsn:
                return cached[1], page.next_page
            value, used = decode_prefix(page.read(0))
            nxt = page.next_page
        finally:
            pool.unpin(page_no)
        if self.CACHE_SIZE > 0:  # 0 disables the cache (ablation studies)
            if len(self._decoded) >= self.CACHE_SIZE:
                self._decoded.clear()
            self._decoded[page_no] = (lsn, value, used)
        return value, nxt

    def _read_directory(self) -> Tuple[int, List[int]]:
        (depth, pointers), _ = self._read_decoded(self.directory_page)
        return depth, list(pointers)

    def _write_directory(self, txn: int, depth: int,
                         pointers: List[int]) -> None:
        raw = encode_value([depth, pointers])
        with self._journal.edit(txn, self.directory_page) as page:
            page.update(0, _pad(raw))
        if self.CACHE_SIZE > 0:
            self._decoded[self.directory_page] = (page.page_lsn,
                                                  (depth, pointers),
                                                  len(raw))

    def _read_bucket(self, page_no: int) -> Tuple[int, List]:
        """Read a bucket, concatenating its overflow chain."""
        entries: List = []
        local_depth = 0
        first = True
        while page_no != NO_PAGE:
            (depth, part), page_no = self._read_decoded(page_no)
            if first:
                local_depth = depth
                first = False
            entries.extend(part)
        return local_depth, entries

    def _write_bucket(self, txn: int, page_no: int, local_depth: int,
                      entries: List, raw: bytes = None) -> None:
        """Write a bucket, spilling across an overflow chain as needed.

        *raw*, when given, is the already-encoded single-chunk record
        (callers that just size-checked it pass it to avoid re-encoding).
        Chain pages are allocated on demand and retained (written empty)
        when the bucket shrinks, so an aborting transaction can never
        resurrect a pointer to a freed page.
        """
        if raw is None:
            raw = encode_value([local_depth, entries])
        if len(raw) <= MAX_BUCKET_BYTES:
            raws = [raw]
            chunks = [entries]
        else:  # rare: hash-identical keys forced an overflow chain
            chunks = self._chunk_entries(entries)
            raws = [encode_value([local_depth, chunk]) for chunk in chunks]
        # The decoded cache is refreshed with what is being written (keyed
        # on the post-edit LSN): the next probe — and insert's append fast
        # path — then never re-decodes the bucket. Callers hand over the
        # entry lists; they must not mutate them afterwards.
        cache = self._decoded if self.CACHE_SIZE > 0 else None
        current = page_no
        for i, chunk_raw in enumerate(raws):
            nxt = self._next_chain_page(txn, current,
                                        need_more=i + 1 < len(raws))
            with self._journal.edit(txn, current) as page:
                if page.slot_count == 0:  # freshly allocated page
                    page.insert(_pad(chunk_raw))
                else:
                    page.update(0, _pad(chunk_raw))
            if cache is not None:
                cache[current] = (page.page_lsn, (local_depth, chunks[i]),
                                  len(chunk_raw))
            current = nxt
        # Blank out any surplus chain pages left from a larger bucket.
        while current != NO_PAGE:
            with self._pool.page(current) as page:
                nxt = page.next_page
            raw = encode_value([local_depth, []])
            with self._journal.edit(txn, current) as page:
                if page.slot_count == 0:
                    page.insert(_pad(raw))
                else:
                    page.update(0, _pad(raw))
            if cache is not None:
                cache[current] = (page.page_lsn, (local_depth, []), len(raw))
            current = nxt

    def _next_chain_page(self, txn: int, current: int, need_more: bool) -> int:
        """The page after *current* in the chain, allocating if required."""
        with self._pool.page(current) as page:
            nxt = page.next_page
        if need_more and nxt == NO_PAGE:
            nxt = self._pool.new_page(PageType.HASH_BUCKET)
            with self._journal.edit(txn, current) as page:
                page.next_page = nxt
        return nxt

    @staticmethod
    def _chunk_entries(entries: List) -> List[List]:
        """Partition entries so each chunk's record fits on one page."""
        chunks: List[List] = []
        chunk: List = []
        size = 16  # room for the [local_depth, entries] framing
        for entry in entries:
            entry_size = len(encode_value(entry)) + 8
            if chunk and size + entry_size > MAX_BUCKET_BYTES:
                chunks.append(chunk)
                chunk = []
                size = 16
            chunk.append(entry)
            size += entry_size
        chunks.append(chunk)
        return chunks

    def _bucket_for(self, kb: bytes) -> Tuple[int, int, List[int]]:
        """The bucket page for an already-encoded key."""
        depth, pointers = self._read_directory()
        slot = hash_key_bytes(kb) & ((1 << depth) - 1)
        return pointers[slot], depth, pointers

    # -- operations ---------------------------------------------------------------

    def insert(self, txn: int, key: Any, value: Any,
               check_dup: bool = True) -> None:
        """Insert ``(key, value)``, splitting buckets as needed.

        *check_dup=False* lets a unique index skip the duplicate probe
        when the caller already knows the key is absent (freshly
        allocated serials, a preceding ``search`` that came back empty,
        a rebuild from a source that was unique). On a bucket that has
        degenerated into an overflow chain this avoids decoding the
        whole chain just to prove what the caller knew.
        """
        kb = encode_key(key)
        bucket_page, _, _ = self._bucket_for(kb)
        if self._append_fast(txn, bucket_page, kb, key, value):
            return
        # A bucket whose local depth reached MAX_GLOBAL_DEPTH can never
        # be separated by splitting again. Unless a duplicate probe
        # forces a full read, append to its overflow chain's tail page:
        # the insert then costs one tail-page rewrite instead of
        # re-encoding the entire chain — the difference between O(1) and
        # O(n) per insert, i.e. a linear vs quadratic bulk load. (The
        # macro workload simulator found this: past ~10k objects every
        # directory insert re-encoded a whole chained bucket, and bulk
        # ingest fell from ~3k to ~600 objects/s and kept falling.)
        (local_depth, _), nxt = self._read_decoded(bucket_page)
        if (nxt != NO_PAGE and local_depth >= MAX_GLOBAL_DEPTH
                and not (self.unique and check_dup)):
            self._append_chain(txn, bucket_page, local_depth,
                               [kb, key, value])
            return
        local_depth, entries = self._read_bucket(bucket_page)
        if self.unique and check_dup and any(e[0] == kb for e in entries):
            raise DuplicateKeyError("duplicate key %r in unique hash index"
                                    % (key,))
        entries.append([kb, key, value])
        raw = encode_value([local_depth, entries])
        if len(raw) <= SPLIT_TARGET_BYTES:
            self._write_bucket(txn, bucket_page, local_depth, entries,
                               raw=raw)
            return
        self._split_bucket(txn, bucket_page, local_depth, entries)

    def _append_chain(self, txn: int, first_page: int, local_depth: int,
                      entry: List) -> None:
        """Append *entry* to the last page of a bucket's overflow chain.

        Chain pages are never unlinked (see :meth:`_write_bucket`), so
        the tail only ever moves forward; walking to it touches each
        page's header but decodes only the tail's record (LSN-cached).
        The walk itself is skipped when the ``_chain_tails`` hint still
        matches the tail's LSN — any intervening edit (another append, a
        chain extension, an abort's compensation write) bumps the LSN
        and forces the full walk from *first_page*.
        """
        page_no = first_page
        hint = self._chain_tails.get(first_page)
        if hint is not None:
            tail_page, tail_lsn = hint
            page = self._pool.pin(tail_page)
            try:
                if page.page_lsn == tail_lsn and page.next_page == NO_PAGE:
                    page_no = tail_page
            finally:
                self._pool.unpin(tail_page)
        while True:
            with self._pool.page(page_no) as page:
                nxt = page.next_page
            if nxt == NO_PAGE:
                break
            page_no = nxt
        kb, key, value = entry
        if self._append_fast(txn, page_no, kb, key, value,
                             limit=MAX_BUCKET_BYTES, dup_check=False):
            self._note_tail(first_page, page_no)
            return
        (_, part), _ = self._read_decoded(page_no)
        tail_entries = list(part) + [entry]
        raw = encode_value([local_depth, tail_entries])
        if len(raw) > MAX_BUCKET_BYTES and part:
            new_page = self._pool.new_page(PageType.HASH_BUCKET)
            with self._journal.edit(txn, page_no) as page:
                page.next_page = new_page
            page_no = new_page
            tail_entries = [entry]
            raw = encode_value([local_depth, tail_entries])
        with self._journal.edit(txn, page_no) as page:
            if page.slot_count == 0:
                page.insert(_pad(raw))
            else:
                page.update(0, _pad(raw))
        if self.CACHE_SIZE > 0:
            self._decoded[page_no] = (page.page_lsn,
                                      (local_depth, tail_entries), len(raw))
        self._chain_tails[first_page] = (page_no, page.page_lsn)

    def _note_tail(self, first_page: int, tail_page: int) -> None:
        """Record *tail_page* (at its current LSN) as the chain's tail."""
        cached = self._decoded.get(tail_page)
        if cached is not None:
            self._chain_tails[first_page] = (tail_page, cached[0])
            return
        page = self._pool.pin(tail_page)
        try:
            self._chain_tails[first_page] = (tail_page, page.page_lsn)
        finally:
            self._pool.unpin(tail_page)

    #: Byte offset of the entry-count u32 inside a bucket record
    #: ``[local_depth, entries]``: TAG_LIST + u32(2) + (TAG_INT64 + i64)
    #: + TAG_LIST, then the count.
    _COUNT_OFF = 1 + 4 + 9 + 1

    def _append_fast(self, txn: int, page_no: int, kb: bytes, key: Any,
                     value: Any, limit: int = SPLIT_TARGET_BYTES,
                     dup_check: bool = True) -> bool:
        """Append an entry to a warm single-page bucket by patching bytes.

        The bucket record's entries are a suffix of its encoding, so an
        insert only needs the entry count bumped and the new entry's
        encoding concatenated — no decode or whole-bucket re-encode. Only
        taken when the decoded cache matches the page LSN (giving the
        dup-check its entry list for free), the bucket has no overflow
        chain, and the result stays under *limit* (the split target; the
        chain-tail append path passes the page capacity instead);
        anything else falls back to the general path. The page diff the
        journal logs is just the count word plus the appended bytes.
        """
        cached = self._decoded.get(page_no)
        if cached is None:
            return False
        pool = self._pool
        page = pool.pin(page_no)
        try:
            if page.page_lsn != cached[0] or page.next_page != NO_PAGE:
                return False
            local_depth, entries = cached[1]
            used = cached[2]
            if self.unique and dup_check:
                for entry in entries:
                    if entry[0] == kb:
                        raise DuplicateKeyError(
                            "duplicate key %r in unique hash index" % (key,))
            raw = page.read(0)
        finally:
            pool.unpin(page_no)
        off = self._COUNT_OFF
        if (len(raw) != RECORD_SIZE or used < off + 4 or raw[0] != TAG_LIST
                or raw[5] != TAG_INT64 or raw[off - 1] != TAG_LIST):
            return False
        new_entry = [kb, key, value]
        entry_raw = encode_value(new_entry)
        if used + len(entry_raw) > limit:
            return False  # needs a split (or a new chain page)
        # Splice the bumped count and the appended entry into the padding;
        # total length is unchanged, so the page update stays in place.
        new_raw = b"".join((raw[:off], _U32.pack(len(entries) + 1),
                            raw[off + 4:used], entry_raw,
                            raw[used + len(entry_raw):]))
        with self._journal.edit(txn, page_no) as page:
            page.update(0, new_raw)
        if self.CACHE_SIZE > 0:
            self._decoded[page_no] = (page.page_lsn,
                                      (local_depth, entries + [new_entry]),
                                      used + len(entry_raw))
        return True

    def _split_bucket(self, txn: int, bucket_page: int, local_depth: int,
                      entries: List) -> None:
        # Futile-split guard: when every entry has the same full hash
        # (duplicate keys, or colliding ones), no amount of splitting can
        # separate them — store the bucket as an overflow chain instead.
        hashes = {hash_key_bytes(e[0]) for e in entries}
        if len(hashes) == 1:
            self._write_bucket(txn, bucket_page, local_depth, entries)
            return
        depth, pointers = self._read_directory()
        if local_depth == depth:
            if depth >= MAX_GLOBAL_DEPTH:
                # Directory is as large as its page allows; let the bucket
                # fill its page, then chain.
                self._write_bucket(txn, bucket_page, local_depth, entries)
                return
            pointers = pointers + pointers
            depth += 1
        # Redistribute on the newly significant bit.
        bit = 1 << local_depth
        stay, move = [], []
        for entry in entries:
            (move if hash_key_bytes(entry[0]) & bit else stay).append(entry)
        new_page = self._pool.new_page(PageType.HASH_BUCKET)
        self._write_bucket(txn, bucket_page, local_depth + 1, stay)
        self._write_bucket(txn, new_page, local_depth + 1, move)
        # Every directory slot that pointed at the old bucket and has the
        # new bit set now points at the new bucket.
        for i, ptr in enumerate(pointers):
            if ptr == bucket_page and (i & bit):
                pointers[i] = new_page
        self._write_directory(txn, depth, pointers)
        # A split may leave one side oversized when keys collide; re-split
        # recursively (bounded by MAX_GLOBAL_DEPTH).
        for page_no, side in ((bucket_page, stay), (new_page, move)):
            if len(encode_value([local_depth + 1, side])) > MAX_BUCKET_BYTES:
                self._split_bucket(txn, page_no, local_depth + 1, side)

    def search(self, key: Any) -> List[Any]:
        """All values stored under *key*."""
        kb = encode_key(key)
        bucket_page, _, _ = self._bucket_for(kb)
        _, entries = self._read_bucket(bucket_page)
        return [e[2] for e in entries if e[0] == kb]

    def contains(self, key: Any) -> bool:
        return bool(self.search(key))

    def delete(self, txn: int, key: Any, value: Any = None) -> int:
        """Remove entries for *key* (optionally only matching *value*)."""
        kb = encode_key(key)
        bucket_page, _, _ = self._bucket_for(kb)
        local_depth, entries = self._read_bucket(bucket_page)
        kept = [e for e in entries
                if not (e[0] == kb and (value is None or e[2] == value))]
        removed = len(entries) - len(kept)
        if removed:
            self._write_bucket(txn, bucket_page, local_depth, kept)
        return removed

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All ``(key, value)`` entries (unordered, each bucket once)."""
        _, pointers = self._read_directory()
        for page_no in dict.fromkeys(pointers):
            _, entries = self._read_bucket(page_no)
            for _, key, value in entries:
                yield key, value

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def check_invariants(self) -> None:
        """Validate directory/bucket structure; raises IndexError_ if broken."""
        depth, pointers = self._read_directory()
        if len(pointers) != 1 << depth:
            raise IndexError_("directory size != 2**global_depth")
        for i, page_no in enumerate(pointers):
            local_depth, entries = self._read_bucket(page_no)
            if local_depth > depth:
                raise IndexError_("local depth exceeds global depth")
            for entry in entries:
                h = hash_key_bytes(entry[0])
                if (h ^ i) & ((1 << local_depth) - 1):
                    raise IndexError_(
                        "entry hashed to wrong bucket (slot %d)" % i)
