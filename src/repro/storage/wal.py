"""Write-ahead log.

The engine uses physical byte-range logging in the ARIES style: every page
mutation is captured as an UPDATE record holding the page number, the byte
offset of the first changed byte, and the before/after images of the changed
range. Undo writes compensation log records (CLRs) that are redo-only.

Log file format: a 16-byte header (magic + a u64 *LSN base*) followed by a
sequence of length-prefixed, CRC-protected records::

    u32 payload_length | u32 crc32(payload) | payload

The payload of the standard record types is struct-packed (a type code,
txn, prev_lsn, then type-specific fields) — log appends sit on the commit
path of every transaction, where the generic codec's per-field tagging is
measurable overhead. Records of any other shape fall back to a
codec-encoded dict behind a zero type code, so the log remains a generic
dict journal at the API level. An LSN is the base plus the byte
offset of the record within the log — strictly increasing and directly
seekable. The base advances every time the log is truncated (at quiescent
checkpoints), so LSNs are monotone for the lifetime of the database; this
is essential for redo, which compares page LSNs against record LSNs and
would otherwise skip committed work after a checkpoint reset the offsets.
A torn tail (short read or CRC mismatch) terminates the scan silently,
which is exactly the crash-atomicity the WAL needs.

**Durability modes.** Committing durably costs one fsync; at high commit
rates the fsync *is* the bottleneck. The log therefore supports three
modes (the ``durability=`` knob threaded down from
:class:`~repro.core.database.Database`):

``"full"`` (default)
    fsync on every commit — a committed transaction survives any crash.

``"group"``
    Group commit: commit records are appended immediately (so ordering
    and atomicity are unchanged) but the fsync is deferred until either
    :data:`GROUP_SIZE` commits are pending or :data:`GROUP_WINDOW`
    seconds have passed since the first pending commit — one fsync pays
    for the whole batch. A crash may lose the last window's commits
    (they disappear atomically; recovery sees no COMMIT record), never
    corrupt anything. Reads are unaffected: pages are in memory.

``"none"``
    No fsync at commit at all; only checkpoints/page-writeback flush.
    For bulk loads and tests.

The WAL rule is enforced in every mode: before a dirty page reaches disk
the log is flushed past that page's LSN, so redo/undo information is
always durable first.

Record types and their fields (beyond ``type``, ``txn``, ``prev_lsn``):

=========== ==============================================================
BEGIN       --
UPDATE      page_no, offset, before, after
COMMIT      --
ABORT       --
END         -- (transaction fully undone / fully committed)
CLR         page_no, offset, after, undo_next (LSN to continue undo from)
CHECKPOINT  active (dict txn -> last_lsn at checkpoint time)
=========== ==============================================================
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from typing import Dict, Iterator, Optional, Tuple

from ..errors import WalError, WalFlushError
from .codec import decode_value, encode_value

_REC_HDR = struct.Struct("<II")
_FILE_HDR = struct.Struct("<8sQ")
_WAL_MAGIC = b"ODEWAL01"

NULL_LSN = -1


class _FsyncLied(Exception):
    """Internal control flow for the ``wal.flush.lie`` failpoint."""

#: The recognised durability modes (see the module docs).
DURABILITY_MODES = ("full", "group", "none")

#: Group commit: flush after this many pending commits ...
GROUP_SIZE = 64
#: ... or once this many seconds have passed since the first pending
#: commit, whichever comes first. The window bounds how stale the log can
#: be, not how long a commit waits (commits never block on it) — so it is
#: sized like a checkpoint interval, generously enough that the size
#: threshold does the batching under load.
GROUP_WINDOW = 0.05


class LogRecordType:
    BEGIN = "begin"
    UPDATE = "update"
    COMMIT = "commit"
    ABORT = "abort"
    END = "end"
    CLR = "clr"
    CHECKPOINT = "checkpoint"


# -- record payload packing ----------------------------------------------------
#
# Code 0 is the escape hatch: the whole record codec-encoded as a dict.

_TYPE_CODE = {
    LogRecordType.BEGIN: 1,
    LogRecordType.UPDATE: 2,
    LogRecordType.COMMIT: 3,
    LogRecordType.ABORT: 4,
    LogRecordType.END: 5,
    LogRecordType.CLR: 6,
    LogRecordType.CHECKPOINT: 7,
}
_CODE_TYPE = {code: rtype for rtype, code in _TYPE_CODE.items()}

_COMMON = struct.Struct("<Bqq")       # type code, txn, prev_lsn
_UPDATE_EXT = struct.Struct("<IHH")   # page_no, offset, len(before)
_CLR_EXT = struct.Struct("<IHq")      # page_no, offset, undo_next

_CODE_UPDATE = _TYPE_CODE[LogRecordType.UPDATE]
_CODE_CLR = _TYPE_CODE[LogRecordType.CLR]
_CODE_CHECKPOINT = _TYPE_CODE[LogRecordType.CHECKPOINT]


def _pack_payload(record: Dict) -> bytes:
    code = _TYPE_CODE.get(record.get("type"))
    if code is None:
        return b"\x00" + encode_value(record)
    head = _COMMON.pack(code, record["txn"], record["prev_lsn"])
    if code == _CODE_UPDATE:
        before = record["before"]
        return b"".join((head,
                         _UPDATE_EXT.pack(record["page_no"],
                                          record["offset"], len(before)),
                         before, record["after"]))
    if code == _CODE_CLR:
        return b"".join((head,
                         _CLR_EXT.pack(record["page_no"], record["offset"],
                                       record["undo_next"]),
                         record["after"]))
    if code == _CODE_CHECKPOINT:
        return head + encode_value(record["active"])
    return head


def _unpack_payload(payload: bytes) -> Dict:
    if payload[0] == 0:
        return decode_value(payload[1:])
    code, txn, prev_lsn = _COMMON.unpack_from(payload, 0)
    record = {"type": _CODE_TYPE[code], "txn": txn, "prev_lsn": prev_lsn}
    off = _COMMON.size
    if code == _CODE_UPDATE:
        page_no, offset, blen = _UPDATE_EXT.unpack_from(payload, off)
        off += _UPDATE_EXT.size
        record["page_no"] = page_no
        record["offset"] = offset
        record["before"] = payload[off:off + blen]
        record["after"] = payload[off + blen:]
    elif code == _CODE_CLR:
        page_no, offset, undo_next = _CLR_EXT.unpack_from(payload, off)
        off += _CLR_EXT.size
        record["page_no"] = page_no
        record["offset"] = offset
        record["undo_next"] = undo_next
        record["after"] = payload[off:]
    elif code == _CODE_CHECKPOINT:
        record["active"] = decode_value(payload[off:])
    return record


class WriteAheadLog:
    """Append-only log with CRC-framed records addressed by byte-offset LSN."""

    def __init__(self, path: str, durability: str = "full",
                 group_size: int = GROUP_SIZE,
                 group_window: float = GROUP_WINDOW, faults=None):
        self.path = path
        self._faults = faults
        #: Internal mutex: one log is shared by every shard, and appends /
        #: flushes / random-access reads arrive from threads holding
        #: *different* shard latches (the WAL is the innermost lock in the
        #: storage order — nothing is acquired while holding it). Reentrant
        #: because ``log_commit`` composes ``append`` + ``flush``.
        self._lock = threading.RLock()
        #: The exception of the first failed fsync, or None. Sticky: a
        #: failed log refuses all further appends/flushes (see
        #: :class:`~repro.errors.WalFlushError`). Reads keep working.
        self.failed = None
        #: Where the last full scan stopped short of the valid end
        #: (LSN), and why: ``"torn_tail"`` (a crash mid-append — normal)
        #: or ``"mid_log_corruption"`` (valid records exist beyond the
        #: bad one — the log itself was damaged).
        self.scan_stop = None
        self.scan_stop_kind = None
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        self._file = open(path, "r+b" if exists else "w+b")
        if exists:
            header = self._file.read(_FILE_HDR.size)
            if len(header) < _FILE_HDR.size:
                raise WalError("log %s: truncated header" % path)
            magic, base = _FILE_HDR.unpack(header)
            if magic != _WAL_MAGIC:
                raise WalError("log %s: bad magic %r" % (path, magic))
            self._base = base
        else:
            self._base = 0
            self._write_header()
        self._file.seek(0, os.SEEK_END)
        self._end = self._base + self._file.tell() - _FILE_HDR.size
        self._flushed = self._end if exists else self._base
        self._closed = False
        self._pending_commits = 0
        self._first_pending = 0.0
        # statistics
        self.appends = 0
        self.syncs = 0
        self.flush_calls = 0
        self.group_deferrals = 0
        # observability hooks (attach_observability wires the real ones)
        self._obs_hist = None
        self._obs_events = None
        self.set_durability(durability, group_size, group_window)

    #: flush-batch-size histogram buckets (commits per fsync)
    FLUSH_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

    def attach_observability(self, metrics, events) -> None:
        """Register this log's counters with a metrics registry and start
        emitting group-commit flush events. Keeps the constructor free of
        observability dependencies for standalone unit tests."""
        metrics.counter_fn("wal.appends", lambda: self.appends)
        metrics.counter_fn("wal.syncs", lambda: self.syncs)
        metrics.counter_fn("wal.flush_calls", lambda: self.flush_calls)
        metrics.counter_fn("wal.group_deferrals",
                           lambda: self.group_deferrals)
        metrics.gauge_fn("wal.durability", lambda: self.durability)
        metrics.gauge_fn("wal.end_lsn", lambda: self._end)
        self._obs_hist = metrics.histogram("wal.flush_batch_size",
                                           self.FLUSH_BATCH_BUCKETS)
        self._obs_events = events

    def set_durability(self, mode: str, group_size: Optional[int] = None,
                       group_window: Optional[float] = None) -> None:
        """Switch the commit durability mode (see module docs).

        Tightening the mode (e.g. ``group`` -> ``full``) flushes pending
        commits first so nothing already committed is left vulnerable.
        """
        if mode not in DURABILITY_MODES:
            raise WalError("unknown durability mode %r (expected one of %s)"
                           % (mode, ", ".join(DURABILITY_MODES)))
        if group_size is not None:
            self._group_size = group_size
        if group_window is not None:
            self._group_window = group_window
        self.durability = mode
        if mode == "full" and not self._closed \
                and getattr(self, "_pending_commits", 0):
            self.flush()

    def _write_header(self) -> None:
        self._file.seek(0)
        self._file.write(_FILE_HDR.pack(_WAL_MAGIC, self._base))

    @property
    def base_lsn(self) -> int:
        """LSN of the oldest record still in the log file."""
        return self._base

    # -- append side ------------------------------------------------------------

    def append(self, record: Dict) -> int:
        """Append *record* (a dict) and return its LSN. Does not fsync."""
        with self._lock:
            if self._closed:
                raise WalError("log %s is closed" % self.path)
            if self.failed is not None:
                raise WalFlushError(
                    "log %s failed earlier and accepts no "
                    "more records: %s" % (self.path, self.failed))
            f = self._faults
            if f is not None and f.enabled:
                f.fire("wal.append.pre", rtype=record.get("type"))
            payload = _pack_payload(record)
            lsn = self._end
            self._file.seek(self._end - self._base + _FILE_HDR.size)
            self._file.write(
                _REC_HDR.pack(len(payload), zlib.crc32(payload)) + payload)
            self._end += _REC_HDR.size + len(payload)
            self.appends += 1
            if f is not None and f.enabled:
                f.fire("wal.append.post", rtype=record.get("type"))
            return lsn

    def log_begin(self, txn: int) -> int:
        return self.append({"type": LogRecordType.BEGIN, "txn": txn,
                            "prev_lsn": NULL_LSN})

    def log_update(self, txn: int, prev_lsn: int, page_no: int, offset: int,
                   before: bytes, after: bytes) -> int:
        return self.append({"type": LogRecordType.UPDATE, "txn": txn,
                            "prev_lsn": prev_lsn, "page_no": page_no,
                            "offset": offset, "before": before, "after": after})

    def log_commit(self, txn: int, prev_lsn: int) -> int:
        with self._lock:
            return self._log_commit_locked(txn, prev_lsn)

    def _log_commit_locked(self, txn: int, prev_lsn: int) -> int:
        lsn = self.append({"type": LogRecordType.COMMIT, "txn": txn,
                           "prev_lsn": prev_lsn})
        if self.durability == "full":
            self._pending_commits += 1
            self.flush()
        elif self.durability == "group":
            now = time.monotonic()
            if self._pending_commits == 0:
                self._first_pending = now
            self._pending_commits += 1
            if (self._pending_commits >= self._group_size
                    or now - self._first_pending >= self._group_window):
                self.flush()
            else:
                self.group_deferrals += 1
        # "none": the checkpoint / page write-back flushes catch up.
        return lsn

    def log_abort(self, txn: int, prev_lsn: int) -> int:
        return self.append({"type": LogRecordType.ABORT, "txn": txn,
                            "prev_lsn": prev_lsn})

    def log_end(self, txn: int, prev_lsn: int) -> int:
        return self.append({"type": LogRecordType.END, "txn": txn,
                            "prev_lsn": prev_lsn})

    def log_clr(self, txn: int, prev_lsn: int, page_no: int, offset: int,
                after: bytes, undo_next: int) -> int:
        return self.append({"type": LogRecordType.CLR, "txn": txn,
                            "prev_lsn": prev_lsn, "page_no": page_no,
                            "offset": offset, "after": after,
                            "undo_next": undo_next})

    def log_checkpoint(self, active: Dict[int, int]) -> int:
        lsn = self.append({"type": LogRecordType.CHECKPOINT,
                           "txn": -1, "prev_lsn": NULL_LSN,
                           "active": dict(active)})
        self.flush()
        return lsn

    def flush(self, up_to_lsn: Optional[int] = None) -> None:
        """fsync the log, at least up to *up_to_lsn* (whole tail by default).

        The buffer pool calls this with a page's LSN before writing the page
        (the WAL rule); the transaction manager calls it at commit.
        """
        with self._lock:
            self._flush_locked(up_to_lsn)

    def _flush_locked(self, up_to_lsn: Optional[int] = None) -> None:
        if self._closed:
            raise WalError("log %s is closed" % self.path)
        if self.failed is not None:
            raise WalFlushError("log %s failed earlier: %s"
                                % (self.path, self.failed))
        self.flush_calls += 1
        if up_to_lsn is not None and up_to_lsn <= self._flushed:
            return
        batch = self._pending_commits
        f = self._faults
        try:
            if f is not None and f.enabled:
                f.fire("wal.flush.pre", end_lsn=self._end)
                f.fire("wal.flush.fsync", end_lsn=self._end)
                if f.fire("wal.flush.lie", end_lsn=self._end):
                    # fsync claimed success without persisting anything;
                    # fall through to the success bookkeeping below.
                    raise _FsyncLied
            self._file.flush()
            os.fsync(self._file.fileno())
        except _FsyncLied:
            pass
        except OSError as exc:
            # Sticky: never retry an fsync that reported failure — the
            # kernel may have dropped the dirty pages, so a "successful"
            # retry would silently lose the very records that failed.
            self.failed = exc
            self._pending_commits = 0
            if self._obs_events is not None:
                self._obs_events.emit("wal_flush_failed", error=str(exc),
                                      end_lsn=self._end,
                                      pending_commits=batch)
            raise WalFlushError(
                "fsync of log %s failed (%d commit(s) in the batch are "
                "not durable): %s" % (self.path, batch, exc)) from exc
        self._flushed = self._end
        self._pending_commits = 0
        self.syncs += 1
        if f is not None and f.enabled:
            f.fire("wal.flush.post", end_lsn=self._end)
        if batch:
            if self._obs_hist is not None:
                self._obs_hist.observe(batch)
            if self._obs_events is not None and batch > 1:
                self._obs_events.emit("group_commit_flush", commits=batch,
                                      end_lsn=self._end,
                                      durability=self.durability)

    # -- read side ------------------------------------------------------------

    def read_record(self, lsn: int) -> Dict:
        """Random-access read of the record at *lsn*."""
        record = self._read_at(lsn)
        if record is None:
            raise WalError("no valid log record at LSN %d" % lsn)
        return record[0]

    def records(self, start_lsn: Optional[int] = None) -> Iterator[Tuple[int, Dict]]:
        """Yield ``(lsn, record)`` from *start_lsn* (default: the oldest
        retained record) until the valid tail ends.

        A scan that stops before :attr:`end_lsn` records where and *why*
        in :attr:`scan_stop` / :attr:`scan_stop_kind`: a torn tail (the
        crash-atomicity the WAL relies on — nothing after the tear) is
        distinguished from mid-log corruption (valid records exist beyond
        the bad one) by probing forward for an intact framed record, and
        a ``wal.scan.stopped_early`` event is emitted.
        """
        lsn = self._base if start_lsn is None else max(start_lsn, self._base)
        while True:
            result = self._read_at(lsn)
            if result is None:
                if lsn < self._end:
                    self._note_scan_stop(lsn)
                return
            record, next_lsn = result
            yield lsn, record
            lsn = next_lsn

    #: How far past a bad record to probe for a valid one when deciding
    #: torn-tail vs mid-log corruption.
    PROBE_WINDOW = 65536

    def _note_scan_stop(self, lsn: int) -> None:
        if self.scan_stop == lsn:
            return  # analysis and redo both scan; report once per offset
        self.scan_stop = lsn
        self.scan_stop_kind = self._classify_tail(lsn)
        if self._obs_events is not None:
            self._obs_events.emit("wal.scan.stopped_early",
                                  offset=lsn - self._base, lsn=lsn,
                                  classification=self.scan_stop_kind,
                                  end_lsn=self._end)

    def _classify_tail(self, stop_lsn: int) -> str:
        limit = min(self._end, stop_lsn + self.PROBE_WINDOW)
        probe = stop_lsn + 1
        while probe < limit:
            if self._read_at(probe) is not None:
                return "mid_log_corruption"
            probe += 1
        return "torn_tail"

    def _read_at(self, lsn: int) -> Optional[Tuple[Dict, int]]:
        with self._lock:
            return self._read_at_locked(lsn)

    def _read_at_locked(self, lsn: int) -> Optional[Tuple[Dict, int]]:
        if lsn < self._base or lsn >= self._end:
            return None
        self._file.seek(lsn - self._base + _FILE_HDR.size)
        header = self._file.read(_REC_HDR.size)
        if len(header) < _REC_HDR.size:
            return None
        length, crc = _REC_HDR.unpack(header)
        if length == 0 or length > self._end - lsn - _REC_HDR.size:
            # Records are never empty; a run of zero bytes would otherwise
            # frame as length=0 crc=0 (crc32 of b"" is 0) when the
            # classifier probes misaligned offsets.
            return None
        payload = self._file.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            return None  # torn tail
        try:
            record = _unpack_payload(payload)
        except Exception:
            # A CRC collision on garbage bytes (seen only while probing
            # misaligned offsets) is not a record.
            return None
        return record, lsn + _REC_HDR.size + length

    # -- maintenance ------------------------------------------------------------

    @property
    def end_lsn(self) -> int:
        return self._end

    def truncate(self) -> None:
        """Discard the retained records (only safe after all pages are
        flushed). The LSN base advances so LSNs stay monotone forever."""
        with self._lock:
            self._truncate_locked()

    def _truncate_locked(self) -> None:
        if self.failed is not None:
            raise WalFlushError("log %s failed earlier: %s"
                                % (self.path, self.failed))
        f = self._faults
        if f is not None and f.enabled:
            f.fire("wal.truncate.pre", end_lsn=self._end)
        self._base = self._end
        self._file.truncate(_FILE_HDR.size)
        self._write_header()
        self._file.flush()
        os.fsync(self._file.fileno())
        self._flushed = self._end
        self._pending_commits = 0
        self.scan_stop = None
        self.scan_stop_kind = None
        if f is not None and f.enabled:
            f.fire("wal.truncate.post", end_lsn=self._end)

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                try:
                    self._file.flush()
                except OSError:
                    if self.failed is None:
                        raise  # only a known-failed log may close unflushed
                self._file.close()
                self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
