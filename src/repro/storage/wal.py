"""Write-ahead log.

The engine uses physical byte-range logging in the ARIES style: every page
mutation is captured as an UPDATE record holding the page number, the byte
offset of the first changed byte, and the before/after images of the changed
range. Undo writes compensation log records (CLRs) that are redo-only.

Log file format: a 16-byte header (magic + a u64 *LSN base*) followed by a
sequence of length-prefixed, CRC-protected records::

    u32 payload_length | u32 crc32(payload) | payload

where the payload is a codec-encoded dict. An LSN is the base plus the byte
offset of the record within the log — strictly increasing and directly
seekable. The base advances every time the log is truncated (at quiescent
checkpoints), so LSNs are monotone for the lifetime of the database; this
is essential for redo, which compares page LSNs against record LSNs and
would otherwise skip committed work after a checkpoint reset the offsets.
A torn tail (short read or CRC mismatch) terminates the scan silently,
which is exactly the crash-atomicity the WAL needs.

Record types and their fields (beyond ``type``, ``txn``, ``prev_lsn``):

=========== ==============================================================
BEGIN       --
UPDATE      page_no, offset, before, after
COMMIT      --
ABORT       --
END         -- (transaction fully undone / fully committed)
CLR         page_no, offset, after, undo_next (LSN to continue undo from)
CHECKPOINT  active (dict txn -> last_lsn at checkpoint time)
=========== ==============================================================
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Dict, Iterator, Optional, Tuple

from ..errors import WalError
from .codec import decode_value, encode_value

_REC_HDR = struct.Struct("<II")
_FILE_HDR = struct.Struct("<8sQ")
_WAL_MAGIC = b"ODEWAL01"

NULL_LSN = -1


class LogRecordType:
    BEGIN = "begin"
    UPDATE = "update"
    COMMIT = "commit"
    ABORT = "abort"
    END = "end"
    CLR = "clr"
    CHECKPOINT = "checkpoint"


class WriteAheadLog:
    """Append-only log with CRC-framed records addressed by byte-offset LSN."""

    def __init__(self, path: str):
        self.path = path
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        self._file = open(path, "r+b" if exists else "w+b")
        if exists:
            header = self._file.read(_FILE_HDR.size)
            if len(header) < _FILE_HDR.size:
                raise WalError("log %s: truncated header" % path)
            magic, base = _FILE_HDR.unpack(header)
            if magic != _WAL_MAGIC:
                raise WalError("log %s: bad magic %r" % (path, magic))
            self._base = base
        else:
            self._base = 0
            self._write_header()
        self._file.seek(0, os.SEEK_END)
        self._end = self._base + self._file.tell() - _FILE_HDR.size
        self._flushed = self._end if exists else self._base
        self._closed = False
        # statistics
        self.appends = 0
        self.syncs = 0

    def _write_header(self) -> None:
        self._file.seek(0)
        self._file.write(_FILE_HDR.pack(_WAL_MAGIC, self._base))

    @property
    def base_lsn(self) -> int:
        """LSN of the oldest record still in the log file."""
        return self._base

    # -- append side ------------------------------------------------------------

    def append(self, record: Dict) -> int:
        """Append *record* (a dict) and return its LSN. Does not fsync."""
        if self._closed:
            raise WalError("log %s is closed" % self.path)
        payload = encode_value(record)
        lsn = self._end
        self._file.seek(self._end - self._base + _FILE_HDR.size)
        self._file.write(_REC_HDR.pack(len(payload), zlib.crc32(payload)))
        self._file.write(payload)
        self._end += _REC_HDR.size + len(payload)
        self.appends += 1
        return lsn

    def log_begin(self, txn: int) -> int:
        return self.append({"type": LogRecordType.BEGIN, "txn": txn,
                            "prev_lsn": NULL_LSN})

    def log_update(self, txn: int, prev_lsn: int, page_no: int, offset: int,
                   before: bytes, after: bytes) -> int:
        return self.append({"type": LogRecordType.UPDATE, "txn": txn,
                            "prev_lsn": prev_lsn, "page_no": page_no,
                            "offset": offset, "before": before, "after": after})

    def log_commit(self, txn: int, prev_lsn: int) -> int:
        lsn = self.append({"type": LogRecordType.COMMIT, "txn": txn,
                           "prev_lsn": prev_lsn})
        self.flush()
        return lsn

    def log_abort(self, txn: int, prev_lsn: int) -> int:
        return self.append({"type": LogRecordType.ABORT, "txn": txn,
                            "prev_lsn": prev_lsn})

    def log_end(self, txn: int, prev_lsn: int) -> int:
        return self.append({"type": LogRecordType.END, "txn": txn,
                            "prev_lsn": prev_lsn})

    def log_clr(self, txn: int, prev_lsn: int, page_no: int, offset: int,
                after: bytes, undo_next: int) -> int:
        return self.append({"type": LogRecordType.CLR, "txn": txn,
                            "prev_lsn": prev_lsn, "page_no": page_no,
                            "offset": offset, "after": after,
                            "undo_next": undo_next})

    def log_checkpoint(self, active: Dict[int, int]) -> int:
        lsn = self.append({"type": LogRecordType.CHECKPOINT,
                           "txn": -1, "prev_lsn": NULL_LSN,
                           "active": dict(active)})
        self.flush()
        return lsn

    def flush(self, up_to_lsn: Optional[int] = None) -> None:
        """fsync the log, at least up to *up_to_lsn* (whole tail by default).

        The buffer pool calls this with a page's LSN before writing the page
        (the WAL rule); the transaction manager calls it at commit.
        """
        if self._closed:
            raise WalError("log %s is closed" % self.path)
        if up_to_lsn is not None and up_to_lsn <= self._flushed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._flushed = self._end
        self.syncs += 1

    # -- read side ------------------------------------------------------------

    def read_record(self, lsn: int) -> Dict:
        """Random-access read of the record at *lsn*."""
        record = self._read_at(lsn)
        if record is None:
            raise WalError("no valid log record at LSN %d" % lsn)
        return record[0]

    def records(self, start_lsn: Optional[int] = None) -> Iterator[Tuple[int, Dict]]:
        """Yield ``(lsn, record)`` from *start_lsn* (default: the oldest
        retained record) until the valid tail ends."""
        lsn = self._base if start_lsn is None else max(start_lsn, self._base)
        while True:
            result = self._read_at(lsn)
            if result is None:
                return
            record, next_lsn = result
            yield lsn, record
            lsn = next_lsn

    def _read_at(self, lsn: int) -> Optional[Tuple[Dict, int]]:
        if lsn < self._base or lsn >= self._end:
            return None
        self._file.seek(lsn - self._base + _FILE_HDR.size)
        header = self._file.read(_REC_HDR.size)
        if len(header) < _REC_HDR.size:
            return None
        length, crc = _REC_HDR.unpack(header)
        payload = self._file.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            return None  # torn tail
        return decode_value(payload), lsn + _REC_HDR.size + length

    # -- maintenance ------------------------------------------------------------

    @property
    def end_lsn(self) -> int:
        return self._end

    def truncate(self) -> None:
        """Discard the retained records (only safe after all pages are
        flushed). The LSN base advances so LSNs stay monotone forever."""
        self._base = self._end
        self._file.truncate(_FILE_HDR.size)
        self._write_header()
        self._file.flush()
        os.fsync(self._file.fileno())
        self._flushed = self._end

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
