"""Sharded storage — global page ids and the buffer-pool router.

The store can split its pages across N *shards*, each with its own page
file, buffer pool and latch (``<path>`` for shard 0, ``<path>.s1`` ...
for the rest). Everything above the pool — heap files, hash indexes,
B+trees, the journal, crash recovery — keeps addressing pages by a single
integer; sharding works because that integer becomes a *global page id*
(gpid) that encodes its shard::

    gpid = (shard_id << SHARD_SHIFT) | local_page_no

Shard 0's gpids equal its local page numbers, so a database created with
one shard is byte-identical to the pre-sharding format and the on-disk
bootstrap/catalog layout never changes. The WAL packs page numbers as
u32 (see ``wal._UPDATE_EXT``), which bounds the address space:
``SHARD_SHIFT`` of 26 leaves 64 Mi pages (256 GiB) per shard for up to
:data:`MAX_SHARDS` shards.

:class:`ShardedPool` presents the :class:`~repro.storage.buffer.BufferPool`
interface over the shard pools, routing every call by the gpid's shard
bits. Allocation needs a *target* shard, so the router's plain
``new_page``/``new_extent`` default to shard 0 (where the catalog and all
secondary indexes live) and per-cluster-shard structures allocate through
a :class:`ShardView`, which binds allocation to its shard and routes
everything else.

Latch ordering (deadlock discipline, see also ``journal.py``): lock
manager locks are taken outside everything (they block); then the store's
metadata latch, the catalog lock, the journal latch, shard latches (in
ascending shard order when more than one is held — :meth:`all_latches`),
the WAL mutex, and leaf locks (page cache, metrics) innermost.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import StorageError

#: Bits of a gpid holding the local page number.
SHARD_SHIFT = 26
#: Mask extracting the local page number from a gpid.
LOCAL_MASK = (1 << SHARD_SHIFT) - 1
#: Upper bound on shards: gpids must fit the WAL's u32 page_no field.
MAX_SHARDS = 1 << (32 - SHARD_SHIFT)


def shard_of(gpid: int) -> int:
    """The shard a global page id lives in."""
    return gpid >> SHARD_SHIFT


def local_page(gpid: int) -> int:
    """The page number within its shard's file."""
    return gpid & LOCAL_MASK


def global_page(shard: int, local: int) -> int:
    """Compose a gpid from a shard id and a local page number."""
    return (shard << SHARD_SHIFT) | local


def shard_path(path: str, shard: int) -> str:
    """The page-file path of one shard (shard 0 is *path* itself)."""
    return path if shard == 0 else "%s.s%d" % (path, shard)


class _AllLatches:
    """Context manager acquiring every shard latch in ascending order."""

    __slots__ = ("_latches",)

    def __init__(self, latches):
        self._latches = latches

    def __enter__(self):
        for latch in self._latches:
            latch.acquire()
        return self

    def __exit__(self, *exc):
        for latch in reversed(self._latches):
            latch.release()
        return False


class _FreshView:
    """``fresh_pages`` facade over the shard pools' per-pool sets.

    The journal only needs membership tests, truthiness and ``discard``
    (see ``journal._PageEdit``); each routes to the owning pool's set.
    """

    __slots__ = ("_pools",)

    def __init__(self, pools):
        self._pools = pools

    def __contains__(self, gpid: int) -> bool:
        return local_page(gpid) in self._pools[shard_of(gpid)].fresh_pages

    def __bool__(self) -> bool:
        return any(pool.fresh_pages for pool in self._pools)

    def add(self, gpid: int) -> None:
        self._pools[shard_of(gpid)].fresh_pages.add(local_page(gpid))

    def discard(self, gpid: int) -> None:
        self._pools[shard_of(gpid)].fresh_pages.discard(local_page(gpid))


class _QuarantineView:
    """``quarantined`` facade: a gpid-keyed view of the per-pool sets."""

    __slots__ = ("_pools",)

    def __init__(self, pools):
        self._pools = pools

    def __contains__(self, gpid: int) -> bool:
        pool = self._pools[shard_of(gpid)]
        return bool(pool.quarantined) and local_page(gpid) in pool.quarantined

    def __bool__(self) -> bool:
        return any(pool.quarantined for pool in self._pools)

    def __len__(self) -> int:
        return sum(len(pool.quarantined) for pool in self._pools)

    def __iter__(self):
        for sid, pool in enumerate(self._pools):
            for local in pool.quarantined:
                yield global_page(sid, local)

    def add(self, gpid: int) -> None:
        self._pools[shard_of(gpid)].quarantined.add(local_page(gpid))

    def discard(self, gpid: int) -> None:
        self._pools[shard_of(gpid)].quarantined.discard(local_page(gpid))


class _RoutedPin:
    """Pin/unpin context manager over the router (mirrors ``_PinnedPage``)."""

    __slots__ = ("_router", "_gpid", "_write", "_cold")

    def __init__(self, router, gpid, write, cold=False):
        self._router = router
        self._gpid = gpid
        self._write = write
        self._cold = cold

    def __enter__(self):
        return self._router.pin(self._gpid, cold=self._cold)

    def __exit__(self, exc_type, exc, tb):
        self._router.unpin(self._gpid, dirty=self._write)
        return False


class ShardedPool:
    """Route the buffer-pool interface across per-shard pools by gpid.

    Presents exactly the surface the journal, heap/index structures,
    crash recovery and the store use on a single
    :class:`~repro.storage.buffer.BufferPool`; page numbers at this level
    are always gpids. Each underlying pool keeps its own latch, LRU and
    statistics, so threads working in different shards never contend.
    """

    def __init__(self, pools: List):
        if not pools or len(pools) > MAX_SHARDS:
            raise StorageError("shard count must be in [1, %d], got %d"
                               % (MAX_SHARDS, len(pools)))
        self.pools = pools
        self.fresh_pages = _FreshView(pools)
        self.quarantined = _QuarantineView(pools)
        #: ``on_corrupt_page`` mirrors the pool callback but receives
        #: gpids; the store installs per-pool closures that translate.
        self.on_corrupt_page = None

    @property
    def n_shards(self) -> int:
        return len(self.pools)

    @property
    def capacity(self) -> int:
        return sum(pool.capacity for pool in self.pools)

    # Aggregated counters, so samplers (metrics, query tracing) read a
    # router exactly like a single pool.

    @property
    def hits(self) -> int:
        return sum(pool.hits for pool in self.pools)

    @property
    def misses(self) -> int:
        return sum(pool.misses for pool in self.pools)

    @property
    def evictions(self) -> int:
        return sum(pool.evictions for pool in self.pools)

    @property
    def writebacks(self) -> int:
        return sum(pool.writebacks for pool in self.pools)

    @property
    def prefetches(self) -> int:
        return sum(pool.prefetches for pool in self.pools)

    @property
    def readahead_pages(self) -> int:
        return sum(pool.readahead_pages for pool in self.pools)

    @property
    def checksum_failures(self) -> int:
        return sum(pool.checksum_failures for pool in self.pools)

    @property
    def cached_frames(self) -> int:
        return sum(len(pool._frames) for pool in self.pools)

    @property
    def has_free_pages(self) -> bool:
        return self.pools[0].has_free_pages

    def latch_of(self, shard: int):
        return self.pools[shard].latch

    def all_latches(self) -> _AllLatches:
        """Acquire every shard latch, ascending (abort/checkpoint use
        this to get the old single-latch atomicity across shards)."""
        return _AllLatches([pool.latch for pool in self.pools])

    # -- routed page access ------------------------------------------------------

    def pin(self, gpid: int, cold: bool = False, unchecked: bool = False):
        return self.pools[shard_of(gpid)].pin(local_page(gpid), cold=cold,
                                              unchecked=unchecked)

    def unpin(self, gpid: int, dirty: bool = False) -> None:
        self.pools[shard_of(gpid)].unpin(local_page(gpid), dirty=dirty)

    def page(self, gpid: int, write: bool = False,
             cold: bool = False) -> _RoutedPin:
        return _RoutedPin(self, gpid, write, cold)

    def prefetch(self, gpid: int, count: int) -> int:
        return self.pools[shard_of(gpid)].prefetch(local_page(gpid), count)

    # -- allocation --------------------------------------------------------------
    #
    # The unbound forms allocate in shard 0 — callers that never saw a
    # ShardView (the catalog heap, secondary indexes) live there by
    # construction, so a sharded store's metadata stays in the main file.

    def new_page(self, page_type: int) -> int:
        return self.new_page_in(0, page_type)

    def new_extent(self, page_type: int, count: int) -> list:
        return self.new_extent_in(0, page_type, count)

    def new_page_in(self, shard: int, page_type: int) -> int:
        return global_page(shard, self.pools[shard].new_page(page_type))

    def new_extent_in(self, shard: int, page_type: int, count: int) -> list:
        return [global_page(shard, local)
                for local in self.pools[shard].new_extent(page_type, count)]

    def ensure_allocated(self, gpid: int) -> None:
        self.pools[shard_of(gpid)].ensure_allocated(local_page(gpid))

    def free_page(self, gpid: int) -> None:
        self.pools[shard_of(gpid)].free_page(local_page(gpid))

    # -- pool-wide maintenance ---------------------------------------------------

    def attach_wal(self, wal) -> None:
        for pool in self.pools:
            pool.attach_wal(wal)

    def flush_page(self, gpid: int) -> None:
        self.pools[shard_of(gpid)].flush_page(local_page(gpid))

    def flush_all(self) -> None:
        for pool in self.pools:
            pool.flush_all()

    def sync(self) -> None:
        for pool in self.pools:
            pool.sync()

    def invalidate_all(self) -> None:
        for pool in self.pools:
            pool.invalidate_all()

    def close(self) -> None:
        for pool in self.pools:
            pool.close()

    def dirty_page_numbers(self) -> list:
        out = []
        for sid, pool in enumerate(self.pools):
            out.extend(global_page(sid, n)
                       for n in pool.dirty_page_numbers())
        return out

    def stats(self) -> dict:
        """Aggregated counters plus a per-shard breakdown."""
        per_shard = [pool.stats() for pool in self.pools]
        total = dict(per_shard[0])
        for entry in per_shard[1:]:
            for key, value in entry.items():
                if key != "hit_ratio":
                    total[key] += value
        lookups = total["hits"] + total["misses"]
        total["hit_ratio"] = (total["hits"] / lookups) if lookups else 0.0
        total["shards"] = per_shard
        return total


class ShardView:
    """The pool a per-shard structure allocates from.

    Hands a :class:`ShardedPool` to a heap/index with ``new_page`` /
    ``new_extent`` bound to one shard (returning gpids) and every other
    operation routed by gpid. A structure built over this view is
    entirely shard-local: its chains, allocations and latch traffic all
    stay inside one shard file.
    """

    __slots__ = ("_router", "shard")

    def __init__(self, router: ShardedPool, shard: int):
        self._router = router
        self.shard = shard

    @property
    def latch(self):
        return self._router.pools[self.shard].latch

    @property
    def capacity(self) -> int:
        return self._router.pools[self.shard].capacity

    @property
    def has_free_pages(self) -> bool:
        return self._router.pools[self.shard].has_free_pages

    @property
    def fresh_pages(self):
        return self._router.fresh_pages

    @property
    def quarantined(self):
        return self._router.quarantined

    def pin(self, gpid, cold=False, unchecked=False):
        return self._router.pin(gpid, cold=cold, unchecked=unchecked)

    def unpin(self, gpid, dirty=False):
        self._router.unpin(gpid, dirty=dirty)

    def page(self, gpid, write=False, cold=False):
        return self._router.page(gpid, write=write, cold=cold)

    def prefetch(self, gpid, count):
        return self._router.prefetch(gpid, count)

    def new_page(self, page_type: int) -> int:
        return self._router.new_page_in(self.shard, page_type)

    def new_extent(self, page_type: int, count: int) -> list:
        return self._router.new_extent_in(self.shard, page_type, count)

    def ensure_allocated(self, gpid) -> None:
        self._router.ensure_allocated(gpid)

    def free_page(self, gpid) -> None:
        self._router.free_page(gpid)

    def flush_page(self, gpid) -> None:
        self._router.flush_page(gpid)


class ShardJournal:
    """Journal facade whose ``_pool`` is a :class:`ShardView`.

    Heap files and indexes reach their pool through ``journal._pool`` and
    log edits through ``journal.edit``; wrapping the pool view around the
    real journal gives a per-(cluster, shard) structure its shard-bound
    allocator without the journal (or the WAL) knowing about shards.
    """

    __slots__ = ("_journal", "_pool")

    def __init__(self, journal, pool: ShardView):
        self._journal = journal
        self._pool = pool

    @property
    def degraded(self):
        return self._journal.degraded

    @property
    def active(self):
        return self._journal.active

    def edit(self, txn: int, page_no: int):
        return self._journal.edit(txn, page_no)

    def free_page_deferred(self, txn: int, page_no: int) -> None:
        self._journal.free_page_deferred(txn, page_no)
