"""Page file — a flat file of fixed-size pages with a free list.

The page file is the lowest layer of the storage engine: it knows how to
read and write whole pages at page-aligned offsets, how to grow the file,
and how to recycle freed pages. It knows nothing about page contents beyond
the shared header.

Page 0 is the *file header page* and is never handed out. It stores::

    magic           8 bytes   b"ODEREPRO"
    format_version  u32
    page_count      u64       pages allocated (including page 0)
    free_head       u64       head of the freed-page chain (NO_PAGE if empty)
    bootstrap       dict      named root pointers (catalog roots etc.)

The bootstrap dict maps names to integers and lets higher layers find their
root pages after reopening the file; it is small and codec-encoded in the
header page payload area.
"""

from __future__ import annotations

import os
import struct
from typing import Dict, Optional

from ..errors import PageError, StorageError, TransientIOError
from .codec import decode_value, encode_value
from .page import NO_PAGE, PAGE_SIZE, PageType, stamp_checksum

_MAGIC = b"ODEREPRO"
# v2: page headers grew a crc32c checksum field (see repro.storage.page).
_FORMAT_VERSION = 2
_FILE_HDR = struct.Struct("<8sIxxxxQQ")

#: Test hook: set to skip checksum stamping on write — an intentionally
#: broken build the crash harness must catch (and does).
_SKIP_CHECKSUM_ENV = "REPRO_SKIP_CHECKSUM"


class PageFile:
    """Fixed-size-page file with allocation, free list, and named roots."""

    def __init__(self, path: str, create: Optional[bool] = None,
                 faults=None):
        """Open (or create) the page file at *path*.

        ``create=None`` (default) creates the file if it does not exist.
        ``create=True`` requires creating a fresh file; ``create=False``
        requires an existing one. *faults* is an optional
        :class:`~repro.storage.faults.FaultInjector` shared with the rest
        of the store.
        """
        self.path = path
        self._faults = faults
        self._stamp = not os.environ.get(_SKIP_CHECKSUM_ENV)
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if create is True and exists:
            raise StorageError("page file already exists: %s" % path)
        if create is False and not exists:
            raise StorageError("page file does not exist: %s" % path)
        mode = "r+b" if exists else "w+b"
        self._file = open(path, mode)
        self._closed = False
        if exists:
            self._load_header()
        else:
            self._page_count = 1
            self._free_head = NO_PAGE
            self._bootstrap: Dict[str, int] = {}
            self._write_header()
            self.sync()

    # -- header ---------------------------------------------------------------

    def _load_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(PAGE_SIZE)
        if len(raw) < PAGE_SIZE:
            raise StorageError("page file %s: truncated header page" % self.path)
        magic, version, page_count, free_head = _FILE_HDR.unpack_from(raw, 0)
        if magic != _MAGIC:
            raise StorageError("page file %s: bad magic %r" % (self.path, magic))
        if version != _FORMAT_VERSION:
            raise StorageError("page file %s: unsupported format version %d"
                               % (self.path, version))
        self._page_count = page_count
        self._free_head = free_head
        payload_len = struct.unpack_from("<I", raw, _FILE_HDR.size)[0]
        start = _FILE_HDR.size + 4
        self._bootstrap = decode_value(raw[start:start + payload_len])

    def _write_header(self) -> None:
        buf = bytearray(PAGE_SIZE)
        _FILE_HDR.pack_into(buf, 0, _MAGIC, _FORMAT_VERSION,
                            self._page_count, self._free_head)
        payload = encode_value(self._bootstrap)
        if _FILE_HDR.size + 4 + len(payload) > PAGE_SIZE:
            raise StorageError("bootstrap dict too large for header page")
        struct.pack_into("<I", buf, _FILE_HDR.size, len(payload))
        buf[_FILE_HDR.size + 4:_FILE_HDR.size + 4 + len(payload)] = payload
        self._file.seek(0)
        self._file.write(buf)

    # -- named root pointers ----------------------------------------------------

    def get_root(self, name: str, default: int = NO_PAGE) -> int:
        """Look up a named root pointer recorded in the file header."""
        return self._bootstrap.get(name, default)

    def set_root(self, name: str, page_no: int) -> None:
        """Record a named root pointer; flushed with the header."""
        self._bootstrap[name] = page_no
        self._write_header()

    # -- page I/O -----------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return self._page_count

    def read_page(self, page_no: int, buf: bytearray) -> None:
        """Read page *page_no* into *buf* (must be PAGE_SIZE bytes).

        OS-level read failures (``EIO``) surface as
        :class:`~repro.errors.TransientIOError` — they may succeed on
        retry and ``db.run_transaction`` treats them that way.
        """
        self._check_page_no(page_no)
        f = self._faults
        try:
            if f is not None and f.enabled:
                f.fire("pagefile.read.pre", page_no=page_no)
            self._file.seek(page_no * PAGE_SIZE)
            raw = self._file.read(PAGE_SIZE)
        except OSError as exc:
            raise TransientIOError("read of page %d in %s failed: %s"
                                   % (page_no, self.path, exc)) from exc
        if f is not None and f.enabled \
                and f.fire("pagefile.read.short", page_no=page_no):
            raw = raw[:len(raw) // 2]
        if len(raw) != PAGE_SIZE:
            raise TransientIOError("short read of page %d in %s (%d bytes)"
                                   % (page_no, self.path, len(raw)))
        buf[:] = raw

    def write_page(self, page_no: int, buf) -> None:
        """Write *buf* (PAGE_SIZE bytes) to page *page_no*.

        The page checksum is stamped here — every page that reaches disk
        through this method carries one (raw zero fills elsewhere are
        valid unstamped by convention).
        """
        self._check_page_no(page_no)
        if len(buf) != PAGE_SIZE:
            raise PageError("page buffer must be %d bytes" % PAGE_SIZE)
        if self._stamp:
            if not isinstance(buf, bytearray):
                buf = bytearray(buf)
            stamp_checksum(buf)
        f = self._faults
        if f is not None and f.enabled:
            f.fire("pagefile.write.pre", page_no=page_no)
            if f.fire("pagefile.write.lost", page_no=page_no):
                return  # the write vanishes; the caller believes it landed
            torn = f.fire("pagefile.write.torn", page_no=page_no)
            if torn is not None:
                keep = (torn.param if torn.param is not None
                        else f.rng.randrange(1, PAGE_SIZE))
                self._file.seek(page_no * PAGE_SIZE)
                self._file.write(bytes(buf[:keep]))
                self._file.flush()
                f.die()  # a torn write is only observable across a crash
        self._file.seek(page_no * PAGE_SIZE)
        self._file.write(buf)
        if f is not None and f.enabled:
            f.fire("pagefile.write.post", page_no=page_no)

    def allocate_page(self) -> int:
        """Return a fresh page number, recycling freed pages first.

        The returned page's on-disk contents are unspecified; callers must
        format it before use.
        """
        if self._free_head != NO_PAGE:
            page_no = self._free_head
            buf = bytearray(PAGE_SIZE)
            self.read_page(page_no, buf)
            # next pointer of a freed page lives in the shared page header.
            self._free_head = struct.unpack_from("<Q", buf, 24)[0]
            self._write_header()
            return page_no
        page_no = self._page_count
        self._page_count += 1
        self._file.seek(page_no * PAGE_SIZE)
        self._file.write(b"\x00" * PAGE_SIZE)
        self._write_header()
        return page_no

    @property
    def has_free_pages(self) -> bool:
        """Whether the freed-page chain is non-empty."""
        return self._free_head != NO_PAGE

    def allocate_extent(self, count: int) -> list:
        """Allocate *count* physically contiguous pages at end-of-file.

        Extents deliberately bypass the free list: recycled pages are
        scattered, and the whole point of an extent is that a sequential
        scan over it turns into one large read. Returned pages are
        unformatted, like :meth:`allocate_page`.
        """
        if count < 1:
            raise PageError("extent size must be >= 1")
        start = self._page_count
        self._page_count += count
        self._file.seek(start * PAGE_SIZE)
        self._file.write(b"\x00" * (PAGE_SIZE * count))
        self._write_header()
        return list(range(start, start + count))

    def read_span(self, page_no: int, count: int) -> bytes:
        """Read up to *count* consecutive pages in one I/O.

        The span is clamped to the end of the file; the result's length
        tells the caller how many pages actually came back. Used by the
        buffer pool's readahead.
        """
        self._check_page_no(page_no)
        end = min(page_no + count, self._page_count)
        self._file.seek(page_no * PAGE_SIZE)
        return self._file.read((end - page_no) * PAGE_SIZE)

    def ensure_allocated(self, page_no: int) -> None:
        """Extend the file so *page_no* is addressable (crash recovery).

        A crash can leave the fsynced WAL ahead of the page file: a page
        was allocated and its edits logged, but the buffered file
        extension never reached disk. Redo rebuilds such pages from
        after-images; this makes them readable first. Zero fill is fine —
        every record since the page's birth is still in the log (the log
        only truncates at quiescent checkpoints, which flush all pages).
        """
        if page_no < self._page_count:
            return
        self._file.seek(self._page_count * PAGE_SIZE)
        self._file.write(b"\x00" * (PAGE_SIZE * (page_no + 1 - self._page_count)))
        self._page_count = page_no + 1
        self._write_header()

    def free_page(self, page_no: int) -> None:
        """Return *page_no* to the free list."""
        self._check_page_no(page_no)
        buf = bytearray(PAGE_SIZE)
        struct.pack_into("<I", buf, 0, page_no)
        buf[4] = PageType.FREE
        struct.pack_into("<Q", buf, 24, self._free_head)
        self.write_page(page_no, buf)
        self._free_head = page_no
        self._write_header()

    def sync(self) -> None:
        """Flush OS buffers to stable storage (fsync)."""
        f = self._faults
        if f is not None and f.enabled:
            f.fire("pagefile.sync.pre")
            if f.fire("pagefile.sync.lie"):
                return  # claimed durable, actually still in the OS cache
        self._file.flush()
        os.fsync(self._file.fileno())
        if f is not None and f.enabled:
            f.fire("pagefile.sync.post")

    def close(self) -> None:
        if not self._closed:
            self._write_header()
            self._file.flush()
            self._file.close()
            self._closed = True

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_page_no(self, page_no: int) -> None:
        if self._closed:
            raise StorageError("page file %s is closed" % self.path)
        if not 1 <= page_no < self._page_count:
            raise PageError("page %d out of range [1, %d) in %s"
                            % (page_no, self._page_count, self.path))
