"""Deterministic fault injection for the storage stack.

The page file and the WAL call :meth:`FaultInjector.fire` at named
*failpoints* bracketing every OS-level I/O. An unarmed injector is a
single attribute check (``if f is not None and f.enabled``) on those
paths; an armed one can deterministically inject the classic storage
failure modes at any point:

=========== =================================================================
``die``     hard process death (``os._exit``) — models a crash/power cut
``error``   the syscall fails with ``EIO`` (an :class:`OSError` the site
            translates into its typed error)
``torn``    a page write persists only its first N bytes, then the process
            dies — models a torn sector write
``lost``    a write is silently dropped (the site returns as if it
            succeeded) — models a lost write / lying firmware
``lie``     an fsync is skipped but reported successful — models a
            battery-less write cache
``short``   a read returns fewer bytes than asked
=========== =================================================================

Which action makes sense depends on the site, so every registered
failpoint carries a default action (see :data:`KNOWN_FAILPOINTS`); the
crash harness enumerates that table to build its kill-point matrix.

Failpoints are armed programmatically (``db.faults.arm(...)``) or through
the environment, which is how the harness arms a *subprocess* before it
even finishes importing::

    REPRO_FAULTS="wal.flush.pre:die:3;pagefile.write.torn:torn:1"
    REPRO_FAULTS_SEED=42

Each entry is ``name:action[:at_hit]`` — the action triggers on the
``at_hit``-th time the point is reached (1-based, default 1). The seed
drives the RNG used for randomized parameters (e.g. how many bytes of a
torn write survive), so every run is reproducible.
"""

from __future__ import annotations

import errno
import os
import random
from typing import Dict, List, Optional, Tuple

from ..errors import StorageError

ENV_FAULTS = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"

#: Exit code used by ``die``/``torn`` so the harness can tell an injected
#: death from an ordinary crash.
DIE_EXIT_CODE = 47

#: Every failpoint the storage stack fires, with its default action.
#: The crash harness derives its kill-point matrix from this table.
KNOWN_FAILPOINTS: Tuple[Tuple[str, str], ...] = (
    ("pagefile.write.pre", "die"),
    ("pagefile.write.torn", "torn"),
    ("pagefile.write.lost", "lost"),
    ("pagefile.write.post", "die"),
    ("pagefile.read.pre", "error"),
    ("pagefile.read.short", "short"),
    ("pagefile.sync.pre", "die"),
    ("pagefile.sync.lie", "lie"),
    ("pagefile.sync.post", "die"),
    ("wal.append.pre", "die"),
    ("wal.append.post", "die"),
    ("wal.flush.pre", "die"),
    ("wal.flush.fsync", "error"),
    ("wal.flush.lie", "lie"),
    ("wal.flush.post", "die"),
    ("wal.truncate.pre", "die"),
    ("wal.truncate.post", "die"),
    # Sharded-store metadata points (fired only when the store runs with
    # more than one shard — the harness covers them via shard_kill_specs).
    ("shard.open.pre", "die"),
    ("shard.open.post", "die"),
    ("shard.root.pre", "die"),
    ("recluster.pre", "die"),
    ("recluster.commit.pre", "die"),
    # Network-server socket-layer points (fired only under `repro serve`
    # — the embedded matrix skips them; the server crash harness covers
    # them). `server.send.pre` kills between commit and the client ack
    # (acked-durable-but-unacked, the classic server crash window);
    # `server.send.torn` ships a partial reply frame then dies;
    # `server.recv.pre` fails a request read with EIO.
    ("server.send.pre", "die"),
    ("server.send.torn", "torn"),
    ("server.recv.pre", "error"),
)

_KNOWN = dict(KNOWN_FAILPOINTS)

ACTIONS = ("die", "error", "torn", "lost", "lie", "short")


class FaultPoint:
    """One armed failpoint: what to do and when."""

    __slots__ = ("name", "action", "at_hit", "count", "param", "hits",
                 "fired")

    def __init__(self, name: str, action: str, at_hit: int = 1,
                 count: int = 1, param: Optional[int] = None):
        self.name = name
        self.action = action
        self.at_hit = at_hit
        #: how many consecutive hits trigger (0 = every hit from at_hit on)
        self.count = count
        #: action parameter (torn: surviving byte count; short: bytes kept)
        self.param = param
        self.hits = 0
        self.fired = 0

    def __repr__(self):
        return ("FaultPoint(%r, %r, at_hit=%d, hits=%d, fired=%d)"
                % (self.name, self.action, self.at_hit, self.hits,
                   self.fired))


class FaultInjector:
    """Named-failpoint registry shared by one store's page file and WAL."""

    def __init__(self, seed: Optional[int] = None):
        self.enabled = False
        self._points: Dict[str, FaultPoint] = {}
        self.rng = random.Random(seed if seed is not None else 0)
        #: total faults actually injected (metrics: ``faults.injected``)
        self.injected = 0
        #: ``(name, action)`` trace of injected faults, for tests
        self.trace: List[Tuple[str, str]] = []
        self._obs_events = None

    @classmethod
    def from_env(cls, environ=os.environ) -> "FaultInjector":
        """Build an injector armed from ``REPRO_FAULTS``(+``_SEED``)."""
        seed = environ.get(ENV_SEED)
        injector = cls(seed=int(seed) if seed else None)
        spec = environ.get(ENV_FAULTS, "")
        for entry in filter(None, (e.strip() for e in spec.split(";"))):
            parts = entry.split(":")
            if len(parts) not in (2, 3):
                raise StorageError(
                    "bad %s entry %r (want name:action[:at_hit])"
                    % (ENV_FAULTS, entry))
            name, action = parts[0], parts[1]
            at_hit = int(parts[2]) if len(parts) == 3 else 1
            injector.arm(name, action, at_hit=at_hit)
        return injector

    def attach_observability(self, events) -> None:
        self._obs_events = events

    def arm(self, name: str, action: Optional[str] = None, at_hit: int = 1,
            count: int = 1, param: Optional[int] = None) -> FaultPoint:
        """Arm failpoint *name*; the default action is the site's natural
        failure mode from :data:`KNOWN_FAILPOINTS`."""
        if action is None:
            action = _KNOWN.get(name)
            if action is None:
                raise StorageError("unknown failpoint %r has no default "
                                   "action" % name)
        if action not in ACTIONS:
            raise StorageError("unknown fault action %r (one of %s)"
                               % (action, ", ".join(ACTIONS)))
        point = FaultPoint(name, action, at_hit=at_hit, count=count,
                           param=param)
        self._points[name] = point
        self.enabled = True
        return point

    def disarm(self, name: Optional[str] = None) -> None:
        """Disarm one failpoint, or all of them."""
        if name is None:
            self._points.clear()
        else:
            self._points.pop(name, None)
        self.enabled = bool(self._points)

    def armed(self, name: str) -> Optional[FaultPoint]:
        return self._points.get(name)

    # -- the hot path ---------------------------------------------------------

    def fire(self, name: str, **ctx) -> Optional[FaultPoint]:
        """Reach failpoint *name*.

        Returns ``None`` when nothing triggers. ``die`` exits the process
        on the spot; ``error`` raises ``OSError(EIO)`` (the site wraps it
        in its typed error). The site-cooperative actions (``torn``,
        ``lost``, ``lie``, ``short``) return the armed point and the call
        site implements the failure.
        """
        point = self._points.get(name)
        if point is None:
            return None
        point.hits += 1
        if point.hits < point.at_hit:
            return None
        if point.count and point.hits >= point.at_hit + point.count:
            return None
        point.fired += 1
        self.injected += 1
        self.trace.append((name, point.action))
        if self._obs_events is not None:
            self._obs_events.emit("fault_injected", failpoint=name,
                                  action=point.action, **ctx)
        if point.action == "die":
            os._exit(DIE_EXIT_CODE)
        if point.action == "error":
            raise OSError(errno.EIO, "injected EIO at %s" % name)
        return point

    def die(self) -> None:
        """Immediate injected process death (used by ``torn`` sites after
        the partial write has been issued)."""
        os._exit(DIE_EXIT_CODE)

    def stats(self) -> Dict[str, int]:
        return {"armed": len(self._points), "injected": self.injected}

    def __repr__(self):
        return ("FaultInjector(armed=%d, injected=%d)"
                % (len(self._points), self.injected))
