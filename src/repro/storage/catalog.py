"""System catalog — persistent registry of clusters, indexes and metadata.

The catalog is itself stored in the engine (a dedicated heap file whose
first page is recorded in the page file's bootstrap area), so catalog
changes are transactional like everything else: creating a cluster inside a
transaction that aborts leaves no trace.

Catalog records are codec-encoded dicts. Two record shapes exist:

``{"kind": "cluster", ...}``
    One per cluster (the paper's type extents): name, numeric id, parent
    cluster names, the first page of the cluster's object heap, the first
    page of its object-directory hash index, the next object serial number,
    and its secondary indexes (field name -> descriptor).

``{"kind": "meta", "key": ..., "value": ...}``
    Free-form key/value metadata used by the object layer (schema notes,
    database-level settings).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from ..errors import CatalogError
from .codec import decode_value, encode_value
from .heap import RID, HeapFile
from .journal import Journal


class IndexInfo:
    """Descriptor of one secondary index on one or more cluster fields.

    ``field`` is the registry name ("age", or "region,age" for a
    composite index); ``fields`` is the ordered list of indexed fields.
    Single-field indexes key on the field value; composite indexes key on
    the tuple of values, in declaration order.
    """

    __slots__ = ("field", "fields", "kind", "root_page", "unique")

    def __init__(self, field: str, kind: str, root_page: int, unique: bool,
                 fields: Optional[List[str]] = None):
        if kind not in ("btree", "hash"):
            raise CatalogError("unknown index kind %r" % kind)
        self.field = field
        self.fields = list(fields) if fields else [field]
        self.kind = kind
        self.root_page = root_page
        self.unique = unique

    @property
    def is_composite(self) -> bool:
        return len(self.fields) > 1

    def to_state(self) -> List:
        return [self.field, self.kind, self.root_page, self.unique,
                self.fields]

    @classmethod
    def from_state(cls, state: List) -> "IndexInfo":
        if len(state) == 4:  # records written before composite support
            field, kind, root_page, unique = state
            return cls(field, kind, root_page, unique)
        field, kind, root_page, unique, fields = state
        return cls(field, kind, root_page, unique, fields)


class ClusterInfo:
    """Catalog entry for one cluster (type extent).

    ``shards`` lists one ``[heap_page, directory_page]`` pair (global page
    ids) per store shard. ``heap_page``/``directory_page`` always mirror
    ``shards[0]`` so records written by single-shard stores — which omit
    the field entirely — and readers predating it stay interchangeable.
    """

    __slots__ = ("name", "cluster_id", "parents", "heap_page",
                 "directory_page", "next_serial", "indexes", "shards",
                 "_rid")

    def __init__(self, name: str, cluster_id: int, parents: List[str],
                 heap_page: int, directory_page: int, next_serial: int = 1,
                 indexes: Optional[Dict[str, IndexInfo]] = None,
                 rid: Optional[RID] = None,
                 shards: Optional[List[List[int]]] = None):
        self.name = name
        self.cluster_id = cluster_id
        self.parents = list(parents)
        self.heap_page = heap_page
        self.directory_page = directory_page
        self.next_serial = next_serial
        self.indexes = indexes if indexes is not None else {}
        self.shards = (list(shards) if shards
                       else [[heap_page, directory_page]])
        self._rid = rid

    def to_record(self) -> bytes:
        record = {
            "kind": "cluster",
            "name": self.name,
            "cluster_id": self.cluster_id,
            "parents": self.parents,
            "heap_page": self.heap_page,
            "directory_page": self.directory_page,
            "next_serial": self.next_serial,
            "indexes": {f: ix.to_state() for f, ix in self.indexes.items()},
        }
        if len(self.shards) > 1:
            record["shards"] = [list(pair) for pair in self.shards]
        return encode_value(record)

    @classmethod
    def from_record(cls, raw: bytes, rid: RID) -> "ClusterInfo":
        state = decode_value(raw)
        indexes = {f: IndexInfo.from_state(s)
                   for f, s in state["indexes"].items()}
        return cls(state["name"], state["cluster_id"], state["parents"],
                   state["heap_page"], state["directory_page"],
                   state["next_serial"], indexes, rid,
                   shards=state.get("shards"))


class Catalog:
    """In-memory view of the catalog heap, with transactional updates."""

    BOOTSTRAP_KEY = "catalog_heap"

    def __init__(self, journal: Journal, pagefile, txn_factory):
        """Open (creating on first use) the catalog.

        *txn_factory* is a zero-argument callable yielding a short
        transaction (begin) and is only used for first-time creation.
        """
        self._journal = journal
        self._pagefile = pagefile
        #: The catalog's own lock. It used to share the journal/storage
        #: latch; with sharded pools the catalog sits *above* the shard
        #: latches in the lock order (catalog lock -> shard latch via the
        #: catalog heap's page pins), and store methods resolve cluster
        #: metadata before taking a shard latch — never the other way.
        self._lock = threading.RLock()
        first_page = pagefile.get_root(self.BOOTSTRAP_KEY)
        if first_page == 0:
            txn = txn_factory()
            heap = HeapFile.create(journal, txn)
            journal.commit(txn)
            pagefile.set_root(self.BOOTSTRAP_KEY, heap.first_page)
            self._heap = heap
        else:
            self._heap = HeapFile(journal, first_page)
        self._clusters: Dict[str, ClusterInfo] = {}
        self._meta_rids: Dict = {}
        self._meta: Dict = {}
        self._next_cluster_id = 1
        self._reload()

    def _reload(self) -> None:
        self._clusters.clear()
        self._meta.clear()
        self._meta_rids.clear()
        self._next_cluster_id = 1
        for rid, raw in self._heap.scan():
            state = decode_value(raw)
            if state["kind"] == "cluster":
                info = ClusterInfo.from_record(raw, rid)
                self._clusters[info.name] = info
                self._next_cluster_id = max(self._next_cluster_id,
                                            info.cluster_id + 1)
            elif state["kind"] == "meta":
                self._meta[state["key"]] = state["value"]
                self._meta_rids[state["key"]] = rid
            else:
                raise CatalogError("unknown catalog record kind %r"
                                   % state["kind"])

    # -- clusters ---------------------------------------------------------------

    def clusters(self) -> Iterator[ClusterInfo]:
        with self._lock:
            return iter(list(self._clusters.values()))

    def get_cluster(self, name: str) -> Optional[ClusterInfo]:
        with self._lock:
            return self._clusters.get(name)

    def has_cluster(self, name: str) -> bool:
        with self._lock:
            return name in self._clusters

    def add_cluster(self, txn: int, name: str, parents: List[str],
                    heap_page: int, directory_page: int,
                    shards: Optional[List[List[int]]] = None) -> ClusterInfo:
        with self._lock:
            if name in self._clusters:
                raise CatalogError("cluster %r already exists" % name)
            info = ClusterInfo(name, self._next_cluster_id, parents,
                               heap_page, directory_page, shards=shards)
            self._next_cluster_id += 1
            info._rid = self._heap.insert(txn, info.to_record())
            self._clusters[name] = info
            return info

    def save_cluster(self, txn: int, info: ClusterInfo) -> None:
        """Persist changed fields (serial counter, indexes) of a cluster."""
        with self._lock:
            if info._rid is None:
                raise CatalogError("cluster %r has no catalog record"
                                   % info.name)
            self._heap.update(txn, info._rid, info.to_record())

    def children_of(self, name: str) -> List[ClusterInfo]:
        """Direct subclusters (clusters listing *name* as a parent)."""
        with self._lock:
            return [c for c in self._clusters.values() if name in c.parents]

    # -- metadata ---------------------------------------------------------------

    def get_meta(self, key, default=None):
        with self._lock:
            return self._meta.get(key, default)

    def set_meta(self, txn: int, key, value) -> None:
        record = encode_value({"kind": "meta", "key": key, "value": value})
        with self._lock:
            rid = self._meta_rids.get(key)
            if rid is None:
                self._meta_rids[key] = self._heap.insert(txn, record)
            else:
                self._heap.update(txn, rid, record)
            self._meta[key] = value

    def invalidate(self) -> None:
        """Re-read everything from disk (after an abort touched the catalog)."""
        with self._lock:
            self._reload()
