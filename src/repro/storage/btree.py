"""Disk-resident B+tree index.

Keys are arbitrary Python values mapped through the order-preserving
:func:`repro.storage.codec.encode_key`; comparisons inside the tree are
plain byte comparisons. Values are arbitrary codec-encodable Python values
(the object layer stores RIDs and object ids).

Duplicate user keys are handled the classic way: every entry's *sort key*
is the pair ``(encoded key, tiebreak)`` where the tiebreak derives from
the entry's value, making sort keys unique. Separators therefore always
cleanly partition entries — a run of equal user keys can never straddle a
split in a way that breaks subtree bounds, and point/range searches walk
exactly the leaves holding the key's run.

Each tree node occupies one page and is stored as a single slotted-page
record holding the codec-encoded node state. Leaves are chained through the
page header's ``next_page`` pointer for range scans. A node splits when its
encoded size exceeds :data:`MAX_NODE_BYTES`.

Deletion is *lazy* in the PostgreSQL tradition: entries are removed
immediately, but nodes are only detached when completely empty (no
borrow/merge rebalancing). The tree remains correct under any workload;
pathological delete patterns cost extra page reads, never wrong answers.

The root page number is stable for the life of the index (the catalog
records it once): when the root splits, the old root's content moves to a
fresh page and the root page becomes the new internal node in place.

All mutations run through :class:`~repro.storage.journal.Journal` edits,
so index updates commit and roll back with their transaction.

Decoding a node's record on every access dominated lookup cost, so each
tree keeps a small cache of decoded nodes validated by the page's LSN: any
change to the page (including a rollback or recovery redo) bumps the LSN
and invalidates the entry for free. Cached nodes are returned as shallow
copies, so callers may mutate them before writing back.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from ..errors import CodecError, DuplicateKeyError, IndexError_
from .codec import decode_value, encode_key, encode_value
from .journal import Journal
from .page import MAX_RECORD_SIZE, NO_PAGE, PageType

#: Split threshold for a node's encoded size. Leaves room for the record
#: header and for one oversized entry landing on a nearly-full node.
MAX_NODE_BYTES = MAX_RECORD_SIZE - 512


def _tiebreak(value: Any) -> bytes:
    """A deterministic byte string derived from *value*.

    Appended to the encoded key to make entry sort keys unique. Order
    among equal user keys is incidental; only determinism matters.
    """
    try:
        return encode_key(value)
    except CodecError:
        return encode_value(value)


class _Node:
    """In-memory image of one tree node.

    ``kbs``/``ties`` are parallel sorted lists forming the entry sort
    keys; ``keys`` holds the original key values; leaves carry ``vals``,
    internal nodes carry ``children`` (len(kbs) + 1 pages).
    """

    __slots__ = ("page_no", "leaf", "kbs", "ties", "keys", "vals",
                 "children", "next")

    def __init__(self, page_no: int, leaf: bool):
        self.page_no = page_no
        self.leaf = leaf
        self.kbs: List[bytes] = []
        self.ties: List[bytes] = []
        self.keys: List[Any] = []
        self.vals: List[Any] = []
        self.children: List[int] = []
        self.next = NO_PAGE

    def copy(self) -> "_Node":
        """Shallow copy: fresh lists, shared (treated-as-immutable) items."""
        dup = _Node(self.page_no, self.leaf)
        dup.kbs = list(self.kbs)
        dup.ties = list(self.ties)
        dup.keys = list(self.keys)
        dup.vals = list(self.vals)
        dup.children = list(self.children)
        dup.next = self.next
        return dup

    def sort_key(self, i: int) -> Tuple[bytes, bytes]:
        return (self.kbs[i], self.ties[i])

    def bisect_left(self, pair: Tuple[bytes, bytes]) -> int:
        lo, hi = 0, len(self.kbs)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.sort_key(mid) < pair:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def bisect_right(self, pair: Tuple[bytes, bytes]) -> int:
        lo, hi = 0, len(self.kbs)
        while lo < hi:
            mid = (lo + hi) // 2
            if pair < self.sort_key(mid):
                hi = mid
            else:
                lo = mid + 1
        return lo

    def encoded(self) -> bytes:
        if self.leaf:
            state = [True, self.kbs, self.keys, self.vals, self.ties]
        else:
            state = [False, self.kbs, self.keys, self.children, self.ties]
        return encode_value(state)

    @classmethod
    def from_bytes(cls, page_no: int, raw: bytes, next_page: int) -> "_Node":
        state = decode_value(raw)
        node = cls(page_no, state[0])
        node.kbs = state[1]
        node.keys = state[2]
        if node.leaf:
            node.vals = state[3]
        else:
            node.children = state[3]
        node.ties = state[4]
        node.next = next_page
        return node


class BTree:
    """A B+tree over (key, value) entries.

    With ``unique=True`` an insert of an existing key raises
    :class:`DuplicateKeyError`. Otherwise duplicate keys are kept as
    separate entries and :meth:`search` returns all their values.
    """

    #: Decoded-node cache capacity (nodes, not bytes).
    NODE_CACHE_SIZE = 512

    def __init__(self, journal: Journal, root_page: int, unique: bool = False):
        self._journal = journal
        self._pool = journal._pool
        self.root_page = root_page
        self.unique = unique
        #: page_no -> (page_lsn at decode time, decoded node)
        self._node_cache: dict = {}

    @classmethod
    def create(cls, journal: Journal, txn: int, unique: bool = False) -> "BTree":
        """Allocate an empty tree (a single empty leaf as root)."""
        page_no = journal._pool.new_page(PageType.BTREE_LEAF)
        tree = cls(journal, page_no, unique=unique)
        root = _Node(page_no, leaf=True)
        with journal.edit(txn, page_no) as page:
            page.insert(root.encoded())
        return tree

    # -- node I/O -----------------------------------------------------------

    def _read(self, page_no: int) -> _Node:
        with self._pool.page(page_no) as page:
            lsn = page.page_lsn
            cached = self._node_cache.get(page_no)
            if cached is not None and cached[0] == lsn:
                return cached[1].copy()
            raw = page.read(0)
            nxt = page.next_page
        node = _Node.from_bytes(page_no, raw, nxt)
        self._cache_node(lsn, node)
        return node.copy()

    def _cache_node(self, lsn: int, node: _Node) -> None:
        if self.NODE_CACHE_SIZE <= 0:
            return  # cache disabled (ablation studies set this to 0)
        if len(self._node_cache) >= self.NODE_CACHE_SIZE:
            self._node_cache.clear()
        self._node_cache[node.page_no] = (lsn, node)

    def _write(self, txn: int, node: _Node) -> None:
        with self._journal.edit(txn, node.page_no) as page:
            page.update(0, node.encoded())
            page.next_page = node.next
        # The edit stamps the page LSN on exit; re-read it for the cache.
        with self._pool.page(node.page_no) as page:
            self._cache_node(page.page_lsn, node.copy())

    def _alloc(self, txn: int, leaf: bool) -> _Node:
        ptype = PageType.BTREE_LEAF if leaf else PageType.BTREE_INTERNAL
        page_no = self._pool.new_page(ptype)
        node = _Node(page_no, leaf)
        with self._journal.edit(txn, page_no) as page:
            page.insert(node.encoded())
        return node

    # -- insert ---------------------------------------------------------------

    def insert(self, txn: int, key: Any, value: Any) -> None:
        """Insert ``(key, value)``; splits propagate up to the root."""
        kb = encode_key(key)
        # Unique trees hold at most one entry per key, so no run can ever
        # form: the empty tiebreak makes the duplicate check an exact
        # position probe.
        tie = b"" if self.unique else _tiebreak(value)
        split = self._insert_rec(txn, self.root_page, kb, tie, key, value)
        if split is None:
            return
        sep_kb, sep_tie, sep_key, new_page = split
        # Root split: move old root aside, rebuild root in place.
        old = self._read(self.root_page)
        moved = self._alloc(txn, old.leaf)
        moved.kbs, moved.ties, moved.keys = old.kbs, old.ties, old.keys
        if old.leaf:
            moved.vals = old.vals
            moved.next = old.next
        else:
            moved.children = old.children
        self._write(txn, moved)
        root = _Node(self.root_page, leaf=False)
        root.kbs = [sep_kb]
        root.ties = [sep_tie]
        root.keys = [sep_key]
        root.children = [moved.page_no, new_page]
        with self._journal.edit(txn, self.root_page) as page:
            page.update(0, root.encoded())
            page.next_page = NO_PAGE
            page.page_type = PageType.BTREE_INTERNAL
        self._node_cache.pop(self.root_page, None)

    def _insert_rec(self, txn: int, page_no: int, kb: bytes, tie: bytes,
                    key: Any, value: Any):
        node = self._read(page_no)
        pair = (kb, tie)
        if node.leaf:
            pos = node.bisect_left(pair)
            if self.unique and pos < len(node.kbs) and node.kbs[pos] == kb:
                raise DuplicateKeyError(
                    "duplicate key %r in unique index" % (key,))
            node.kbs.insert(pos, kb)
            node.ties.insert(pos, tie)
            node.keys.insert(pos, key)
            node.vals.insert(pos, value)
            return self._write_maybe_split(txn, node)
        pos = node.bisect_right(pair)
        split = self._insert_rec(txn, node.children[pos], kb, tie, key, value)
        if split is None:
            return None
        sep_kb, sep_tie, sep_key, new_page = split
        node.kbs.insert(pos, sep_kb)
        node.ties.insert(pos, sep_tie)
        node.keys.insert(pos, sep_key)
        node.children.insert(pos + 1, new_page)
        return self._write_maybe_split(txn, node)

    def _write_maybe_split(self, txn: int, node: _Node):
        raw = node.encoded()
        if len(raw) <= MAX_NODE_BYTES or len(node.kbs) < 2:
            with self._journal.edit(txn, node.page_no) as page:
                page.update(0, raw)
                page.next_page = node.next
            with self._pool.page(node.page_no) as page:
                self._cache_node(page.page_lsn, node.copy())
            return None
        mid = len(node.kbs) // 2
        right = self._alloc(txn, node.leaf)
        if node.leaf:
            right.kbs = node.kbs[mid:]
            right.ties = node.ties[mid:]
            right.keys = node.keys[mid:]
            right.vals = node.vals[mid:]
            right.next = node.next
            node.kbs = node.kbs[:mid]
            node.ties = node.ties[:mid]
            node.keys = node.keys[:mid]
            node.vals = node.vals[:mid]
            node.next = right.page_no
            sep_kb, sep_tie, sep_key = (right.kbs[0], right.ties[0],
                                        right.keys[0])
        else:
            # The middle separator moves up, it is not duplicated.
            sep_kb, sep_tie, sep_key = (node.kbs[mid], node.ties[mid],
                                        node.keys[mid])
            right.kbs = node.kbs[mid + 1:]
            right.ties = node.ties[mid + 1:]
            right.keys = node.keys[mid + 1:]
            right.children = node.children[mid + 1:]
            node.kbs = node.kbs[:mid]
            node.ties = node.ties[:mid]
            node.keys = node.keys[:mid]
            node.children = node.children[:mid + 1]
        self._write(txn, right)
        self._write(txn, node)
        return sep_kb, sep_tie, sep_key, right.page_no

    # -- lookup ---------------------------------------------------------------

    def search(self, key: Any) -> List[Any]:
        """All values stored under *key* (empty list if none)."""
        kb = encode_key(key)
        out: List[Any] = []
        page_no = self._leaf_for((kb, b""))
        while page_no != NO_PAGE:
            node = self._read(page_no)
            start = node.bisect_left((kb, b""))
            for i in range(start, len(node.kbs)):
                if node.kbs[i] != kb:
                    return out  # sorted: the run (if any) has ended
                out.append(node.vals[i])
            # Reached the end of this leaf without passing kb: the run may
            # continue (or begin) on the next leaf in the chain.
            page_no = node.next
        return out

    def contains(self, key: Any) -> bool:
        return bool(self.search(key))

    def range(self, lo: Any = None, hi: Any = None,
              include_hi: bool = False) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` for lo <= key < hi (<= hi if include_hi)."""
        lo_kb = encode_key(lo) if lo is not None else None
        hi_kb = encode_key(hi) if hi is not None else None
        return self._scan_range(lo_kb, hi_kb, include_hi)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All ``(key, value)`` entries in key order."""
        return self._scan_range(None, None, False)

    def _scan_range(self, lo_kb: Optional[bytes], hi_kb: Optional[bytes],
                    include_hi: bool) -> Iterator[Tuple[Any, Any]]:
        page_no = self._leaf_for(None if lo_kb is None else (lo_kb, b""))
        first = True
        while page_no != NO_PAGE:
            node = self._read(page_no)
            start = 0
            if first and lo_kb is not None:
                start = node.bisect_left((lo_kb, b""))
            first = False
            for i in range(start, len(node.kbs)):
                kb = node.kbs[i]
                if hi_kb is not None:
                    if kb > hi_kb or (kb == hi_kb and not include_hi):
                        return
                yield node.keys[i], node.vals[i]
            page_no = node.next

    def _leaf_for(self, pair: Optional[Tuple[bytes, bytes]]) -> int:
        page_no = self.root_page
        while True:
            node = self._read(page_no)
            if node.leaf:
                return page_no
            if pair is None:
                page_no = node.children[0]
            else:
                page_no = node.children[node.bisect_left(pair)]

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- delete ---------------------------------------------------------------

    def delete(self, txn: int, key: Any, value: Any = None) -> int:
        """Remove entries for *key*.

        With *value* given, removes only ``(key, value)`` pairs; otherwise
        removes every entry under *key*. Returns the number removed.
        Empty non-root nodes are detached from their parents.
        """
        kb = encode_key(key)
        path: List[Tuple[_Node, int]] = []
        page_no = self.root_page
        while True:
            node = self._read(page_no)
            if node.leaf:
                break
            pos = node.bisect_left((kb, b""))
            path.append((node, pos))
            page_no = node.children[pos]
        removed = 0
        while True:
            pos = node.bisect_left((kb, b""))
            changed = False
            while pos < len(node.kbs) and node.kbs[pos] == kb:
                if value is None or node.vals[pos] == value:
                    del node.kbs[pos], node.ties[pos]
                    del node.keys[pos], node.vals[pos]
                    removed += 1
                    changed = True
                else:
                    pos += 1
            past_key = pos < len(node.kbs)
            if changed:
                self._write(txn, node)
                if not node.kbs and node.page_no != self.root_page:
                    self._detach_empty_leaf(txn, node, path)
            if past_key or node.next == NO_PAGE:
                break
            node = self._read(node.next)
            path = []  # parents of chained leaves are unknown; skip detach
        return removed

    def _detach_empty_leaf(self, txn: int, leaf: _Node,
                           path: List[Tuple[_Node, int]]) -> None:
        """Unlink an empty leaf from its parent and the leaf chain."""
        if not path:
            return
        parent, pos = path[-1]
        if pos > 0:
            left = self._read(parent.children[pos - 1])
            if left.leaf and left.next == leaf.page_no:
                left.next = leaf.next
                self._write(txn, left)
            else:
                return  # structure unexpected; keep the empty leaf
        else:
            return  # no left sibling under this parent; keep the empty leaf
        del parent.children[pos]
        sep = max(pos - 1, 0)
        if parent.kbs:
            del parent.kbs[sep], parent.ties[sep], parent.keys[sep]
        self._write(txn, parent)
        self._journal.free_page_deferred(txn, leaf.page_no)
        self._node_cache.pop(leaf.page_no, None)
        # Collapse a root that has decayed to a single child.
        if (parent.page_no == self.root_page and not parent.kbs
                and len(parent.children) == 1 and len(path) == 1):
            self._collapse_root(txn, parent.children[0])

    def _collapse_root(self, txn: int, only_child: int) -> None:
        child = self._read(only_child)
        root = _Node(self.root_page, child.leaf)
        root.kbs, root.ties, root.keys = child.kbs, child.ties, child.keys
        if child.leaf:
            root.vals = child.vals
            root.next = child.next
        else:
            root.children = child.children
        with self._journal.edit(txn, self.root_page) as page:
            page.update(0, root.encoded())
            page.next_page = root.next
            page.page_type = (PageType.BTREE_LEAF if root.leaf
                              else PageType.BTREE_INTERNAL)
        self._node_cache.pop(self.root_page, None)
        self._node_cache.pop(only_child, None)
        self._journal.free_page_deferred(txn, only_child)

    # -- diagnostics --------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate sort-key ordering and structure; raises IndexError_."""
        self._check_node(self.root_page, None, None)
        prev = None
        for key, _val in self._scan_range(None, None, False):
            cur = encode_key(key)
            if prev is not None and cur < prev:
                raise IndexError_("leaf chain out of order")
            prev = cur

    def _check_node(self, page_no: int, lo, hi) -> None:
        node = self._read(page_no)
        for i in range(len(node.kbs)):
            pair = node.sort_key(i)
            if i and pair < node.sort_key(i - 1):
                raise IndexError_("unsorted node %d" % page_no)
            if lo is not None and pair < lo:
                raise IndexError_("key below subtree bound in node %d"
                                  % page_no)
            if hi is not None and pair >= hi:
                raise IndexError_("key above subtree bound in node %d"
                                  % page_no)
        if not node.leaf:
            if len(node.children) != len(node.kbs) + 1:
                raise IndexError_("bad child count in node %d" % page_no)
            bounds = [lo] + [node.sort_key(i)
                             for i in range(len(node.kbs))] + [hi]
            for i, child in enumerate(node.children):
                self._check_node(child, bounds[i], bounds[i + 1])
