"""Metrics-driven dynamic reclustering daemon.

The store records which objects ``get`` touches when
:attr:`~repro.storage.store.Store.track_access` is on. This daemon
periodically drains that profile, picks the objects hot enough to matter
(at least ``min_hits`` accesses in the window), and calls
:meth:`Store.recluster_shard` so each shard rewrites with its hot
objects packed into the leading extent — the dynamic counterpart of the
paper's static ``cluster`` placement hints: objects that are *used*
together migrate to live together, and the scans/dereference runs that
made them hot read fewer pages next time.

The daemon is deliberately dumb and safe: each migration is an ordinary
transaction under the cluster's X lock, so it serializes against
application writers via 2PL and against MVCC chain walkers via the scan
gate; if a migration deadlocks, hits a degraded store or loses a race
with DDL, the round is simply skipped — reclustering is an optimization,
never a correctness dependency.

Environment knobs (read at daemon construction):

``REPRO_RECLUSTER`` — set to ``0`` to disable the daemon entirely.
``REPRO_RECLUSTER_INTERVAL`` — seconds between rounds (default 30).
``REPRO_RECLUSTER_MIN_HITS`` — accesses before an object counts as hot
(default 64).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Tuple

from ..errors import (CatalogError, DeadlockError, DegradedModeError,
                      LockTimeoutError)

ENV_ENABLE = "REPRO_RECLUSTER"
ENV_INTERVAL = "REPRO_RECLUSTER_INTERVAL"
ENV_MIN_HITS = "REPRO_RECLUSTER_MIN_HITS"

DEFAULT_INTERVAL = 30.0
DEFAULT_MIN_HITS = 64


def enabled(environ=os.environ) -> bool:
    """Whether the daemon should run (``REPRO_RECLUSTER`` != ``0``)."""
    return environ.get(ENV_ENABLE, "1") != "0"


def _env_float(environ, name: str, default: float) -> float:
    try:
        return float(environ.get(name, ""))
    except ValueError:
        return default


class ReclusterDaemon(threading.Thread):
    """Background thread migrating hot objects into shared extents."""

    def __init__(self, store, interval: float = None,
                 min_hits: int = None, environ=os.environ):
        super().__init__(name="repro-recluster", daemon=True)
        self.store = store
        self.interval = (interval if interval is not None
                         else _env_float(environ, ENV_INTERVAL,
                                         DEFAULT_INTERVAL))
        self.min_hits = (min_hits if min_hits is not None
                         else int(_env_float(environ, ENV_MIN_HITS,
                                             DEFAULT_MIN_HITS)))
        self._stop_evt = threading.Event()
        #: rounds attempted / migrations skipped on contention, for tests
        self.rounds = 0
        self.skipped = 0

    def run(self) -> None:
        self.store.track_access = True
        try:
            while not self._stop_evt.wait(self.interval):
                try:
                    self.run_once()
                except Exception:
                    # The store may be mid-close or degraded; a daemon
                    # round must never take the process down.
                    self.skipped += 1
        finally:
            self.store.track_access = False

    def stop(self) -> None:
        """Signal and join the daemon (called from ``Database.close``)."""
        self._stop_evt.set()
        if self.is_alive():
            self.join(timeout=10.0)

    # -- one round ---------------------------------------------------------

    def plan(self) -> Dict[str, Dict[int, List]]:
        """Drain the access profile into cluster -> shard -> hot serials
        (rank order: hottest first)."""
        profile = self.store.take_access_profile()
        by_cluster: Dict[str, List[Tuple[int, object]]] = {}
        for (cluster, serial), hits in profile.items():
            if hits >= self.min_hits:
                by_cluster.setdefault(cluster, []).append((hits, serial))
        out: Dict[str, Dict[int, List]] = {}
        for cluster, ranked in by_cluster.items():
            ranked.sort(key=lambda pair: (-pair[0], repr(pair[1])))
            shards: Dict[int, List] = {}
            for _hits, serial in ranked:
                sid = self.store._shard_of_key((serial, 0))
                shards.setdefault(sid, []).append(serial)
            out[cluster] = shards
        return out

    def run_once(self) -> int:
        """One reclustering round; returns how many shards were rewritten."""
        self.rounds += 1
        rewritten = 0
        for cluster, shards in self.plan().items():
            if not self.store.has_cluster(cluster):
                continue  # dropped since the accesses were recorded
            for sid, serials in shards.items():
                try:
                    self.store.recluster_shard(cluster, serials, shard=sid)
                    rewritten += 1
                except (DeadlockError, LockTimeoutError,
                        DegradedModeError, CatalogError):
                    self.skipped += 1
        return rewritten
