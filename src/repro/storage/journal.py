"""Journal — transactional page editing glue between pool and WAL.

Heap files and indexes mutate pages exclusively through
:meth:`Journal.edit`, which snapshots the page, lets the caller mutate it,
then logs the changed byte range (before/after images) as an UPDATE record
of the current transaction and stamps the page's LSN. This single choke
point gives atomicity (undo via before-images) and durability (redo via
after-images) to every structure in the engine without any of them knowing
about logging.

The journal also owns the transaction table (txn id -> last LSN), commit,
abort (which undoes in place, writing CLRs), and fuzzy checkpoints.

Locking: the journal has its *own* latch (it used to share the buffer
pool's). The order is journal latch -> shard/pool latches -> WAL mutex;
abort and checkpoint acquire the pool's ``all_latches()`` *inside* the
journal latch, and no path acquires the journal latch while holding a
pool latch — which is why :meth:`Journal.free_page_deferred` and
:meth:`Journal._require_active` are lock-free (GIL-atomic dict operations
plus the invariant that a transaction is only ever driven by one thread):
they are called from structures that already hold their shard's latch.
"""

from __future__ import annotations

import threading
from typing import Dict

from ..errors import (DegradedModeError, TransactionError, WalError,
                      WalFlushError)
from .buffer import BufferPool
from .page import PAGE_SIZE, SlottedPage

#: Base image for the first logged edit of a freshly formatted page: the
#: diff is taken against zeros, so the format itself lands in the log and
#: redo can rebuild the page on a file that never saw it (see
#: ``BufferPool.fresh_pages``).
_ZERO_PAGE = bytes(PAGE_SIZE)
from .wal import NULL_LSN, LogRecordType, WriteAheadLog


class Journal:
    """Transaction table + logged page edits over a pool/WAL pair."""

    def __init__(self, pool: BufferPool, wal: WriteAheadLog):
        self._pool = pool
        self._wal = wal
        pool.attach_wal(wal)
        #: The journal latch. Guards the txn table and transaction
        #: lifecycle transitions; ordered *before* the pool/shard latches
        #: (see the module docs).
        self.latch = threading.RLock()
        self._next_txn = 1
        #: Reason string when the store is in read-only degraded mode
        #: (corrupt page quarantined, or WAL flush failure); gates
        #: :meth:`edit`, the single choke point every page mutation goes
        #: through. Reads and aborts bypass edit and keep working.
        self.degraded = None
        #: txn id -> LSN of that transaction's most recent log record.
        self.active: Dict[int, int] = {}
        #: txn id -> pages to return to the free list at commit. Freeing is
        #: deferred so an abort can never resurrect a pointer to a page
        #: that was freed (and possibly recycled) mid-transaction.
        self._pending_frees: Dict[int, list] = {}

    # -- transaction lifecycle ---------------------------------------------------

    def begin(self) -> int:
        with self.latch:
            txn = self._next_txn
            self._next_txn += 1
            # A failed log takes no BEGIN record, but read-only
            # transactions must still be able to start (and commit
            # trivially) in degraded mode.
            lsn = (self._wal.log_begin(txn)
                   if self._wal.failed is None else NULL_LSN)
            self.active[txn] = lsn
            return txn

    def commit(self, txn: int):
        """Commit *txn*. Returns the commit record's LSN (the commit's
        position in the serial order, used as the MVCC visibility stamp),
        or ``None`` for the degraded trivial-commit path."""
        with self.latch:
            last = self._require_active(txn)
            if self._wal.failed is not None:
                self._commit_on_failed_wal(txn, last)
                return None
            try:
                # log_commit fsyncs per the durability mode (full/group/none)
                clsn = self._wal.log_commit(txn, last)
            except WalFlushError:
                # The fsync failed: this commit — and every earlier commit
                # in the same group-commit batch — is not durable, and the
                # error says so to each of their committers (the batch
                # members already past log_commit see it on their next
                # log call; recovery on reopen rolls them back). Runtime
                # state is rolled back in memory so no "committed" effects
                # linger visible.
                self.degraded = self.degraded or "WAL flush failed"
                with self._pool.all_latches():
                    self._undo_in_memory(txn, last)
                del self.active[txn]
                self._pending_frees.pop(txn, None)
                raise
            self._wal.log_end(txn, last)
            del self.active[txn]
            frees = self._pending_frees.pop(txn, ())
        # Outside the journal latch: freeing takes shard latches, which
        # are ordered after it but must not be interleaved with another
        # thread's in-latch lifecycle work longer than necessary. The
        # transaction is committed and gone from the table; nothing can
        # resurrect references to these pages.
        for page_no in frees:
            self._pool.free_page(page_no)
        return clsn

    def _commit_on_failed_wal(self, txn: int, last: int) -> None:
        """Commit called after the log already died.

        A read-only transaction (no log records beyond its BEGIN, or
        begun after the failure) commits trivially; a writer cannot be
        made durable — its effects are rolled back in memory and the
        typed error reaches the committer.
        """
        wrote = (last != NULL_LSN and
                 self._wal.read_record(last)["type"] != LogRecordType.BEGIN)
        if wrote:
            self.degraded = self.degraded or "WAL flush failed"
            with self._pool.all_latches():
                self._undo_in_memory(txn, last)
        del self.active[txn]
        self._pending_frees.pop(txn, None)
        if wrote:
            raise WalFlushError(
                "transaction %d cannot commit durably: the log failed "
                "(%s); its effects were rolled back in memory"
                % (txn, self._wal.failed))

    def abort(self, txn: int) -> None:
        """Roll back *txn* by applying before-images, logging CLRs."""
        with self.latch:
            last = self._require_active(txn)
            # Holding every pool latch for the undo preserves the old
            # single-latch atomicity: a lock-free (MVCC) reader can never
            # interleave with the middle of a multi-page rollback and see
            # a half-compensated record.
            with self._pool.all_latches():
                if self._wal.failed is not None:
                    # The log takes no CLRs; undo the effects in memory
                    # only. Disk still holds the durable prefix, which
                    # reopening recovers to — identical to what the CLRs
                    # would rebuild.
                    self._undo_in_memory(txn, last)
                else:
                    last = undo_transaction(self._pool, self._wal, txn, last)
                    self._wal.log_abort(txn, last)
                    self._wal.log_end(txn, last)
            del self.active[txn]
            self._pending_frees.pop(txn, None)

    def _undo_in_memory(self, txn: int, from_lsn: int) -> None:
        """Apply before-images of *txn* without logging (dead-WAL path).

        The log's read side still works after an fsync failure — the
        unflushed tail is readable through the same file object. Pages
        are stamped with the log end LSN (newer than any update of the
        chain) so decoded-cache tokens taken during the transaction can
        never validate against the rolled-back bytes; the stamp never
        reaches disk because a failed WAL blocks all page write-back.
        """
        pool, wal = self._pool, self._wal
        stamp = wal.end_lsn
        lsn = from_lsn
        while lsn != NULL_LSN:
            record = wal.read_record(lsn)
            rtype = record["type"]
            if rtype == LogRecordType.UPDATE:
                before = record["before"]
                offset = record["offset"]
                page = pool.pin(record["page_no"])
                page.buf[offset:offset + len(before)] = before
                page.page_lsn = stamp
                pool.unpin(record["page_no"], dirty=True)
                lsn = record["prev_lsn"]
            elif rtype == LogRecordType.CLR:
                lsn = record["undo_next"]
            elif rtype == LogRecordType.BEGIN:
                break
            else:
                lsn = record["prev_lsn"]

    def free_page_deferred(self, txn: int, page_no: int) -> None:
        """Schedule *page_no* for the free list when *txn* commits.

        Structures must use this (never ``pool.free_page``) for pages a
        transaction stops referencing: an in-flight transaction's undo
        images may still point at them.

        Lock-free: callers hold their shard latch and the journal latch
        is ordered before shard latches, so taking it here would invert
        the order. The dict operations are GIL-atomic and a transaction
        is only ever driven by one thread, so its list never races.
        """
        self._require_active(txn)
        self._pending_frees.setdefault(txn, []).append(page_no)

    def _require_active(self, txn: int) -> int:
        # Lock-free for the same reason as free_page_deferred: called
        # from _PageEdit while the page's shard latch is held.
        last = self.active.get(txn)
        if last is None:
            raise TransactionError("transaction %d is not active" % txn)
        return last

    # -- logged page edits ---------------------------------------------------

    def edit(self, txn: int, page_no: int) -> "_PageEdit":
        """Pin *page_no* for mutation under *txn*; log the diff on exit.

        Context manager. If the block raises, the page buffer is restored
        from the snapshot and nothing is logged — the failed edit leaves
        no trace.

        Every page mutation in the engine funnels through here, which is
        what makes the degraded-mode gate complete: one check blocks all
        writes while reads (plain pins) and aborts (before-image
        application) continue to work.
        """
        if self.degraded is not None or self._wal.failed is not None:
            raise DegradedModeError(
                "store is read-only (degraded mode): %s"
                % (self.degraded or "WAL flush failed"),
                reason=self.degraded)
        return _PageEdit(self, txn, page_no)

    # -- checkpointing ----------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush everything; truncate the log if no transaction is active."""
        with self.latch:
            self._wal.flush()
            self._pool.flush_all()
            if self.active:
                self._wal.log_checkpoint(self.active)
            else:
                # The WAL rule, checkpoint edition: the log may only be
                # truncated once every page image it covers is *durable*.
                # flush_all leaves the writes in volatile file buffers; a
                # crash between an unsynced flush and the truncate would
                # lose committed data with no log left to replay it from
                # (found by the crash harness at pagefile.sync.pre).
                self._pool.sync()
                self._wal.truncate()


class _PageEdit:
    """Hand-rolled context manager for :meth:`Journal.edit`.

    A plain class, not ``@contextmanager``: the generator machinery costs
    more than the snapshot+diff it brackets, and this wraps every logged
    page mutation in the engine.
    """

    __slots__ = ("_journal", "_txn", "_page_no", "_last", "_page",
                 "_snapshot")

    def __init__(self, journal: Journal, txn: int, page_no: int):
        self._journal = journal
        self._txn = txn
        self._page_no = page_no

    def __enter__(self) -> SlottedPage:
        journal = self._journal
        # Pin first: it takes the storage latch, so the txn-table check and
        # the snapshot happen atomically with respect to other threads.
        page = journal._pool.pin(self._page_no)
        try:
            self._last = journal._require_active(self._txn)
        except BaseException:
            journal._pool.unpin(self._page_no, dirty=False)
            raise
        self._snapshot = bytes(page.buf)
        self._page = page
        return page

    def __exit__(self, exc_type, exc, tb) -> bool:
        journal = self._journal
        page = self._page
        if exc_type is not None:
            page.buf[:] = self._snapshot
            journal._pool.unpin(self._page_no, dirty=False)
            return False
        snapshot = self._snapshot
        new = bytes(page.buf)
        pool = journal._pool
        fresh = pool.fresh_pages and self._page_no in pool.fresh_pages
        # A fresh page's format was applied in-pool without logging; diff
        # its first edit against zeros so the whole image is replayable
        # (and undo of the creating transaction restores a zero page).
        base = _ZERO_PAGE if fresh else snapshot
        runs = _diff_runs(base, new)
        if not runs:
            journal._pool.unpin(self._page_no, dirty=False)
            return False
        wal = journal._wal
        lsn = self._last
        for lo, hi in runs:
            lsn = wal.log_update(self._txn, lsn, self._page_no, lo,
                                 base[lo:hi], new[lo:hi])
        journal.active[self._txn] = lsn
        page.page_lsn = lsn
        if fresh:
            pool.fresh_pages.discard(self._page_no)
        journal._pool.unpin(self._page_no, dirty=True)
        return False


#: Granularity of the changed-run scan. Runs separated by a fully
#: unchanged chunk are logged as separate UPDATE records; each run is then
#: trimmed to exact byte boundaries, so the chunk size only decides how
#: close two changed regions must be to share one record. Fewer, larger
#: chunks scan measurably faster (the comparisons are C memcmp).
_DIFF_CHUNK = 256

#: Beyond this many runs the per-record framing outweighs the image bytes
#: saved; collapse to one record spanning them all.
_MAX_DIFF_RUNS = 4


def _diff_runs(old: bytes, new: bytes) -> list:
    """Changed byte ranges ``[lo, hi)`` between two equal-length buffers.

    A page edit often touches a few distant regions (a slotted page insert
    dirties the header, a slot entry, and the payload near the end of the
    page). Logging each run separately keeps the UPDATE images proportional
    to what actually changed instead of spanning the untouched middle. The
    scan compares fixed chunks (memcmp in C), then trims each run to exact
    byte boundaries.
    """
    if old == new:
        return []
    runs = []
    start = None
    for i in range(0, len(old), _DIFF_CHUNK):
        j = i + _DIFF_CHUNK
        if old[i:j] != new[i:j]:
            if start is None:
                start = i
        elif start is not None:
            runs.append((start, i))
            start = None
    if start is not None:
        runs.append((start, len(old)))
    if len(runs) > _MAX_DIFF_RUNS:
        runs = [(runs[0][0], runs[-1][1])]
    # Trim by bisection on slice equality (memcmp in C): a run's unchanged
    # margin can be a whole chunk, too long for a per-byte Python loop.
    tight = []
    for lo, hi in runs:
        end = hi
        while end - lo > 1:  # narrow to the first differing byte
            mid = (lo + end) >> 1
            if old[lo:mid] == new[lo:mid]:
                lo = mid
            else:
                end = mid
        top = lo
        while hi - top > 1:  # narrow to just past the last differing byte
            mid = (top + hi) >> 1
            if old[mid:hi] == new[mid:hi]:
                hi = mid
            else:
                top = mid
        tight.append((lo, top + 1))
    return tight


def _diff_range(old: bytes, new) -> tuple:
    """Smallest ``[lo, hi)`` such that old[lo:hi] != new[lo:hi], or (None, None).

    Uses binary search over slice comparisons so the byte scanning runs in
    C (memcmp) instead of a Python loop. Page edits use :func:`_diff_runs`
    (which can report several disjoint ranges); this single-range variant
    remains for callers that need one bounding range.
    """
    if old == new:
        return None, None
    new = bytes(new)
    length = len(old)
    # First differing index: largest prefix length with equal slices.
    lo_lo, lo_hi = 0, length
    while lo_lo < lo_hi:
        mid = (lo_lo + lo_hi + 1) // 2
        if old[:mid] == new[:mid]:
            lo_lo = mid
        else:
            lo_hi = mid - 1
    lo = lo_lo
    # Last differing index: largest suffix length with equal slices.
    hi_lo, hi_hi = 0, length - lo
    while hi_lo < hi_hi:
        mid = (hi_lo + hi_hi + 1) // 2
        if old[length - mid:] == new[length - mid:]:
            hi_lo = mid
        else:
            hi_hi = mid - 1
    hi = length - hi_lo
    return lo, hi


def undo_transaction(pool: BufferPool, wal: WriteAheadLog, txn: int,
                     from_lsn: int) -> int:
    """Undo *txn* starting at *from_lsn*, writing CLRs. Returns the last LSN.

    Shared by runtime abort and crash recovery. Walks the transaction's
    backward chain; UPDATE records are compensated by applying their before
    image; CLRs are never undone — their ``undo_next`` pointer skips the
    already-compensated update.
    """
    lsn = from_lsn
    last = from_lsn
    while lsn != NULL_LSN:
        record = wal.read_record(lsn)
        rtype = record["type"]
        if rtype == LogRecordType.UPDATE:
            page_no = record["page_no"]
            offset = record["offset"]
            before = record["before"]
            page = pool.pin(page_no)
            page.buf[offset:offset + len(before)] = before
            clr_lsn = wal.log_clr(txn, last, page_no, offset, before,
                                  undo_next=record["prev_lsn"])
            page.page_lsn = clr_lsn
            pool.unpin(page_no, dirty=True)
            last = clr_lsn
            lsn = record["prev_lsn"]
        elif rtype == LogRecordType.CLR:
            lsn = record["undo_next"]
        elif rtype == LogRecordType.BEGIN:
            break
        else:  # ABORT marker mid-chain: keep walking
            lsn = record["prev_lsn"]
    return last
