"""Journal — transactional page editing glue between pool and WAL.

Heap files and indexes mutate pages exclusively through
:meth:`Journal.edit`, which snapshots the page, lets the caller mutate it,
then logs the changed byte range (before/after images) as an UPDATE record
of the current transaction and stamps the page's LSN. This single choke
point gives atomicity (undo via before-images) and durability (redo via
after-images) to every structure in the engine without any of them knowing
about logging.

The journal also owns the transaction table (txn id -> last LSN), commit,
abort (which undoes in place, writing CLRs), and fuzzy checkpoints.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from ..errors import TransactionError, WalError
from .buffer import BufferPool
from .page import SlottedPage
from .wal import NULL_LSN, LogRecordType, WriteAheadLog


class Journal:
    """Transaction table + logged page edits over a pool/WAL pair."""

    def __init__(self, pool: BufferPool, wal: WriteAheadLog):
        self._pool = pool
        self._wal = wal
        pool.attach_wal(wal)
        self._next_txn = 1
        #: txn id -> LSN of that transaction's most recent log record.
        self.active: Dict[int, int] = {}
        #: txn id -> pages to return to the free list at commit. Freeing is
        #: deferred so an abort can never resurrect a pointer to a page
        #: that was freed (and possibly recycled) mid-transaction.
        self._pending_frees: Dict[int, list] = {}

    # -- transaction lifecycle ---------------------------------------------------

    def begin(self) -> int:
        txn = self._next_txn
        self._next_txn += 1
        lsn = self._wal.log_begin(txn)
        self.active[txn] = lsn
        return txn

    def commit(self, txn: int) -> None:
        last = self._require_active(txn)
        self._wal.log_commit(txn, last)  # log_commit flushes
        self._wal.log_end(txn, last)
        del self.active[txn]
        for page_no in self._pending_frees.pop(txn, ()):
            self._pool.free_page(page_no)

    def abort(self, txn: int) -> None:
        """Roll back *txn* by applying before-images, logging CLRs."""
        last = self._require_active(txn)
        last = undo_transaction(self._pool, self._wal, txn, last)
        self._wal.log_abort(txn, last)
        self._wal.log_end(txn, last)
        del self.active[txn]
        self._pending_frees.pop(txn, None)

    def free_page_deferred(self, txn: int, page_no: int) -> None:
        """Schedule *page_no* for the free list when *txn* commits.

        Structures must use this (never ``pool.free_page``) for pages a
        transaction stops referencing: an in-flight transaction's undo
        images may still point at them.
        """
        self._require_active(txn)
        self._pending_frees.setdefault(txn, []).append(page_no)

    def _require_active(self, txn: int) -> int:
        if txn not in self.active:
            raise TransactionError("transaction %d is not active" % txn)
        return self.active[txn]

    # -- logged page edits ---------------------------------------------------

    @contextmanager
    def edit(self, txn: int, page_no: int) -> Iterator[SlottedPage]:
        """Pin *page_no* for mutation under *txn*; log the diff on exit.

        If the block raises, the page buffer is restored from the snapshot
        and nothing is logged — the failed edit leaves no trace.
        """
        last = self._require_active(txn)
        page = self._pool.pin(page_no)
        snapshot = bytes(page.buf)
        try:
            yield page
        except BaseException:
            page.buf[:] = snapshot
            self._pool.unpin(page_no, dirty=False)
            raise
        lo, hi = _diff_range(snapshot, page.buf)
        if lo is None:
            self._pool.unpin(page_no, dirty=False)
            return
        lsn = self._wal.log_update(txn, last, page_no, lo,
                                   snapshot[lo:hi], bytes(page.buf[lo:hi]))
        self.active[txn] = lsn
        page.page_lsn = lsn
        self._pool.unpin(page_no, dirty=True)

    # -- checkpointing ----------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush everything; truncate the log if no transaction is active."""
        self._wal.flush()
        self._pool.flush_all()
        if self.active:
            self._wal.log_checkpoint(self.active)
        else:
            self._wal.truncate()


def _diff_range(old: bytes, new) -> tuple:
    """Smallest ``[lo, hi)`` such that old[lo:hi] != new[lo:hi], or (None, None).

    Uses binary search over slice comparisons so the byte scanning runs in
    C (memcmp) instead of a Python loop — this is on the critical path of
    every logged page edit.
    """
    if old == new:
        return None, None
    new = bytes(new)
    length = len(old)
    # First differing index: largest prefix length with equal slices.
    lo_lo, lo_hi = 0, length
    while lo_lo < lo_hi:
        mid = (lo_lo + lo_hi + 1) // 2
        if old[:mid] == new[:mid]:
            lo_lo = mid
        else:
            lo_hi = mid - 1
    lo = lo_lo
    # Last differing index: largest suffix length with equal slices.
    hi_lo, hi_hi = 0, length - lo
    while hi_lo < hi_hi:
        mid = (hi_lo + hi_hi + 1) // 2
        if old[length - mid:] == new[length - mid:]:
            hi_lo = mid
        else:
            hi_hi = mid - 1
    hi = length - hi_lo
    return lo, hi


def undo_transaction(pool: BufferPool, wal: WriteAheadLog, txn: int,
                     from_lsn: int) -> int:
    """Undo *txn* starting at *from_lsn*, writing CLRs. Returns the last LSN.

    Shared by runtime abort and crash recovery. Walks the transaction's
    backward chain; UPDATE records are compensated by applying their before
    image; CLRs are never undone — their ``undo_next`` pointer skips the
    already-compensated update.
    """
    lsn = from_lsn
    last = from_lsn
    while lsn != NULL_LSN:
        record = wal.read_record(lsn)
        rtype = record["type"]
        if rtype == LogRecordType.UPDATE:
            page_no = record["page_no"]
            offset = record["offset"]
            before = record["before"]
            page = pool.pin(page_no)
            page.buf[offset:offset + len(before)] = before
            clr_lsn = wal.log_clr(txn, last, page_no, offset, before,
                                  undo_next=record["prev_lsn"])
            page.page_lsn = clr_lsn
            pool.unpin(page_no, dirty=True)
            last = clr_lsn
            lsn = record["prev_lsn"]
        elif rtype == LogRecordType.CLR:
            lsn = record["undo_next"]
        elif rtype == LogRecordType.BEGIN:
            break
        else:  # ABORT marker mid-chain: keep walking
            lsn = record["prev_lsn"]
    return last
