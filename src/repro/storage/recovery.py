"""Crash recovery — ARIES-style analysis / redo / undo over the WAL.

:func:`recover` restores the database to the state reflecting exactly the
committed transactions:

1. **Analysis** scans the whole log (our logs are truncated at quiescent
   checkpoints, so a full scan is bounded by work since the last one) and
   classifies transactions into winners (COMMIT seen) and losers.
2. **Redo** repeats history: every UPDATE and CLR whose LSN is newer than
   the target page's on-disk LSN is re-applied, committed or not.
3. **Undo** rolls back the losers with the same compensation-logging walk
   used by runtime abort (:func:`repro.storage.journal.undo_transaction`).

Recovery finishes with a quiescent checkpoint, flushing all pages and
truncating the log.
"""

from __future__ import annotations

from typing import Dict, Set

from ..errors import CorruptPageError
from .buffer import BufferPool
from .journal import Journal, undo_transaction
from .wal import LogRecordType, WriteAheadLog


class RecoveryReport:
    """What recovery did — returned for tests, logs, and curiosity."""

    def __init__(self):
        self.records_scanned = 0
        self.redone = 0
        self.skipped_redo = 0
        self.winners: Set[int] = set()
        self.losers: Set[int] = set()
        #: Pages that failed their checksum during redo (torn/lost
        #: writes) and were rebuilt from the log by unconditional redo.
        self.repaired_pages: Set[int] = set()
        #: Where and why the log scan stopped before its physical end
        #: (``None`` for a clean tail; see ``WriteAheadLog.scan_stop``).
        self.wal_stop = None
        self.wal_stop_kind = None

    def __repr__(self):
        return ("RecoveryReport(scanned=%d, redone=%d, skipped=%d, "
                "winners=%d, losers=%d, repaired=%d)"
                % (self.records_scanned, self.redone, self.skipped_redo,
                   len(self.winners), len(self.losers),
                   len(self.repaired_pages)))


def recover(pool: BufferPool, wal: WriteAheadLog) -> RecoveryReport:
    """Run analysis/redo/undo; leave the store consistent and the log empty.

    Pages that fail their checksum during redo are rebuilt in place by
    *unconditional* redo: a torn page's on-disk LSN is meaningless (the
    tear may or may not include the stamped header), but the log retains
    every change to every page since the last quiescent checkpoint —
    which flushed all pages — so replaying all of the page's records over
    the torn image reconstructs its exact pre-crash state. Bytes the tear
    reverted are rewritten by some record; bytes no record touches were
    identical on both sides of the tear.
    """
    report = RecoveryReport()

    # ---- analysis ----
    last_lsn: Dict[int, int] = {}
    committed: Set[int] = set()
    ended: Set[int] = set()
    began: Set[int] = set()
    for lsn, record in wal.records():
        report.records_scanned += 1
        rtype = record["type"]
        txn = record["txn"]
        if rtype == LogRecordType.CHECKPOINT:
            continue
        if rtype == LogRecordType.BEGIN:
            began.add(txn)
        if rtype == LogRecordType.COMMIT:
            committed.add(txn)
        if rtype == LogRecordType.END:
            ended.add(txn)
        last_lsn[txn] = lsn

    report.winners = committed
    report.losers = began - committed - ended

    # ---- redo: repeat history ----
    suspect: Set[int] = set()
    for lsn, record in wal.records():
        if record["type"] not in (LogRecordType.UPDATE, LogRecordType.CLR):
            continue
        page_no = record["page_no"]
        # The fsynced log can reference pages whose (buffered) file
        # extension never reached disk; materialize them before pinning.
        pool.ensure_allocated(page_no)
        try:
            page = pool.pin(page_no)
        except CorruptPageError:
            # Torn/lost write. Admit the damaged bytes anyway and switch
            # this page to unconditional redo (its LSN is untrustworthy).
            page = pool.pin(page_no, unchecked=True)
            suspect.add(page_no)
            report.repaired_pages.add(page_no)
        if page_no in suspect or page.page_lsn < lsn:
            after = record["after"]
            offset = record["offset"]
            page.buf[offset:offset + len(after)] = after
            page.page_lsn = lsn
            pool.unpin(page_no, dirty=True)
            report.redone += 1
        else:
            pool.unpin(page_no, dirty=False)
            report.skipped_redo += 1

    # ---- undo losers ----
    for txn in sorted(report.losers, reverse=True):
        start = _undo_start(wal, txn, last_lsn[txn])
        last = undo_transaction(pool, wal, txn, start)
        wal.log_end(txn, last)

    report.wal_stop = wal.scan_stop
    report.wal_stop_kind = wal.scan_stop_kind

    # ---- quiescent checkpoint ----
    # flush_all rewrites every repaired page with a fresh checksum; the
    # page file must be durable *before* the log is truncated (WAL rule).
    wal.flush()
    pool.flush_all()
    pool.sync()
    wal.truncate()
    return report


def _undo_start(wal: WriteAheadLog, txn: int, last: int) -> int:
    """Where to begin the backward undo walk for *txn*.

    If the transaction's final record is a CLR (it was mid-abort when the
    crash hit), resume from its ``undo_next``; otherwise start at the last
    record itself.
    """
    record = wal.read_record(last)
    if record["type"] == LogRecordType.CLR:
        return record["undo_next"]
    return last
