"""Crash recovery — ARIES-style analysis / redo / undo over the WAL.

:func:`recover` restores the database to the state reflecting exactly the
committed transactions:

1. **Analysis** scans the whole log (our logs are truncated at quiescent
   checkpoints, so a full scan is bounded by work since the last one) and
   classifies transactions into winners (COMMIT seen) and losers.
2. **Redo** repeats history: every UPDATE and CLR whose LSN is newer than
   the target page's on-disk LSN is re-applied, committed or not.
3. **Undo** rolls back the losers with the same compensation-logging walk
   used by runtime abort (:func:`repro.storage.journal.undo_transaction`).

Recovery finishes with a quiescent checkpoint, flushing all pages and
truncating the log.
"""

from __future__ import annotations

from typing import Dict, Set

from .buffer import BufferPool
from .journal import Journal, undo_transaction
from .wal import LogRecordType, WriteAheadLog


class RecoveryReport:
    """What recovery did — returned for tests, logs, and curiosity."""

    def __init__(self):
        self.records_scanned = 0
        self.redone = 0
        self.skipped_redo = 0
        self.winners: Set[int] = set()
        self.losers: Set[int] = set()

    def __repr__(self):
        return ("RecoveryReport(scanned=%d, redone=%d, skipped=%d, "
                "winners=%d, losers=%d)"
                % (self.records_scanned, self.redone, self.skipped_redo,
                   len(self.winners), len(self.losers)))


def recover(pool: BufferPool, wal: WriteAheadLog) -> RecoveryReport:
    """Run analysis/redo/undo; leave the store consistent and the log empty."""
    report = RecoveryReport()

    # ---- analysis ----
    last_lsn: Dict[int, int] = {}
    committed: Set[int] = set()
    ended: Set[int] = set()
    began: Set[int] = set()
    for lsn, record in wal.records():
        report.records_scanned += 1
        rtype = record["type"]
        txn = record["txn"]
        if rtype == LogRecordType.CHECKPOINT:
            continue
        if rtype == LogRecordType.BEGIN:
            began.add(txn)
        if rtype == LogRecordType.COMMIT:
            committed.add(txn)
        if rtype == LogRecordType.END:
            ended.add(txn)
        last_lsn[txn] = lsn

    report.winners = committed
    report.losers = began - committed - ended

    # ---- redo: repeat history ----
    for lsn, record in wal.records():
        if record["type"] not in (LogRecordType.UPDATE, LogRecordType.CLR):
            continue
        page_no = record["page_no"]
        # The fsynced log can reference pages whose (buffered) file
        # extension never reached disk; materialize them before pinning.
        pool.ensure_allocated(page_no)
        page = pool.pin(page_no)
        if page.page_lsn < lsn:
            after = record["after"]
            offset = record["offset"]
            page.buf[offset:offset + len(after)] = after
            page.page_lsn = lsn
            pool.unpin(page_no, dirty=True)
            report.redone += 1
        else:
            pool.unpin(page_no, dirty=False)
            report.skipped_redo += 1

    # ---- undo losers ----
    for txn in sorted(report.losers, reverse=True):
        start = _undo_start(wal, txn, last_lsn[txn])
        last = undo_transaction(pool, wal, txn, start)
        wal.log_end(txn, last)

    # ---- quiescent checkpoint ----
    wal.flush()
    pool.flush_all()
    wal.truncate()
    return report


def _undo_start(wal: WriteAheadLog, txn: int, last: int) -> int:
    """Where to begin the backward undo walk for *txn*.

    If the transaction's final record is a CLR (it was mid-abort when the
    crash hit), resume from its ``undo_next``; otherwise start at the last
    record itself.
    """
    record = wal.read_record(last)
    if record["type"] == LogRecordType.CLR:
        return record["undo_next"]
    return last
