"""Slotted pages — the unit of disk I/O and buffering.

Every page is ``PAGE_SIZE`` bytes. A page starts with a fixed header and
manages its payload with the classic *slotted page* layout: a slot directory
grows downward from the header while record payloads grow upward from the
end of the page. Deleting a record leaves a tombstone slot (so record ids
stay stable) and its space is reclaimed by :meth:`SlottedPage.compact`,
which is run automatically when an insert would otherwise fail.

Page header layout (little endian)::

    offset  size  field
    0       4     page_no        (redundancy check against file position)
    4       1     page_type      (PageType)
    8       8     page_lsn       (LSN of last WAL record applied, for ARIES)
    16      2     slot_count
    18      2     free_start     (first byte after the slot directory)
    20      2     free_end       (first byte used by record payloads)
    22      2     fragmented     (reclaimable bytes inside the payload area)
    24      8     next_page      (intrusive singly-linked page chains)
    32      4     checksum       (crc32c of the page, checksum field excluded)

The checksum is stamped by :meth:`PageFile.write_page` just before the
bytes hit the file and verified on every buffer-pool admit, so a torn
write, a lost write, or bit rot surfaces as a typed
:class:`~repro.errors.CorruptPageError` at the page boundary instead of
an arbitrary decode exception deep in an index or the codec. An all-zero
page is valid by convention: fresh allocations (and crash-recovery file
extensions) write raw zero pages without a stamp.

Slot directory entries are 4 bytes each: ``offset:u16, length:u16``. A slot
with ``offset == 0`` is a tombstone (payloads can never start at offset 0
because the header occupies it).
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from ..errors import PageError, PageFullError

PAGE_SIZE = 4096

HEADER_SIZE = 36
_HDR = struct.Struct("<IBxxxQHHHHQ")
CHECKSUM_OFFSET = 32
_CKSUM = struct.Struct("<I")
_SLOT = struct.Struct("<HH")
SLOT_SIZE = _SLOT.size

try:  # a hardware-accelerated crc32c if the platform ships one ...
    from crc32c import crc32c as _crc32c  # type: ignore
except ImportError:  # ... else zlib's crc32 (C speed, same guarantees here)
    _crc32c = None

_ZERO_PAGE = bytes(PAGE_SIZE)


def compute_checksum(buf) -> int:
    """Checksum of a page buffer with the checksum field itself excluded.

    A running CRC over two ``memoryview`` slices — no copies on a path
    that runs once per page write and once per buffer-pool admit.
    """
    mv = memoryview(buf)
    if _crc32c is not None:
        return _crc32c(mv[CHECKSUM_OFFSET + _CKSUM.size:],
                       _crc32c(mv[:CHECKSUM_OFFSET]))
    return zlib.crc32(mv[CHECKSUM_OFFSET + _CKSUM.size:],
                      zlib.crc32(mv[:CHECKSUM_OFFSET]))


def stamp_checksum(buf: bytearray) -> None:
    """Write the page checksum into its header field (before disk write)."""
    _CKSUM.pack_into(buf, CHECKSUM_OFFSET, compute_checksum(buf))


def verify_checksum(buf) -> bool:
    """Whether *buf* carries a valid checksum (or is a fresh zero page)."""
    stored = _CKSUM.unpack_from(buf, CHECKSUM_OFFSET)[0]
    if stored == compute_checksum(buf):
        return True
    return stored == 0 and bytes(buf) == _ZERO_PAGE

#: Maximum payload a single slot can hold on an empty page.
MAX_RECORD_SIZE = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE

NO_PAGE = 0  # "null" page number; page 0 is always the file header page.


class PageType:
    """On-disk page type tags."""

    FREE = 0
    FILE_HEADER = 1
    HEAP = 2
    BTREE_INTERNAL = 3
    BTREE_LEAF = 4
    HASH_BUCKET = 5
    HASH_DIRECTORY = 6
    CATALOG = 7
    OVERFLOW = 8


class SlottedPage:
    """A mutable slotted page over a ``bytearray`` buffer.

    The page object does not own its buffer; the buffer pool hands out
    ``SlottedPage`` views over frames it manages. All mutating operations
    update the header in place.
    """

    __slots__ = ("buf",)

    def __init__(self, buf: bytearray):
        if len(buf) != PAGE_SIZE:
            raise PageError("page buffer must be %d bytes, got %d"
                            % (PAGE_SIZE, len(buf)))
        self.buf = buf

    # -- header accessors ---------------------------------------------------

    def _read_header(self):
        return _HDR.unpack_from(self.buf, 0)

    def _write_header(self, page_no, page_type, lsn, slot_count,
                      free_start, free_end, fragmented, next_page):
        _HDR.pack_into(self.buf, 0, page_no, page_type, lsn, slot_count,
                       free_start, free_end, fragmented, next_page)

    @property
    def page_no(self) -> int:
        return self._read_header()[0]

    @property
    def page_type(self) -> int:
        return self._read_header()[1]

    @page_type.setter
    def page_type(self, value: int) -> None:
        hdr = list(self._read_header())
        hdr[1] = value
        self._write_header(*hdr)

    @property
    def page_lsn(self) -> int:
        return self._read_header()[2]

    @page_lsn.setter
    def page_lsn(self, value: int) -> None:
        hdr = list(self._read_header())
        hdr[2] = value
        self._write_header(*hdr)

    @property
    def slot_count(self) -> int:
        return self._read_header()[3]

    @property
    def next_page(self) -> int:
        return self._read_header()[7]

    @next_page.setter
    def next_page(self, value: int) -> None:
        hdr = list(self._read_header())
        hdr[7] = value
        self._write_header(*hdr)

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def format(cls, buf: bytearray, page_no: int, page_type: int) -> "SlottedPage":
        """Initialise *buf* as an empty page of *page_type*."""
        buf[:] = b"\x00" * PAGE_SIZE
        page = cls(buf)
        page._write_header(page_no, page_type, 0, 0,
                           HEADER_SIZE, PAGE_SIZE, 0, NO_PAGE)
        return page

    # -- space accounting ---------------------------------------------------

    @property
    def contiguous_free(self) -> int:
        """Bytes free between the slot directory and the payload area."""
        _, _, _, _, free_start, free_end, _, _ = self._read_header()
        return free_end - free_start

    @property
    def total_free(self) -> int:
        """Contiguous free space plus fragmented (reclaimable) space."""
        return self.contiguous_free + self._read_header()[6]

    def room_for(self, length: int) -> bool:
        """Whether a record of *length* bytes fits (possibly after compaction).

        A tombstone slot may be reusable, in which case no new slot entry is
        needed; we conservatively require space for a fresh slot.
        """
        return self.total_free >= length + SLOT_SIZE

    # -- record operations ----------------------------------------------------

    def insert(self, payload: bytes) -> int:
        """Insert *payload*, returning its slot number.

        Reuses the lowest tombstone slot if one exists; compacts the page
        first when fragmentation is blocking the insert. Raises
        :class:`PageFullError` when the record genuinely does not fit.
        """
        length = len(payload)
        if length > MAX_RECORD_SIZE:
            raise PageError("record of %d bytes exceeds max %d"
                            % (length, MAX_RECORD_SIZE))
        slot = self._find_tombstone()
        need = length if slot is not None else length + SLOT_SIZE
        if self.total_free < need:
            raise PageFullError("page %d: %d bytes needed, %d free"
                                % (self.page_no, need, self.total_free))
        if self.contiguous_free < need:
            self.compact()
        (page_no, page_type, lsn, slot_count,
         free_start, free_end, fragmented, next_page) = self._read_header()
        if slot is None:
            slot = slot_count
            slot_count += 1
            free_start += SLOT_SIZE
        offset = free_end - length
        self.buf[offset:offset + length] = payload
        _SLOT.pack_into(self.buf, HEADER_SIZE + slot * SLOT_SIZE, offset, length)
        self._write_header(page_no, page_type, lsn, slot_count,
                           free_start, offset, fragmented, next_page)
        return slot

    def read(self, slot: int) -> bytes:
        """Return the payload stored in *slot*.

        Raises :class:`PageError` for out-of-range or deleted slots.
        """
        offset, length = self._slot_entry(slot)
        if offset == 0:
            raise PageError("page %d slot %d is deleted" % (self.page_no, slot))
        return bytes(self.buf[offset:offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone *slot*, making its space reclaimable."""
        offset, length = self._slot_entry(slot)
        if offset == 0:
            raise PageError("page %d slot %d already deleted"
                            % (self.page_no, slot))
        _SLOT.pack_into(self.buf, HEADER_SIZE + slot * SLOT_SIZE, 0, 0)
        hdr = list(self._read_header())
        hdr[6] += length  # fragmented
        self._write_header(*hdr)

    def update(self, slot: int, payload: bytes) -> None:
        """Replace the payload in *slot*.

        Updates in place when the new payload is no longer than the old one;
        otherwise deletes and reinserts into the same slot (compacting if
        required). Raises :class:`PageFullError` if the larger payload does
        not fit on this page — the caller (heap file) then relocates the
        record with a forwarding stub.
        """
        offset, old_length = self._slot_entry(slot)
        if offset == 0:
            raise PageError("page %d slot %d is deleted" % (self.page_no, slot))
        new_length = len(payload)
        if new_length <= old_length:
            self.buf[offset:offset + new_length] = payload
            _SLOT.pack_into(self.buf, HEADER_SIZE + slot * SLOT_SIZE,
                            offset, new_length)
            if new_length < old_length:
                hdr = list(self._read_header())
                hdr[6] += old_length - new_length
                self._write_header(*hdr)
            return
        grow = new_length - old_length
        if self.total_free < grow:
            raise PageFullError(
                "page %d: update needs %d more bytes, %d free"
                % (self.page_no, grow, self.total_free))
        # Tombstone the old copy, then place the new payload.
        _SLOT.pack_into(self.buf, HEADER_SIZE + slot * SLOT_SIZE, 0, 0)
        hdr = list(self._read_header())
        hdr[6] += old_length
        self._write_header(*hdr)
        if self.contiguous_free < new_length:
            self.compact()
        (page_no, page_type, lsn, slot_count,
         free_start, free_end, fragmented, next_page) = self._read_header()
        new_offset = free_end - new_length
        self.buf[new_offset:new_offset + new_length] = payload
        _SLOT.pack_into(self.buf, HEADER_SIZE + slot * SLOT_SIZE,
                        new_offset, new_length)
        self._write_header(page_no, page_type, lsn, slot_count,
                           free_start, new_offset, fragmented, next_page)

    def slots(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(slot, payload)`` for every live slot, in slot order."""
        for slot in range(self.slot_count):
            offset, length = self._slot_entry(slot)
            if offset != 0:
                yield slot, bytes(self.buf[offset:offset + length])

    def live_count(self) -> int:
        """Number of non-tombstone slots."""
        return sum(1 for _ in self.slots())

    def compact(self) -> None:
        """Slide live payloads to the end of the page, erasing fragmentation.

        Slot numbers are preserved (record ids remain valid).
        """
        (page_no, page_type, lsn, slot_count,
         free_start, _free_end, _fragmented, next_page) = self._read_header()
        records: List[Tuple[int, bytes]] = []
        for slot in range(slot_count):
            offset, length = self._slot_entry(slot)
            if offset != 0:
                records.append((slot, bytes(self.buf[offset:offset + length])))
        write_end = PAGE_SIZE
        # Rewrite highest-offset first is unnecessary since we buffered copies.
        for slot, payload in records:
            write_end -= len(payload)
            self.buf[write_end:write_end + len(payload)] = payload
            _SLOT.pack_into(self.buf, HEADER_SIZE + slot * SLOT_SIZE,
                            write_end, len(payload))
        self._write_header(page_no, page_type, lsn, slot_count,
                           free_start, write_end, 0, next_page)

    # -- internals ------------------------------------------------------------

    def _slot_entry(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise PageError("page %d has no slot %d (count %d)"
                            % (self.page_no, slot, self.slot_count))
        return _SLOT.unpack_from(self.buf, HEADER_SIZE + slot * SLOT_SIZE)

    def _find_tombstone(self) -> Optional[int]:
        for slot in range(self.slot_count):
            offset, _ = _SLOT.unpack_from(self.buf, HEADER_SIZE + slot * SLOT_SIZE)
            if offset == 0:
                return slot
        return None

    def __repr__(self) -> str:
        return ("SlottedPage(no=%d, type=%d, slots=%d, free=%d)"
                % (self.page_no, self.page_type, self.slot_count,
                   self.total_free))
