"""Parallel shard-scan executor.

A multi-shard cluster keeps one heap chain per shard, and those chains
live in different page files behind different buffer-pool latches — so
their page walks are independent work. :func:`parallel_scan_batches`
fans the walks across a small thread pool (page reads release the GIL,
and a cold scan is I/O + checksum + decode bound, so threads overlap
usefully even on CPython) and merges the decoded batches back in shard
order, giving consumers the same deterministic batch stream the serial
path produces.

Fixpoint contract. ``Store.scan_batches`` promises that records inserted
*behind* the cursor during the scan are still visited (the paper's
recursive queries rely on it). Worker threads can't see inserts that
land after they pass a page, so each worker records its final cursor
position and, after the workers drain, the consumer thread serially
re-walks every shard from that position — repeating until a full round
yields nothing new. The consumer holds the store's scan-gate reader slot
for the whole duration (workers additionally hold their own), so vacuum
or reclustering can never free a chain's pages between the parallel
phase and the re-check rounds.

Worker count comes from ``REPRO_SCAN_WORKERS`` (default: one per shard);
shards round-robin over the workers when there are fewer workers than
shards.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator, List

#: Per-shard handoff queue depth (batches). Bounds memory while letting
#: a fast worker run ahead of a slow consumer.
QUEUE_DEPTH = 8

#: Seconds between cancellation checks on blocking queue operations.
POLL = 0.05

#: Sentinel meaning "this shard's worker finished its walk".
_DONE = object()


class _ShardError:
    """A worker's exception, shipped through its queue to the consumer."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


def worker_count(n_shards: int, configured: int) -> int:
    """Threads to use for *n_shards* given the configured worker count."""
    return max(1, min(configured, n_shards))


def parallel_scan_batches(store, heaps) -> Iterator[list]:
    """Yield decoded batches of every heap in *heaps*, shard-major order.

    *store* supplies the scan gate, routed pool, decoded-page cache and
    per-shard scan counters; *heaps* is the cluster's per-shard
    :class:`~repro.storage.heap.HeapFile` list, index == shard id.
    """
    from .page import NO_PAGE
    from .heap import HeapFile

    n_shards = len(heaps)
    workers = worker_count(n_shards, store._scan_worker_count)
    pool = store._pool
    readahead = HeapFile.READAHEAD
    queues: List["queue.Queue"] = [queue.Queue(QUEUE_DEPTH)
                                   for _ in range(n_shards)]
    done = [threading.Event() for _ in range(n_shards)]
    #: per shard: [last_page_no, consumed_slots] — the worker's final
    #: cursor, where the fixpoint re-check resumes.
    finals: List[list] = [[None, 0] for _ in range(n_shards)]
    cancel = threading.Event()

    def put_batch(sid: int, item) -> bool:
        """Blocking put that gives up when the consumer cancels."""
        while not cancel.is_set():
            try:
                queues[sid].put(item, timeout=POLL)
                return True
            except queue.Full:
                continue
        return False

    def walk_shard(sid: int) -> None:
        # force=True: the consumer already holds a reader slot, so the
        # workers ride under its umbrella. Without it a maintenance
        # waiter arriving mid-scan would block the workers while the
        # consumer waits on their queues — a three-way deadlock.
        store._scan_enter(force=True)
        try:
            next(store._shard_scans[sid])
            for batch in store._scan_batches_inner(
                    heaps[sid], pool, readahead, NO_PAGE,
                    final_pos=finals[sid]):
                if not put_batch(sid, batch):
                    return
        except BaseException as exc:  # ship it; the consumer re-raises
            put_batch(sid, _ShardError(exc))
        finally:
            store._scan_exit()
            done[sid].set()
            # Wake a consumer blocked in Queue.get on this shard. The
            # put must block (cancellation-aware) rather than be a
            # put_nowait: when the walk ends with its queue full, a
            # dropped sentinel would leave the consumer to discover the
            # end only by a get() timeout — one full POLL stall per
            # shard.
            put_batch(sid, _DONE)

    def run_shards(shard_ids: List[int]) -> None:
        for sid in shard_ids:
            if cancel.is_set():
                done[sid].set()
                continue
            walk_shard(sid)

    # Round-robin shards over the workers; with the default
    # workers == n_shards each thread owns exactly one shard.
    assignments: List[List[int]] = [[] for _ in range(workers)]
    for sid in range(n_shards):
        assignments[sid % workers].append(sid)
    threads = [threading.Thread(target=run_shards, args=(shard_ids,),
                                name="repro-scan-w%d" % i, daemon=True)
               for i, shard_ids in enumerate(assignments)]

    # The consumer registers as a scan reader *before* the workers start
    # and stays registered until every fixpoint round is done: there is
    # never a moment when the chains are unprotected.
    store._scan_enter()
    try:
        for thread in threads:
            thread.start()
        # Phase 1: drain the workers, shard-major.
        for sid in range(n_shards):
            q = queues[sid]
            while True:
                # Fast path: the worker is done and everything it ever
                # queued has been consumed — no need to block at all.
                if done[sid].is_set() and q.empty():
                    break
                try:
                    item = q.get(timeout=POLL)
                except queue.Empty:
                    continue
                if item is _DONE:
                    if done[sid].is_set() and q.empty():
                        break
                    continue
                if isinstance(item, _ShardError):
                    raise item.exc
                yield item
        # Phase 2: serial fixpoint re-check. Resume each shard from its
        # worker's final position; inserts behind those cursors (or on
        # tail pages grown since) surface here. Repeat until one full
        # round is quiet.
        while True:
            grew = False
            for sid in range(n_shards):
                start_page, start_slot = finals[sid]
                if start_page is None:  # empty heap: re-walk from the top
                    start_page = heaps[sid].first_page
                    start_slot = 0
                for batch in store._scan_batches_inner(
                        heaps[sid], pool, readahead, NO_PAGE,
                        start_page=start_page, start_slot=start_slot,
                        final_pos=finals[sid]):
                    grew = True
                    yield batch
            if not grew:
                return
    finally:
        cancel.set()
        for q in queues:
            while True:
                try:
                    q.get_nowait()
                except queue.Empty:
                    break
        for thread in threads:
            thread.join()
        store._scan_exit()
