"""Lock manager — strict two-phase locking with hierarchical modes.

The paper defers concurrency ("any O++ program that interacts with the
database will be considered to be a single transaction"), but the substrate
provides a real lock manager so the transaction layer can interleave
transactions (and so trigger-action transactions, which the paper requires
to be *independent* transactions, are properly isolated).

Granularity is logical: a lock name is any hashable. The object layer locks
``("obj", cluster, serial)`` pairs and ``("cluster", name)`` containers.
Modes form the classic hierarchical lattice:

========  =============================================================
mode      meaning
========  =============================================================
``IS``    intention shared — will take S locks on children
``IX``    intention exclusive — will take X locks on children
``S``     shared — read the whole resource
``SIX``   S + IX — read whole resource, will write some children
``X``     exclusive — write the whole resource
========  =============================================================

A transaction re-requesting a resource it already holds *converts* its
mode to the least upper bound of the held and requested modes (S + IX =
SIX, anything + X = X, ...). The conversion is granted only if the new
mode is compatible with every *other* holder, so an S→X upgrade with a
concurrent reader blocks, exactly as in the plain S/X model.

Deadlocks are detected eagerly by cycle search in the waits-for graph; the
requesting transaction is the victim and receives :class:`DeadlockError`.
A request that cannot be granted blocks on a condition variable and raises
:class:`LockTimeoutError` after ``wait_timeout`` seconds. Single-threaded
use never blocks: conflicts only arise between distinct transactions run
from distinct threads.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import DeadlockError, LockError, LockTimeoutError

INTENT_SHARED = "IS"
INTENT_EXCLUSIVE = "IX"
SHARED = "S"
SHARED_INTENT_EXCLUSIVE = "SIX"
EXCLUSIVE = "X"

MODES = (INTENT_SHARED, INTENT_EXCLUSIVE, SHARED, SHARED_INTENT_EXCLUSIVE,
         EXCLUSIVE)

#: mode -> set of modes it coexists with (the standard hierarchical matrix).
_COMPATIBLE = {
    INTENT_SHARED: {INTENT_SHARED, INTENT_EXCLUSIVE, SHARED,
                    SHARED_INTENT_EXCLUSIVE},
    INTENT_EXCLUSIVE: {INTENT_SHARED, INTENT_EXCLUSIVE},
    SHARED: {INTENT_SHARED, SHARED},
    SHARED_INTENT_EXCLUSIVE: {INTENT_SHARED},
    EXCLUSIVE: set(),
}

#: Least upper bound of two modes in the conversion lattice
#: (IS < IX < SIX < X, IS < S < SIX < X).
_LUB = {}
for _a in MODES:
    for _b in MODES:
        if _a == _b:
            _LUB[(_a, _b)] = _a
_order = {INTENT_SHARED: 0, INTENT_EXCLUSIVE: 1, SHARED: 1,
          SHARED_INTENT_EXCLUSIVE: 2, EXCLUSIVE: 3}
for _a in MODES:
    for _b in MODES:
        if (_a, _b) in _LUB:
            continue
        if {_a, _b} == {INTENT_SHARED, INTENT_EXCLUSIVE}:
            _LUB[(_a, _b)] = INTENT_EXCLUSIVE
        elif {_a, _b} == {INTENT_SHARED, SHARED}:
            _LUB[(_a, _b)] = SHARED
        elif EXCLUSIVE in (_a, _b):
            _LUB[(_a, _b)] = EXCLUSIVE
        elif SHARED_INTENT_EXCLUSIVE in (_a, _b):
            _LUB[(_a, _b)] = SHARED_INTENT_EXCLUSIVE
        else:  # {IX, S} and any remaining mixed pair below X
            _LUB[(_a, _b)] = SHARED_INTENT_EXCLUSIVE
del _a, _b, _order

#: mode -> modes it satisfies when a caller asks "do you hold at least M?"
_COVERS = {
    INTENT_SHARED: {INTENT_SHARED},
    INTENT_EXCLUSIVE: {INTENT_SHARED, INTENT_EXCLUSIVE},
    SHARED: {INTENT_SHARED, SHARED},
    SHARED_INTENT_EXCLUSIVE: {INTENT_SHARED, INTENT_EXCLUSIVE, SHARED,
                              SHARED_INTENT_EXCLUSIVE},
    EXCLUSIVE: set(MODES),
}


class _LockState:
    __slots__ = ("holders", "waiters")

    def __init__(self):
        #: txn id -> mode it currently holds.
        self.holders: Dict[int, str] = {}
        self.waiters: List[Tuple[int, str]] = []


class LockManager:
    """Hierarchical (IS/IX/S/SIX/X) lock table keyed by hashable names."""

    def __init__(self, wait_timeout: float = 5.0):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._table: Dict[Hashable, _LockState] = defaultdict(_LockState)
        #: txn -> set of resources it holds
        self._held: Dict[int, Set[Hashable]] = defaultdict(set)
        #: txn -> resource it is currently waiting for
        self._waiting_for: Dict[int, Hashable] = {}
        self.wait_timeout = wait_timeout
        # statistics
        self.grants = 0
        self.waits = 0
        self.deadlocks = 0
        # observability hooks (attach_observability wires the real ones)
        self._obs_wait_hist = None
        self._obs_events = None

    #: lock-wait histogram buckets, nanoseconds (10µs .. 5s)
    WAIT_NS_BUCKETS = (1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 5e9)

    def attach_observability(self, metrics, events) -> None:
        """Register the lock counters with a metrics registry and start
        emitting lock-wait / deadlock events. Separate from the
        constructor so standalone unit tests need no registry."""
        metrics.counter_fn("lock.grants", lambda: self.grants)
        metrics.counter_fn("lock.waits", lambda: self.waits)
        metrics.counter_fn("lock.deadlocks", lambda: self.deadlocks)
        metrics.gauge_fn(
            "lock.held",
            lambda: sum(len(r) for r in list(self._held.values())))
        self._obs_wait_hist = metrics.histogram("lock.wait_ns",
                                                self.WAIT_NS_BUCKETS)
        self._obs_events = events

    def _record_wait(self, txn: int, resource: Hashable, wait_start: int,
                     outcome: str) -> None:
        """Observe a finished wait (called with ``self._cond`` held)."""
        waited_ns = time.perf_counter_ns() - wait_start
        if self._obs_wait_hist is not None:
            self._obs_wait_hist.observe(waited_ns)
        if (self._obs_events is not None
                and waited_ns >= self._obs_events.long_lock_wait_ns):
            self._obs_events.emit("lock_wait", txn=txn,
                                  resource=repr(resource),
                                  wait_ms=waited_ns / 1e6, outcome=outcome)

    # -- public API ------------------------------------------------------------

    def acquire(self, txn: int, resource: Hashable, mode: str) -> None:
        """Acquire *resource* in *mode* for *txn*; blocks, converts, detects
        deadlock (raising :class:`DeadlockError` with *txn* as victim)."""
        if mode not in _COMPATIBLE:
            raise LockError("unknown lock mode %r" % mode)
        with self._cond:
            deadline = None
            wait_start = 0
            outcome = "granted"
            try:
                while True:
                    target = self._target_mode(txn, resource, mode)
                    if target is None:  # held mode already covers the request
                        return
                    if self._compatible(txn, resource, target):
                        self._grant(txn, resource, target)
                        return
                    self._check_deadlock(txn, resource)
                    self._waiting_for[txn] = resource
                    self.waits += 1
                    if wait_start == 0:
                        wait_start = time.perf_counter_ns()
                    if deadline is None:
                        deadline = self.wait_timeout
                    if not self._cond.wait(timeout=deadline):
                        del self._waiting_for[txn]
                        outcome = "timeout"
                        raise LockTimeoutError(
                            "txn %d timed out waiting for %r"
                            % (txn, resource))
                    self._waiting_for.pop(txn, None)
            except DeadlockError:
                outcome = "deadlock"
                raise
            finally:
                if wait_start:
                    self._record_wait(txn, resource, wait_start, outcome)

    def release_all(self, txn: int) -> None:
        """Release every lock held by *txn* (end of strict 2PL)."""
        with self._cond:
            for resource in self._held.pop(txn, set()):
                state = self._table.get(resource)
                if state is None:
                    continue
                state.holders.pop(txn, None)
                if not state.holders:
                    del self._table[resource]
            self._waiting_for.pop(txn, None)
            self._cond.notify_all()

    def holds(self, txn: int, resource: Hashable,
              mode: Optional[str] = None) -> bool:
        """Whether *txn* holds *resource* (at least as strong as *mode*)."""
        with self._lock:
            state = self._table.get(resource)
            if state is None or txn not in state.holders:
                return False
            if mode is None:
                return True
            return mode in _COVERS[state.holders[txn]]

    # -- internals ------------------------------------------------------------

    def _target_mode(self, txn: int, resource: Hashable,
                     mode: str) -> Optional[str]:
        """Mode *txn* must end up holding, or None if already covered."""
        state = self._table.get(resource)
        if state is None:
            return mode
        held = state.holders.get(txn)
        if held is None:
            return mode
        if mode in _COVERS[held]:
            return None
        return _LUB[(held, mode)]

    def _compatible(self, txn: int, resource: Hashable, target: str) -> bool:
        state = self._table.get(resource)
        if state is None:
            return True
        compat = _COMPATIBLE[target]
        return all(other_mode in compat
                   for other, other_mode in state.holders.items()
                   if other != txn)

    def _grant(self, txn: int, resource: Hashable, mode: str) -> None:
        state = self._table[resource]
        state.holders[txn] = mode
        self._held[txn].add(resource)
        self.grants += 1

    def _check_deadlock(self, txn: int, resource: Hashable) -> None:
        """Raise DeadlockError if txn waiting on resource closes a cycle."""
        state = self._table.get(resource)
        if state is None:
            return
        # Follow holder -> waiting_for -> holder... ; if any transaction
        # reachable from the holders of *resource* is (transitively)
        # waiting on something held by *txn*, granting the wait would
        # close a cycle.
        visited: Set[int] = set()
        frontier = set(state.holders) - {txn}
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            waited = self._waiting_for.get(current)
            if waited is None:
                continue
            next_state = self._table.get(waited)
            if next_state is None:
                continue
            if txn in next_state.holders:
                self.deadlocks += 1
                if self._obs_events is not None:
                    self._obs_events.emit(
                        "deadlock", victim=txn, resource=repr(resource),
                        holders=sorted(state.holders),
                        waits_for={str(waiter): repr(res) for waiter, res
                                   in self._waiting_for.items()})
                raise DeadlockError(
                    "txn %d would deadlock waiting for %r" % (txn, resource))
            frontier |= set(next_state.holders) - visited

    def stats(self) -> Dict[str, int]:
        with self._lock:
            held = sum(len(resources) for resources in self._held.values())
        return {"grants": self.grants, "waits": self.waits,
                "deadlocks": self.deadlocks, "held": held}
