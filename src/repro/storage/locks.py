"""Lock manager — strict two-phase locking with deadlock detection.

The paper defers concurrency ("any O++ program that interacts with the
database will be considered to be a single transaction"), but the substrate
still provides a real lock manager so the transaction layer can interleave
transactions (and so trigger-action transactions, which the paper requires
to be *independent* transactions, are properly isolated).

Granularity is logical: a lock name is any hashable (the object layer locks
object ids and cluster names). Modes are shared (S) and exclusive (X) with
upgrade support. Deadlocks are detected eagerly by cycle search in the
waits-for graph; the requesting transaction is the victim and receives
:class:`DeadlockError`.

The manager is synchronous: a request that cannot be granted and would not
deadlock raises :class:`LockTimeoutError` if waiting is disabled, or blocks
the calling thread on a condition variable otherwise. Single-threaded use
(the common case here) never blocks: conflicts only arise between distinct
transactions run from distinct threads.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import DeadlockError, LockError, LockTimeoutError

SHARED = "S"
EXCLUSIVE = "X"


class _LockState:
    __slots__ = ("holders", "mode", "waiters")

    def __init__(self):
        self.holders: Set[int] = set()
        self.mode: Optional[str] = None
        self.waiters: List[Tuple[int, str]] = []


class LockManager:
    """S/X lock table keyed by arbitrary hashable resource names."""

    def __init__(self, wait_timeout: float = 5.0):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._table: Dict[Hashable, _LockState] = defaultdict(_LockState)
        #: txn -> set of resources it holds
        self._held: Dict[int, Set[Hashable]] = defaultdict(set)
        #: txn -> resource it is currently waiting for
        self._waiting_for: Dict[int, Hashable] = {}
        self.wait_timeout = wait_timeout
        # statistics
        self.grants = 0
        self.waits = 0
        self.deadlocks = 0

    # -- public API ------------------------------------------------------------

    def acquire(self, txn: int, resource: Hashable, mode: str) -> None:
        """Acquire *resource* in *mode* for *txn*; blocks, upgrades, detects
        deadlock (raising :class:`DeadlockError` with *txn* as victim)."""
        if mode not in (SHARED, EXCLUSIVE):
            raise LockError("unknown lock mode %r" % mode)
        with self._cond:
            deadline = None
            while True:
                if self._compatible(txn, resource, mode):
                    self._grant(txn, resource, mode)
                    return
                self._check_deadlock(txn, resource)
                self._waiting_for[txn] = resource
                self.waits += 1
                if deadline is None:
                    deadline = self.wait_timeout
                if not self._cond.wait(timeout=deadline):
                    del self._waiting_for[txn]
                    raise LockTimeoutError(
                        "txn %d timed out waiting for %r" % (txn, resource))
                self._waiting_for.pop(txn, None)

    def release_all(self, txn: int) -> None:
        """Release every lock held by *txn* (end of strict 2PL)."""
        with self._cond:
            for resource in self._held.pop(txn, set()):
                state = self._table.get(resource)
                if state is None:
                    continue
                state.holders.discard(txn)
                if not state.holders:
                    state.mode = None
                    del self._table[resource]
            self._waiting_for.pop(txn, None)
            self._cond.notify_all()

    def holds(self, txn: int, resource: Hashable,
              mode: Optional[str] = None) -> bool:
        """Whether *txn* holds *resource* (at least as strong as *mode*)."""
        with self._lock:
            state = self._table.get(resource)
            if state is None or txn not in state.holders:
                return False
            if mode == EXCLUSIVE:
                return state.mode == EXCLUSIVE
            return True

    # -- internals ------------------------------------------------------------

    def _compatible(self, txn: int, resource: Hashable, mode: str) -> bool:
        state = self._table.get(resource)
        if state is None or not state.holders:
            return True
        if txn in state.holders:
            if mode == SHARED or state.mode == EXCLUSIVE:
                return True  # already strong enough
            # Upgrade S -> X: allowed only as the sole holder.
            return state.holders == {txn}
        if mode == SHARED and state.mode == SHARED:
            return True
        return False

    def _grant(self, txn: int, resource: Hashable, mode: str) -> None:
        state = self._table[resource]
        state.holders.add(txn)
        if state.mode != EXCLUSIVE:
            state.mode = mode if mode == EXCLUSIVE else (state.mode or SHARED)
        self._held[txn].add(resource)
        self.grants += 1

    def _check_deadlock(self, txn: int, resource: Hashable) -> None:
        """Raise DeadlockError if txn waiting on resource closes a cycle."""
        state = self._table.get(resource)
        if state is None:
            return
        # Follow holder -> waiting_for -> holder... ; if any transaction
        # reachable from the holders of *resource* is (transitively)
        # waiting on something held by *txn*, granting the wait would
        # close a cycle.
        visited: Set[int] = set()
        frontier = set(state.holders) - {txn}
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            waited = self._waiting_for.get(current)
            if waited is None:
                continue
            next_state = self._table.get(waited)
            if next_state is None:
                continue
            if txn in next_state.holders:
                self.deadlocks += 1
                raise DeadlockError(
                    "txn %d would deadlock waiting for %r" % (txn, resource))
            frontier |= next_state.holders - visited

    def stats(self) -> Dict[str, int]:
        return {"grants": self.grants, "waits": self.waits,
                "deadlocks": self.deadlocks}
