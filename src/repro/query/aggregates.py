"""Aggregates over forall iterations.

The paper's 3.1.1 example computes average incomes over a cluster
hierarchy with explicit accumulator code; these helpers express the same
computations declaratively::

    from repro.query import forall, A, avg, group_by

    avg(forall(db.cluster(Person).deep()), lambda p: p.income())
    group_by(forall(items), key=A.supplier, value=A.qty, reduce=sum)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from ..errors import QueryError
from .predicates import AttrExpr


def _value_fn(value) -> Callable:
    if value is None:
        return lambda obj: obj
    if isinstance(value, AttrExpr):
        return lambda obj: getattr(obj, value.name)
    if isinstance(value, str):
        return lambda obj: getattr(obj, value)
    if callable(value):
        return value
    raise QueryError("expected an attribute or function, got %r" % (value,))


def count(rows: Iterable, predicate: Optional[Callable] = None) -> int:
    """Number of rows (matching *predicate*, when given)."""
    if predicate is None:
        return sum(1 for _ in rows)
    return sum(1 for row in rows if predicate(row))


def sum_(rows: Iterable, value=None):
    """Sum of *value* over the rows (rows themselves by default)."""
    fn = _value_fn(value)
    return sum(fn(row) for row in rows)


def avg(rows: Iterable, value=None) -> Optional[float]:
    """Mean of *value* over the rows; None for an empty input."""
    fn = _value_fn(value)
    total = 0.0
    n = 0
    for row in rows:
        total += fn(row)
        n += 1
    if n == 0:
        return None
    return total / n


def min_(rows: Iterable, value=None):
    """Smallest *value*; None for an empty input."""
    fn = _value_fn(value)
    best = None
    for row in rows:
        v = fn(row)
        if best is None or v < best:
            best = v
    return best


def max_(rows: Iterable, value=None):
    """Largest *value*; None for an empty input."""
    fn = _value_fn(value)
    best = None
    for row in rows:
        v = fn(row)
        if best is None or v > best:
            best = v
    return best


def group_by(rows: Iterable, key, value=None,
             reduce: Optional[Callable] = None) -> Dict[Any, Any]:
    """Group rows by *key*; optionally map each to *value* and fold with
    *reduce* (a callable over the value list, e.g. ``sum`` or ``len``)."""
    key_fn = _value_fn(key)
    val_fn = _value_fn(value)
    groups: Dict[Any, list] = {}
    for row in rows:
        groups.setdefault(key_fn(row), []).append(val_fn(row))
    if reduce is None:
        return groups
    return {k: reduce(v) for k, v in groups.items()}
