"""The ``forall`` iteration facility (paper section 3.1).

O++ writes::

    for i in 1..n forall t in stock suchthat (t->price < 3.00) by (t->name)
        { ... }

Here the same query is::

    for t in forall(stock).suchthat(A.price < 3.00).by(A.name):
        ...

and the join over multiple loop variables (3.1's employee/child example,
"Rigel also allows multiple loop variables") is::

    for e, c in forall(emps, kids).suchthat(lambda e, c: e.name == c.parent):
        ...

Semantics, as the paper specifies:

* ``suchthat`` restricts the iteration subset; ``by`` orders it (stable
  sort; ``by(..., desc=True)`` reverses). Without ``by`` the iteration
  order is unspecified (physical order in practice).
* Multiple sources form their cross product; the suchthat clause receives
  one argument per loop variable. Equality predicates between variables
  are executed as hash joins instead of nested loops.
* A single-source iteration **without** ``by`` visits elements inserted
  during the iteration — section 3.2's fixpoint property. (An ordered
  iteration necessarily snapshots, as sorting requires the full subset.)
* Single-source introspectable predicates are handed to the optimizer,
  which uses a secondary index when one matches (equality or range).

``forall`` accepts cluster handles, deep views (``cluster.deep()``),
OdeSets, lists — anything re-iterable.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..errors import QueryError
from . import codegen as _codegen
from .optimizer import FullScan, choose_plan
from .predicates import (A, And, AttrExpr, Callable_, JoinCompare, Predicate,
                         TrueP, VarCompare, as_predicate, is_multivar,
                         max_var)


class Forall:
    """A lazily-executed iteration over one or more sources."""

    def __init__(self, *sources):
        if not sources:
            raise QueryError("forall needs at least one source")
        self._sources = sources
        self._pred: Optional[Any] = None       # Predicate or callable
        self._order: List[Tuple[Any, bool]] = []  # (key, desc) pairs
        self._join_keys: Optional[List[Callable]] = None  # hash equijoin
        self._join_key_specs: Optional[List[Any]] = None  # original keys
        self._limit: Optional[int] = None
        #: Per-query opt-out from generated-code execution.
        self._codegen_off = False
        #: The chosen plan, kept across iterations of the same Forall
        #: (re-validated against the database's index-DDL epoch).
        self._plan = None
        self._plan_epoch = -1
        #: Tracing: off by default (the untraced path is byte-for-byte
        #: the pre-tracing code); trace() turns it on, last_trace holds
        #: the span tree of the most recent traced run.
        self._trace_on = False
        self._last_trace = None

    # -- clause builders (each returns self for chaining) ---------------------

    def suchthat(self, condition) -> "Forall":
        """Restrict the iteration subset (predicate or callable)."""
        if self._pred is not None:
            raise QueryError("suchthat may only be given once; combine "
                             "conditions with & / and")
        self._pred = condition
        return self

    def by(self, *keys, desc: bool = False) -> "Forall":
        """Order the subset by one or more keys (AttrExpr, field name, or
        key function). Multiple by() calls refine ties, as do multiple
        keys in one call."""
        for key in keys:
            self._order.append((key, desc))
        return self

    def trace(self, on: bool = True) -> "Forall":
        """Record per-operator spans (rows, pages, time) while iterating.

        After a traced iteration, :attr:`last_trace` holds the span tree
        and ``explain(analyze=True)`` renders it. Tracing materializes
        each operator stage (so time and IO attribute cleanly), trading
        laziness for measurement — leave it off on hot paths.
        """
        self._trace_on = on
        return self

    @property
    def last_trace(self):
        """Root :class:`~repro.obs.trace.Span` of the last traced run."""
        return self._last_trace

    def as_of(self, token: int) -> "Forall":
        """Time-travel: iterate the committed state as of *token* (from
        :meth:`~repro.core.database.Database.snapshot_token`).

        Every cluster source (handle or deep view) is replaced by its
        as-of view; non-cluster sources (lists, sets) are unaffected.
        Requires MVCC (``REPRO_MVCC=0`` disables it) and a token within
        the retention window.
        """
        wrapped = []
        any_cluster = False
        for source in self._sources:
            make = getattr(source, "as_of", None)
            if make is not None:
                wrapped.append(make(token))
                any_cluster = True
            else:
                wrapped.append(source)
        if not any_cluster:
            raise QueryError(
                "as_of needs a cluster source (a ClusterHandle or deep "
                "view); got only plain iterables")
        self._sources = tuple(wrapped)
        self._plan = None  # source identity changed: re-plan
        return self

    def codegen(self, on: bool = True) -> "Forall":
        """Opt this query in or out of generated-code execution.

        ``codegen(False)`` forces the interpreted pipeline regardless of
        the database flag and the ``REPRO_CODEGEN`` environment switch.
        """
        self._codegen_off = not on
        return self

    # -- execution ------------------------------------------------------------

    def __iter__(self) -> Iterator:
        if self._trace_on:
            if len(self._sources) == 1:
                return self._iter_single_traced()
            return self._iter_join_traced()
        if len(self._sources) == 1:
            return self._iter_single()
        return self._iter_join()

    def _db(self):
        return getattr(self._sources[0], "db", None)

    def _exec_db(self):
        """The database behind any source (deep views included)."""
        for source in self._sources:
            db = getattr(source, "db", None)
            if db is None:
                db = getattr(getattr(source, "handle", None), "db", None)
            if db is not None:
                return db
        return None

    def _note_mode(self, compiled: bool) -> None:
        db = self._exec_db()
        if db is None:
            return
        counter = getattr(
            db, "_q_mode_compiled" if compiled else "_q_mode_interpreted",
            None)
        if counter is not None:
            counter.inc()

    def _single_plan(self):
        """The access plan for a one-source iteration.

        The plan is chosen once and reused by later iterations of the
        same Forall (and by :meth:`explain`); it is re-chosen only when
        index DDL has bumped the database's plan epoch.
        """
        source = self._sources[0]
        pred = as_predicate(self._pred) if self._pred is not None else TrueP()
        if is_multivar(pred):
            raise QueryError(
                "V[...] predicates require multiple forall sources; "
                "use A.field for a single source")
        db = getattr(source, "db", None)
        epoch = getattr(db, "_plan_epoch", 0) if db is not None else 0
        if self._plan is None or self._plan_epoch != epoch:
            self._plan = choose_plan(source, pred)
            self._plan_epoch = epoch
        return self._plan

    def _active_plan(self):
        """The plan to execute *now*: the cached plan, unless it is
        index-driven and a concurrent writer has touched the cluster
        relative to this reader's snapshot. Index entries (and the
        direct object-cache probes index plans make) describe the
        present; under churn the full scan's per-record visibility check
        is the only snapshot-correct access path. The cached plan is
        untouched — the substitution lasts one execution."""
        plan = self._single_plan()
        if isinstance(plan, FullScan):
            return plan
        pred = as_predicate(self._pred) if self._pred is not None else TrueP()
        return self._mvcc_safe_plan(self._sources[0], plan, pred)

    @staticmethod
    def _mvcc_safe_plan(source, plan, pred):
        if isinstance(plan, FullScan):
            return plan
        db = getattr(source, "db", None)
        if db is None or not getattr(db, "_mvcc_on", False):
            return plan
        handle = db._txn
        snapshot = handle.snapshot_lsn if handle is not None else None
        if not db._mvcc.cluster_dirty(source.name, snapshot):
            return plan
        fallback = FullScan(source, pred)
        fallback.estimated_rows = plan.estimated_rows
        fallback.estimated_cost = plan.estimated_cost
        return fallback

    def _iter_single(self) -> Iterator:
        plan = self._active_plan()
        fused = _codegen.run_single(self, plan, "iter")
        if fused is not _codegen.INELIGIBLE:
            self._note_mode(compiled=True)
            return fused
        self._note_mode(compiled=False)
        rows = plan.execute()
        if self._order:
            if self._plan_orders_by(plan) and not self._order[0][1]:
                # The index range scan already yields rows in the requested
                # key order: elide the sort. (desc still sorts — reversing
                # the scan would reverse equal-key runs and break the
                # stable-sort guarantee.)
                pass
            else:
                rows = iter(self._sorted(list(rows)))
        if self._limit is not None:
            rows = _take(rows, self._limit)
        return rows

    def _plan_orders_by(self, plan) -> bool:
        """True when *plan* emits rows already ordered by the by() key."""
        from .optimizer import IndexRange
        if len(self._order) != 1:
            return False
        key, _desc = self._order[0]
        if not isinstance(key, AttrExpr):
            return False
        return isinstance(plan, IndexRange) and plan.field == key.name

    # -- traced execution --------------------------------------------------

    def _iter_single_traced(self) -> Iterator:
        from ..obs.trace import QueryTracer
        plan = self._active_plan()
        db = self._db()
        tracer = QueryTracer(db, "forall", "1 source")
        root = tracer.root
        if _codegen.would_run(self):
            root.detail += ", interpreted fallback (tracing)"
        detail = plan.describe()
        if (db is not None and isinstance(plan, FullScan)
                and db.store.n_shards > 1):
            # Full scans on a sharded store fan out across the parallel
            # shard executor (see repro.storage.parallel); surface that
            # in the trace so EXPLAIN ANALYZE shows where the time went.
            detail += ", parallel over %d shards" % db.store.n_shards
        scan = root.child("scan", detail)
        with tracer.measure(root):
            with tracer.measure(scan):
                rows = list(plan.execute(span=scan))
            if self._order and not (self._plan_orders_by(plan)
                                    and not self._order[0][1]):
                sort = root.child("sort", "%d key(s)" % len(self._order))
                sort.rows_in = len(rows)
                with tracer.measure(sort):
                    rows = self._sorted(rows)
                sort.rows_out = len(rows)
            if self._limit is not None:
                lim = root.child("limit", "n=%d" % self._limit)
                lim.rows_in = len(rows)
                rows = rows[:self._limit]
                lim.rows_out = len(rows)
            root.rows_in = scan.rows_in
            root.rows_out = len(rows)
        plan.last_span = scan
        self._last_trace = root
        self._record_traced(db, plan.describe(), root)
        return iter(rows)

    def _iter_join_traced(self) -> Iterator[Tuple]:
        from ..obs.trace import QueryTracer
        db = self._db()
        tracer = QueryTracer(db, "forall", "%d sources" % len(self._sources))
        root = tracer.root
        if _codegen.would_run(self):
            root.detail += ", interpreted fallback (tracing)"
        with tracer.measure(root):
            if self._join_keys is not None:
                root.detail += ", hash equijoin"
                rows = list(self._iter_hash_join())
            elif is_multivar(self._pred):
                root.detail += ", fused join"
                rows = self._iter_fused_join_traced(tracer)
            else:
                root.detail += ", nested loop"
                pred = self._pred
                if pred is None:
                    row_check = None
                elif callable(pred) and not isinstance(pred, Predicate):
                    row_check = _row_filter(pred)
                else:
                    raise QueryError(
                        "multi-variable suchthat takes a callable of %d "
                        "arguments or a V[...] predicate"
                        % len(self._sources))
                rows = list(self._cross_product(row_check))
            if self._order:
                sort = root.child("sort", "%d key(s)" % len(self._order))
                sort.rows_in = len(rows)
                with tracer.measure(sort):
                    rows = self._sorted_tuples(rows)
                sort.rows_out = len(rows)
            if self._limit is not None:
                lim = root.child("limit", "n=%d" % self._limit)
                lim.rows_in = len(rows)
                rows = rows[:self._limit]
                lim.rows_out = len(rows)
            root.rows_out = len(rows)
        self._last_trace = root
        self._record_traced(db, root.detail, root)
        return iter(rows)

    def _iter_fused_join_traced(self, tracer) -> List[Tuple]:
        """Traced counterpart of :meth:`_iter_fused_join`: each scan and
        each join step is materialized under its own measured span."""
        plans, eq_pairs, residual_at = self._fusion()
        arity = len(self._sources)
        root = tracer.root
        scan0 = root.child("scan V[0]", plans[0].describe())
        with tracer.measure(scan0):
            rows = [(obj,) for obj in plans[0].execute(span=scan0)]
            for conj in residual_at[0]:
                check = _tuple_check(conj)
                rows = [row for row in rows if check(row)]
        for k in range(1, arity):
            keys = [_orient(jc, k) for jc in eq_pairs
                    if max(jc.lvar, jc.rvar) == k]
            scan_k = root.child("scan V[%d]" % k, plans[k].describe())
            with tracer.measure(scan_k):
                items = list(plans[k].execute(span=scan_k))
            join = root.child("hash join" if keys else "nested-loop join",
                              "V[0..%d] x V[%d] (%d key(s))"
                              % (k - 1, k, len(keys)))
            join.rows_in = len(rows) + len(items)
            with tracer.measure(join):
                rows = list(self._join_step(
                    iter(rows), plans, k, keys,
                    [_tuple_check(c) for c in residual_at[k]],
                    right=items))
            join.rows_out = len(rows)
        root.rows_in = scan0.rows_in
        return rows

    def _record_traced(self, db, detail: str, root) -> None:
        record = getattr(db, "_record_query", None) if db is not None \
            else None
        if record is not None:
            record("forall", detail, root.ns, root.rows_out)

    def _iter_join(self) -> Iterator[Tuple]:
        fused = _codegen.run_join(self, "iter")
        if fused is not _codegen.INELIGIBLE:
            self._note_mode(compiled=True)
            return fused
        self._note_mode(compiled=False)
        if self._join_keys is not None:
            rows = self._iter_hash_join()
        elif is_multivar(self._pred):
            rows = self._iter_fused_join()
        else:
            pred = self._pred
            arity = len(self._sources)
            if pred is None:
                row_check = None
            elif callable(pred) and not isinstance(pred, Predicate):
                row_check = _row_filter(pred)
            else:
                raise QueryError(
                    "multi-variable suchthat takes a callable of %d "
                    "arguments or a V[...] predicate" % arity)
            rows = self._cross_product(row_check)
        if self._order:
            rows = iter(self._sorted_tuples(list(rows)))
        if self._limit is not None:
            rows = _take(rows, self._limit)
        return rows

    def _cross_product(self, row_check) -> Iterator[Tuple]:
        def recurse(depth: int, chosen: tuple):
            if depth == len(self._sources):
                if row_check is None or row_check(chosen):
                    yield chosen
                return
            for item in self._sources[depth]:
                yield from recurse(depth + 1, chosen + (item,))
        return recurse(0, ())

    # -- fused multi-variable join (V[...] predicates) ---------------------

    def _fusion(self):
        """Decompose the V-predicate and plan every source's access path.

        Returns ``(per_var_plans, eq_pairs, residual_at)``:

        * one optimizer plan per source, with that variable's
          single-variable conjuncts pushed below the join (so indexes
          apply *before* joining);
        * the inter-variable equality conjuncts, executed as hash-join
          keys (all equalities joining the same new variable combine
          into one multi-key probe);
        * the remaining conjuncts, grouped by the highest variable they
          mention so each fires as early as the left-deep expansion
          allows.
        """
        pred = as_predicate(self._pred)
        arity = len(self._sources)
        highest = max_var(pred)
        if highest >= arity:
            raise QueryError(
                "predicate references V[%d] but forall has only %d "
                "source(s)" % (highest, arity))
        per_var: List[List[Predicate]] = [[] for _ in range(arity)]
        eq_pairs: List[JoinCompare] = []
        residual_at: List[List[Predicate]] = [[] for _ in range(arity)]
        for conj in pred.conjuncts():
            if isinstance(conj, VarCompare):
                per_var[conj.var].append(conj.inner)
            elif isinstance(conj, JoinCompare) and conj.op == "==":
                eq_pairs.append(conj)
            else:
                at = max_var(conj)
                residual_at[at if at >= 0 else arity - 1].append(conj)
        plans = []
        for i, source in enumerate(self._sources):
            sub = per_var[i]
            sub_pred = (TrueP() if not sub
                        else sub[0] if len(sub) == 1 else And(*sub))
            plan = choose_plan(source, sub_pred)
            plans.append(self._mvcc_safe_plan(source, plan, sub_pred))
        return plans, eq_pairs, residual_at

    def _iter_fused_join(self) -> Iterator[Tuple]:
        """Execute a V-predicate join: per-source index plans below a
        left-deep chain of (multi-key) hash joins."""
        plans, eq_pairs, residual_at = self._fusion()
        arity = len(self._sources)
        rows: Iterator[Tuple] = ((obj,) for obj in plans[0].execute())
        for conj in residual_at[0]:
            rows = filter(_tuple_check(conj), rows)
        for k in range(1, arity):
            keys = [_orient(jc, k) for jc in eq_pairs
                    if max(jc.lvar, jc.rvar) == k]
            rows = self._join_step(rows, plans, k, keys,
                                   [_tuple_check(c) for c in residual_at[k]])
        return rows

    def _join_step(self, rows: Iterator[Tuple], plans, k: int,
                   keys: List[Tuple[int, str, str]],
                   checks: List[Callable], right=None) -> Iterator[Tuple]:
        """Extend each prefix row with source *k*.

        *keys* holds ``(probe_var, probe_attr, build_attr)`` triples: the
        hash table over source *k* is keyed on the build attrs, probed
        with the prefix row's attrs. Without keys this degenerates to a
        (filtered) cross product. *right* overrides where source *k*'s
        rows come from (the traced path pre-materializes them under a
        measured span); by default the plan executes here. Every branch
        consumes *right* exactly once.
        """
        if right is None:
            right = plans[k].execute()
        if not keys:
            items = list(right)
            for row in rows:
                for obj in items:
                    new = row + (obj,)
                    if all(c(new) for c in checks):
                        yield new
            return
        if k == 1 and plans[0].estimated_rows < plans[1].estimated_rows:
            # Build on the smaller left side, stream the right side.
            table: dict = {}
            for row in rows:
                probe = tuple(getattr(row[v], a) for v, a, _ in keys)
                table.setdefault(probe, []).append(row)
            for obj in right:
                build = tuple(getattr(obj, b) for _, _, b in keys)
                for row in table.get(build, ()):
                    new = row + (obj,)
                    if all(c(new) for c in checks):
                        yield new
            return
        table = {}
        for obj in right:
            build = tuple(getattr(obj, b) for _, _, b in keys)
            table.setdefault(build, []).append(obj)
        for row in rows:
            probe = tuple(getattr(row[v], a) for v, a, _ in keys)
            for obj in table.get(probe, ()):
                new = row + (obj,)
                if all(c(new) for c in checks):
                    yield new

    # -- ordering ------------------------------------------------------------

    def _sorted(self, rows: List) -> List:
        for key, desc in reversed(self._order):
            rows.sort(key=_key_fn(key), reverse=desc)
        return rows

    def _sorted_tuples(self, rows: List[Tuple]) -> List[Tuple]:
        for key, desc in reversed(self._order):
            if not callable(key) or isinstance(key, AttrExpr):
                raise QueryError(
                    "ordering a join requires a key function over the "
                    "variable tuple")
            rows.sort(key=lambda row: key(*row), reverse=desc)
        return rows

    # -- join strategies ---------------------------------------------------

    def join_on(self, *keys) -> "Forall":
        """Execute the cross product as a **hash equijoin** on *keys*.

        One key extractor per source (an :class:`AttrExpr`, a field name,
        or a callable); rows whose keys are equal are combined. The paper
        criticises object databases for lacking "arbitrary join queries"
        (section 1) — this is the declarative equality join its iteration
        clauses enable, executed in O(N+M) instead of the nested loop's
        O(N·M). A ``suchthat`` callable, if also given, applies as a
        residual filter over the joined tuples.
        """
        if len(keys) != len(self._sources):
            raise QueryError("join_on needs one key per source (%d given, "
                             "%d sources)" % (len(keys), len(self._sources)))
        self._join_keys = [_key_fn(k) for k in keys]
        self._join_key_specs = list(keys)
        return self

    def _iter_hash_join(self) -> Iterator[Tuple]:
        keys = self._join_keys
        pred = self._pred
        if pred is not None and isinstance(pred, Predicate):
            raise QueryError("join_on takes a callable residual filter")
        row_check = None if pred is None else _row_filter(pred)
        # Build hash tables for every source after the first.
        tables = []
        for source, key_fn in zip(self._sources[1:], keys[1:]):
            table: dict = {}
            for item in source:
                table.setdefault(key_fn(item), []).append(item)
            tables.append(table)

        def expand(depth: int, chosen: tuple, join_key):
            if depth == len(self._sources):
                if row_check is None or row_check(chosen):
                    yield chosen
                return
            for item in tables[depth - 1].get(join_key, ()):
                yield from expand(depth + 1, chosen + (item,), join_key)

        for first in self._sources[0]:
            yield from expand(1, (first,), keys[0](first))

    # -- terminal conveniences ------------------------------------------------

    def limit(self, n: int) -> "Forall":
        """Yield at most *n* results (applied after suchthat/by)."""
        if n < 0:
            raise QueryError("limit must be non-negative")
        self._limit = n
        return self

    def to_list(self) -> List:
        if not self._trace_on:
            if len(self._sources) == 1:
                rows = _codegen.run_single(self, self._active_plan(),
                                           "collect")
            else:
                rows = _codegen.run_join(self, "collect")
            if rows is not _codegen.INELIGIBLE:
                self._note_mode(compiled=True)
                return rows
        return list(self)

    def first(self):
        """The first matching element, or None."""
        for item in self:
            return item
        return None

    def exists(self) -> bool:
        """Whether any row matches (stops at the first)."""
        return self.first() is not None

    def count(self) -> int:
        if not self._trace_on:
            if len(self._sources) == 1:
                n = _codegen.run_single(self, self._active_plan(), "count")
            else:
                n = _codegen.run_join(self, "count")
            if n is not _codegen.INELIGIBLE:
                self._note_mode(compiled=True)
                return n
        return sum(1 for _ in self)

    def explain(self, analyze: bool = False, code: bool = False) -> str:
        """Human-readable description of the chosen plan.

        With *analyze=True* the query is actually executed with tracing
        on and the per-operator measurements (rows in/out, pages touched,
        cache hits, wall time) are appended to the plan text. Tracing
        always runs the interpreted pipeline; when the untraced query
        would have used generated code, the trace header says so. With
        *code=True* the generated source (if any) is appended.
        """
        text = self._explain_plan()
        mode, source = _codegen.describe_mode(self)
        text += "\nexecution: %s" % mode
        if code:
            if source is None:
                text += "\ngenerated code: none (interpreted)"
            else:
                text += "\ngenerated code:\n" + "\n".join(
                    "  " + line for line in source.rstrip().splitlines())
        if not analyze:
            return text
        from ..obs.trace import render_trace
        was_on = self._trace_on
        self._trace_on = True
        try:
            for _ in self:
                pass
        finally:
            self._trace_on = was_on
        return text + "\nanalyze:\n" + "\n".join(
            "  " + line for line in render_trace(self._last_trace))

    def _explain_plan(self) -> str:
        if len(self._sources) != 1:
            if self._join_keys is not None:
                return "hash equijoin over %d sources" % len(self._sources)
            if is_multivar(self._pred):
                plans, eq_pairs, residual_at = self._fusion()
                n_residual = sum(len(r) for r in residual_at)
                lines = ["fused hash join over %d sources "
                         "(%d equality key(s), %d residual conjunct(s))"
                         % (len(self._sources), len(eq_pairs), n_residual)]
                for i, plan in enumerate(plans):
                    lines.append("  V[%d]: %s" % (i, plan.describe()))
                return "\n".join(lines)
            return "nested-loop join over %d sources" % len(self._sources)
        plan = self._single_plan()
        suffix = " + sort" if self._order else ""
        return plan.describe() + suffix

    def __repr__(self):
        return "Forall(sources=%d, suchthat=%r, by=%d keys)" % (
            len(self._sources), self._pred, len(self._order))


def _orient(jc: JoinCompare, k: int) -> Tuple[int, str, str]:
    """``(probe_var, probe_attr, build_attr)`` for joining variable *k*."""
    if jc.lvar == k:
        return (jc.rvar, jc.rattr, jc.lattr)
    return (jc.lvar, jc.lattr, jc.rattr)


def _row_filter(pred) -> Callable:
    """Compile a multi-argument residual filter into a row-tuple closure.

    Opaque suchthat callables on joins receive the loop variables as
    separate arguments; introspectable predicates are specialised via
    :meth:`Predicate.compiled` so the hot residual loop never goes
    through interpreted double dispatch.
    """
    if isinstance(pred, Predicate):
        check = pred.compiled()
        return lambda row, _check=check: _check(row)
    return lambda row, _func=pred, _bool=bool: _bool(_func(*row))


def _tuple_check(conj: Predicate) -> Callable:
    """A compiled row-tuple filter for a residual conjunct.

    Opaque callables mixed into a V-predicate receive the loop variables
    as separate arguments (matching the plain multi-source suchthat
    convention); everything else already evaluates over the row tuple.
    """
    if isinstance(conj, Callable_):
        func = conj.func
        return lambda row: bool(func(*row))
    return conj.compiled()


def _take(rows: Iterator, n: int) -> Iterator:
    for i, row in enumerate(rows):
        if i >= n:
            return
        yield row


def _key_fn(key) -> Callable:
    if isinstance(key, AttrExpr):
        return lambda obj: getattr(obj, key.name)
    if isinstance(key, str):
        return lambda obj: getattr(obj, key)
    if callable(key):
        return key
    raise QueryError("by() expects an attribute or key function, got %r"
                     % (key,))


def forall(*sources) -> Forall:
    """Begin a forall iteration over *sources* (see module docs)."""
    return Forall(*sources)
