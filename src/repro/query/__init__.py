"""Query processing: forall/suchthat/by iteration, joins, index-aware
optimization, fixpoint (recursive) queries and aggregates (paper section 3).
"""

from .aggregates import avg, count, group_by, max_, min_, sum_
from .fixpoint import (fixpoint, growing_iteration, reachable_objects,
                       semi_naive, transitive_closure)
from .iterate import Forall, forall
from .optimizer import (CompositeScan, FullScan, IndexEquality, IndexRange,
                        Plan, PlanCache, choose_plan)
from .predicates import (A, And, AttrCompare, AttrExpr, Callable_, Compare,
                         JoinCompare, Not, Or, Predicate, TrueP, V,
                         VarCompare, as_predicate, is_multivar)
from .stats import ClusterStats, FieldStats, StatsManager

__all__ = [
    "avg", "count", "group_by", "max_", "min_", "sum_",
    "fixpoint", "growing_iteration", "reachable_objects", "semi_naive",
    "transitive_closure", "Forall", "forall",
    "CompositeScan", "FullScan", "IndexEquality", "IndexRange", "Plan",
    "PlanCache", "choose_plan",
    "A", "And", "AttrCompare", "AttrExpr", "Callable_", "Compare",
    "JoinCompare", "Not", "Or", "Predicate", "TrueP", "V", "VarCompare",
    "as_predicate", "is_multivar",
    "ClusterStats", "FieldStats", "StatsManager",
]
