"""Per-cluster statistics driving the cost-based optimizer.

The paper motivates ``suchthat``/``by`` clauses as optimizer fodder
(section 3.1); pricing the alternative access paths requires knowing how
big a cluster is and how selective a predicate will be. This module keeps,
per cluster:

* the **object count** (version heads, i.e. what an iteration visits);
* per tracked field: the **distinct-value count** and the **min/max**
  bounds, used for equality and range selectivity estimates.

Statistics are maintained *incrementally* — ``pnew``, ``pdelete`` and
field updates adjust them in place — so planning never scans. Two
precision levels exist:

``exact``
    The manager has seen every mutation since the cluster was empty (or
    since an :meth:`analyze` scan): per-field value counts are kept, so
    distinct counts and bounds are exact.

``summary``
    Only the persisted summary (count, n_distinct, min, max) is known —
    the database was reopened. Counts and bounds still track mutations;
    distinct counts are estimates until the next :meth:`analyze`.

Summaries are persisted through the catalog's metadata records (key
``"stats:<cluster>"``) on checkpoint and close, so a reopened database
plans with real numbers immediately. An aborted transaction invalidates
the in-memory state (the cheap, always-correct answer); statistics are
advisory — a stale estimate can only mis-price a plan, never change a
query's result set.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

#: Persist a cluster's summary after this many mutations since the last
#: write (also persisted on checkpoint/close regardless).
PERSIST_EVERY = 256


class FieldStats:
    """Distinct count and value bounds for one tracked field."""

    __slots__ = ("n_distinct", "min", "max", "counts")

    def __init__(self, n_distinct: int = 0, lo: Any = None, hi: Any = None,
                 counts: Optional[Dict] = None):
        self.n_distinct = n_distinct
        self.min = lo
        self.max = hi
        #: value -> occurrence count; only present at ``exact`` precision.
        self.counts = counts

    def record(self, value, delta: int) -> None:
        if self.counts is not None:
            try:
                n = self.counts.get(value, 0) + delta
            except TypeError:           # unhashable value: degrade
                self.counts = None
            else:
                if n <= 0:
                    self.counts.pop(value, None)
                    if value == self.min or value == self.max:
                        self.min = self.max = None
                        self.refresh_bounds()
                else:
                    self.counts[value] = n
                    self._widen(value)
                self.n_distinct = len(self.counts)
                return
        # Summary precision: grow the distinct estimate on insert of a
        # value outside the known bounds; never shrink (deletes of the
        # last occurrence of a value are invisible without counts).
        if delta > 0 and self.n_distinct == 0:
            self.n_distinct = 1
        self._widen(value)

    def _widen(self, value) -> None:
        try:
            if value is None:
                return
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
        except TypeError:
            pass  # un-orderable type: bounds stay unknown

    def refresh_bounds(self) -> None:
        """Recompute min/max from exact counts (after deletes)."""
        if not self.counts:
            return
        try:
            keys = [k for k in self.counts if k is not None]
            if keys:
                self.min = min(keys)
                self.max = max(keys)
        except TypeError:
            pass

    def to_state(self) -> List:
        return [self.n_distinct, self.min, self.max]

    @classmethod
    def from_state(cls, state: List) -> "FieldStats":
        return cls(state[0], state[1], state[2])


class ClusterStats:
    """Statistics for one cluster: count plus per-field detail."""

    __slots__ = ("cluster", "count", "fields", "exact", "mutations",
                 "version")

    def __init__(self, cluster: str, count: int = 0,
                 fields: Optional[Dict[str, FieldStats]] = None,
                 exact: bool = False):
        self.cluster = cluster
        self.count = count
        self.fields = fields if fields is not None else {}
        self.exact = exact
        #: mutations since the summary was last persisted.
        self.mutations = 0
        #: monotone mutation counter — the plan cache compares versions to
        #: detect statistics drift and replan.
        self.version = 0

    def field(self, name: str) -> Optional[FieldStats]:
        return self.fields.get(name)

    def track_field(self, name: str) -> FieldStats:
        fs = self.fields.get(name)
        if fs is None:
            fs = FieldStats(counts={} if self.exact else None)
            self.fields[name] = fs
        return fs

    def to_state(self) -> Dict:
        return {"count": self.count,
                "fields": {f: fs.to_state() for f, fs in self.fields.items()}}

    @classmethod
    def from_state(cls, cluster: str, state: Dict) -> "ClusterStats":
        fields = {f: FieldStats.from_state(s)
                  for f, s in state.get("fields", {}).items()}
        return cls(cluster, state.get("count", 0), fields, exact=False)

    def __repr__(self):
        return ("ClusterStats(%s, count=%d, %s, fields=%r)"
                % (self.cluster, self.count,
                   "exact" if self.exact else "summary",
                   sorted(self.fields)))


class StatsManager:
    """Owns every cluster's statistics for one open database."""

    META_PREFIX = "stats:"

    def __init__(self, db):
        self._db = db
        self._stats: Dict[str, ClusterStats] = {}
        # Statistics are advisory, but the dicts backing them must not be
        # structurally corrupted by concurrent mutators; one reentrant
        # mutex keeps every update/rebuild atomic.
        self._mutex = threading.RLock()

    # -- access -----------------------------------------------------------

    def get(self, cluster: str) -> Optional[ClusterStats]:
        """Statistics for *cluster*, loading the persisted summary if this
        is the first request since open/abort. None when nothing is known
        (the optimizer then falls back to default selectivities)."""
        with self._mutex:
            stats = self._stats.get(cluster)
            if stats is not None:
                return stats
            state = self._db.store.catalog.get_meta(
                self.META_PREFIX + cluster)
            if state is None:
                return None
            stats = ClusterStats.from_state(cluster, state)
            self._stats[cluster] = stats
            return stats

    def tracked_fields(self, cluster: str) -> List[str]:
        """The fields whose values this cluster's indexes (hence the cost
        model) care about."""
        fields: List[str] = []
        for info in self._db.store.indexes_on(cluster).values():
            for f in info.fields:
                if f not in fields:
                    fields.append(f)
        return fields

    # -- lifecycle hooks ---------------------------------------------------

    def register_new(self, cluster: str) -> None:
        """A cluster was just created (empty): exact tracking starts now."""
        with self._mutex:
            self._stats[cluster] = ClusterStats(cluster, exact=True)

    def record_insert(self, cluster: str, state: Dict) -> None:
        with self._mutex:
            stats = self.get(cluster)
            if stats is None:
                return
            stats.count += 1
            stats.mutations += 1
            stats.version += 1
            for f in self.tracked_fields(cluster):
                stats.track_field(f).record(state.get(f), +1)
            self._maybe_persist(stats)

    def record_delete(self, cluster: str, state: Dict) -> None:
        with self._mutex:
            stats = self.get(cluster)
            if stats is None:
                return
            stats.count = max(0, stats.count - 1)
            stats.mutations += 1
            stats.version += 1
            for f in self.tracked_fields(cluster):
                fs = stats.field(f)
                if fs is not None:
                    fs.record(state.get(f), -1)
            self._maybe_persist(stats)

    def record_update(self, cluster: str, old_state: Optional[Dict],
                      new_state: Dict) -> None:
        if old_state is None:       # first write of a new object: counted
            return                  # by record_insert already
        with self._mutex:
            stats = self.get(cluster)
            if stats is None:
                return
            stats.mutations += 1
            stats.version += 1
            for f in self.tracked_fields(cluster):
                old_v, new_v = old_state.get(f), new_state.get(f)
                if old_v == new_v:
                    continue
                fs = stats.track_field(f)
                fs.record(old_v, -1)
                fs.record(new_v, +1)
            self._maybe_persist(stats)

    def dirty(self) -> bool:
        """True when some summary has unpersisted mutations."""
        with self._mutex:
            return any(s.mutations for s in self._stats.values())

    def invalidate(self) -> None:
        """Drop in-memory state (an abort may have rolled anything back);
        summaries reload lazily from the catalog."""
        with self._mutex:
            self._stats.clear()

    # -- analyze -----------------------------------------------------------

    def analyze(self, cluster: str) -> ClusterStats:
        """Rebuild *cluster*'s statistics exactly by scanning it."""
        store = self._db.store
        fields = self.tracked_fields(cluster)
        stats = ClusterStats(cluster, exact=True)
        for f in fields:
            stats.track_field(f)
        for _rid, record in store.scan(cluster):
            serial, version = record["__key"]
            if version != 0:
                continue
            stats.count += 1
            if fields:
                state = store.get(cluster, (serial, record["current"]))
                if state is not None:
                    for f in fields:
                        stats.fields[f].record(state["state"].get(f), +1)
        for fs in stats.fields.values():
            fs.refresh_bounds()
        with self._mutex:
            self._stats[cluster] = stats
        return stats

    # -- persistence -------------------------------------------------------

    def _maybe_persist(self, stats: ClusterStats) -> None:
        if stats.mutations >= PERSIST_EVERY:
            self.persist_one(stats)

    def persist_one(self, stats: ClusterStats) -> None:
        db = self._db
        if db._txn is None:
            return  # no open transaction: checkpoint/close will catch up
        db.store.catalog.set_meta(db._txn.txn_id,
                                  self.META_PREFIX + stats.cluster,
                                  stats.to_state())
        stats.mutations = 0

    def persist_all(self, txn: int) -> None:
        """Write every dirty summary (checkpoint/close path)."""
        catalog = self._db.store.catalog
        with self._mutex:
            for stats in self._stats.values():
                if stats.mutations:
                    catalog.set_meta(txn, self.META_PREFIX + stats.cluster,
                                     stats.to_state())
                    stats.mutations = 0

    def snapshot(self) -> Dict[str, Dict]:
        """Summaries of every known cluster (for ``db.stats()``)."""
        out = {}
        with self._mutex:
            items = sorted(self._stats.items())
        for name, stats in items:
            out[name] = {
                "objects": stats.count,
                "precision": "exact" if stats.exact else "summary",
                "fields": {f: {"n_distinct": fs.n_distinct,
                               "min": fs.min, "max": fs.max}
                           for f, fs in sorted(stats.fields.items())},
            }
        return out
