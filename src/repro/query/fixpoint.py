"""Least-fixpoint (recursive) queries — paper section 3.2.

Aho and Ullman showed the least-fixpoint operator is an essential addition
to relational query languages; O++ gets it almost for free: *iteration over
a set or cluster also visits elements added during the iteration*. The
paper's parts-explosion idiom is therefore simply::

    reachable = OdeSet([root])
    for part in reachable:                  # OdeSet iteration grows
        for sub in part.follow_all("uses"):
            reachable.insert(sub)

This module packages that idiom plus the two classical evaluation
strategies, so benchmarks can compare them:

* :func:`fixpoint` — naive evaluation: re-apply the step function to the
  whole set until nothing new appears.
* :func:`semi_naive` — seminaive evaluation: apply the step function only
  to the *delta* (the tuples new in the previous round).
* :func:`transitive_closure` — the common case, built on semi_naive.
* :func:`reachable_objects` — closure over persistent object references.

All return :class:`~repro.core.sets.OdeSet`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Set

from ..core.oid import Oid, Vref
from ..core.sets import OdeSet


def fixpoint(seed: Iterable, step: Callable[[OdeSet], Iterable]) -> OdeSet:
    """Naive least fixpoint: ``X = seed; X = X ∪ step(X)`` until stable.

    *step* receives the whole current set each round — simple, and
    quadratic in the number of rounds times set size. Prefer
    :func:`semi_naive` for large closures; this exists as the baseline
    the benchmarks compare against.
    """
    result = OdeSet(seed)
    changed = True
    while changed:
        changed = False
        for item in list(step(result)):
            if result.insert(item):
                changed = True
    return result


def semi_naive(seed: Iterable,
               expand: Callable[[object], Iterable]) -> OdeSet:
    """Seminaive least fixpoint: expand only the frontier each round.

    *expand(item)* yields items directly derivable from one item. Each
    item is expanded exactly once, making the evaluation linear in the
    size of the derivation graph.
    """
    result = OdeSet()
    frontier = list(seed)
    for item in frontier:
        result.insert(item)
    while frontier:
        next_frontier = []
        for item in frontier:
            for derived in expand(item):
                if result.insert(derived):
                    next_frontier.append(derived)
        frontier = next_frontier
    return result


def growing_iteration(seed: Iterable,
                      visit: Callable[[object, OdeSet], None]) -> OdeSet:
    """The paper's literal idiom: iterate a set that grows as you go.

    *visit(item, working_set)* may insert into *working_set*; the
    iteration picks up the insertions (OdeSet's growth-tolerant iterator).
    Returns the final set.
    """
    working = OdeSet(seed)
    for item in working:
        visit(item, working)
    return working


def transitive_closure(roots: Iterable,
                       successors: Callable[[object], Iterable],
                       include_roots: bool = True) -> OdeSet:
    """Everything reachable from *roots* via *successors* edges."""
    closure = semi_naive(roots, successors)
    if not include_roots:
        for root in roots:
            closure.remove(root)
    return closure


def reachable_objects(db, roots: Iterable, via: Iterable[str]) -> OdeSet:
    """Persistent-object closure: follow the named reference fields.

    *via* lists field names; Ref fields contribute their target, Set/List
    fields contribute every referenced element. Returns an OdeSet of
    Oids (roots included)."""
    field_names = list(via)

    def expand(oid: Oid) -> Iterator[Oid]:
        obj = db.deref(oid, _missing_ok=True)
        if obj is None:
            return
        for name in field_names:
            if name not in obj._ode_fields:
                continue
            value = getattr(obj, name)
            for ref in _refs_in(value):
                yield ref

    root_oids = [r.oid if hasattr(r, "oid") and r.is_persistent else r
                 for r in roots]
    return semi_naive(root_oids, expand)


def _refs_in(value) -> Iterator[Oid]:
    from ..core.objects import OdeObject
    if isinstance(value, Oid):
        yield value
    elif isinstance(value, Vref):
        yield value.oid
    elif isinstance(value, OdeObject) and value.is_persistent:
        yield value.oid
    elif isinstance(value, (list, tuple, set, frozenset, OdeSet)):
        for item in value:
            yield from _refs_in(item)
