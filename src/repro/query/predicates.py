"""Predicate expressions for ``suchthat`` clauses.

A ``suchthat`` clause can always be an opaque Python callable, but opaque
code forces a full cluster scan. Building the predicate from attribute
expressions instead keeps it *introspectable*, which is what lets the
optimizer (section 3.1: "iterators can be qualified with clauses ... which
can be used to advantage in query optimization") push equality and range
conditions into indexes::

    from repro.query import A, forall

    forall(items).suchthat(A.price < 3.0)
    forall(items).suchthat((A.supplier == att) & (A.qty >= 100))

``A.field`` creates an attribute expression; comparisons produce
:class:`Compare` nodes; ``&`` / ``|`` / ``~`` combine them. Every predicate
is also a callable ``pred(obj) -> bool``, so the same object drives both
the optimizer and the residual filter.

Two execution-speed facilities live here as well:

* :meth:`Predicate.compiled` returns a plain closure specialised to the
  predicate (operator and operands bound as locals), so a hot residual
  filter like ``A.price < 3.00`` is not re-interpreted — no ``_OPS``
  dict lookup, no attribute chasing on ``self`` — for every row. The
  closure is cached on the predicate instance.
* ``V[i].field`` builds **multi-variable** expressions for join queries:
  ``forall(emps, kids).suchthat(V[0].name == V[1].parent)``. Comparisons
  within one variable become per-source conjuncts the optimizer pushes
  below the join; equality comparisons *between* variables become hash
  join keys (see :mod:`repro.query.iterate`). Multi-variable predicates
  are callables over the row tuple: ``pred(row) -> bool``.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterator, List, Optional

from ..errors import QueryError

_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


class Predicate:
    """Base class: a boolean condition over one object."""

    def __call__(self, obj) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, _as_predicate(other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, _as_predicate(other))

    def __invert__(self) -> "Predicate":
        return Not(self)

    def conjuncts(self) -> List["Predicate"]:
        """Flatten top-level ANDs into a conjunct list."""
        return [self]

    def compiled(self) -> Callable:
        """A plain callable equivalent to ``self.__call__``.

        Subclasses specialise this into a closure with the operator and
        operands bound as locals, so per-row evaluation does no dict
        lookups or ``self`` attribute chasing. Falls back to the
        predicate itself (already callable).
        """
        return self

    def shape(self):
        """Hashable structural key of the predicate, with constants
        elided — two predicates differing only in compared values share a
        shape. ``None`` means the predicate is opaque (not cacheable)."""
        return None


class Compare(Predicate):
    """``attr <op> constant`` — the optimizable leaf."""

    __slots__ = ("attr", "op", "value", "_compiled")

    def __init__(self, attr: str, op: str, value: Any):
        if op not in _OPS:
            raise QueryError("unknown comparison operator %r" % op)
        self.attr = attr
        self.op = op
        self.value = value
        self._compiled = None

    def __call__(self, obj) -> bool:
        try:
            return _OPS[self.op](getattr(obj, self.attr), self.value)
        except TypeError:
            return False

    def compiled(self) -> Callable:
        if self._compiled is None:
            def check(obj, _op=_OPS[self.op], _attr=self.attr,
                      _value=self.value, _getattr=getattr):
                try:
                    return _op(_getattr(obj, _attr), _value)
                except TypeError:
                    return False
            self._compiled = check
        return self._compiled

    def shape(self):
        return ("cmp", self.attr, self.op)

    def __repr__(self):
        return "(%s %s %r)" % (self.attr, self.op, self.value)


class AttrCompare(Predicate):
    """``attr1 <op> attr2`` — join-style comparison on one object."""

    __slots__ = ("left", "op", "right", "_compiled")

    def __init__(self, left: str, op: str, right: str):
        self.left = left
        self.op = op
        self.right = right
        self._compiled = None

    def __call__(self, obj) -> bool:
        return _OPS[self.op](getattr(obj, self.left),
                             getattr(obj, self.right))

    def compiled(self) -> Callable:
        if self._compiled is None:
            def check(obj, _op=_OPS[self.op], _l=self.left, _r=self.right,
                      _getattr=getattr):
                return _op(_getattr(obj, _l), _getattr(obj, _r))
            self._compiled = check
        return self._compiled

    def shape(self):
        return ("acmp", self.left, self.op, self.right)

    def __repr__(self):
        return "(%s %s %s)" % (self.left, self.op, self.right)


class And(Predicate):
    __slots__ = ("parts", "_compiled")

    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)
        self._compiled = None

    def __call__(self, obj) -> bool:
        return all(p(obj) for p in self.parts)

    def conjuncts(self) -> List[Predicate]:
        out: List[Predicate] = []
        for p in self.parts:
            out.extend(p.conjuncts())
        return out

    def compiled(self) -> Callable:
        if self._compiled is None:
            checks = tuple(p.compiled() for p in self.parts)

            def check(obj, _checks=checks):
                for c in _checks:
                    if not c(obj):
                        return False
                return True
            self._compiled = check
        return self._compiled

    def shape(self):
        return _combine_shapes("and", self.parts)

    def __repr__(self):
        return "(" + " and ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    __slots__ = ("parts", "_compiled")

    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)
        self._compiled = None

    def __call__(self, obj) -> bool:
        return any(p(obj) for p in self.parts)

    def compiled(self) -> Callable:
        if self._compiled is None:
            checks = tuple(p.compiled() for p in self.parts)

            def check(obj, _checks=checks):
                for c in _checks:
                    if c(obj):
                        return True
                return False
            self._compiled = check
        return self._compiled

    def shape(self):
        return _combine_shapes("or", self.parts)

    def __repr__(self):
        return "(" + " or ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    __slots__ = ("part", "_compiled")

    def __init__(self, part: Predicate):
        self.part = part
        self._compiled = None

    def __call__(self, obj) -> bool:
        return not self.part(obj)

    def compiled(self) -> Callable:
        if self._compiled is None:
            inner = self.part.compiled()

            def check(obj, _inner=inner):
                return not _inner(obj)
            self._compiled = check
        return self._compiled

    def shape(self):
        inner = self.part.shape()
        return None if inner is None else ("not", inner)

    def __repr__(self):
        return "(not %r)" % (self.part,)


def _combine_shapes(tag: str, parts):
    shapes = []
    for p in parts:
        s = p.shape()
        if s is None:
            return None
        shapes.append(s)
    return (tag,) + tuple(shapes)


class Callable_(Predicate):
    """Wrapper for an opaque Python callable (never optimized)."""

    __slots__ = ("func", "_compiled")

    def __init__(self, func: Callable):
        self.func = func
        self._compiled = None

    def __call__(self, obj) -> bool:
        return bool(self.func(obj))

    def compiled(self) -> Callable:
        if self._compiled is None:
            def check(obj, _func=self.func, _bool=bool):
                return _bool(_func(obj))
            self._compiled = check
        return self._compiled

    def __repr__(self):
        return "<opaque %s>" % getattr(self.func, "__name__", "lambda")


class TrueP(Predicate):
    """The always-true predicate (empty suchthat)."""

    def __call__(self, obj) -> bool:
        return True

    def conjuncts(self) -> List[Predicate]:
        return []

    def shape(self):
        return ("true",)

    def __repr__(self):
        return "true"


class AttrExpr:
    """``A.field`` — a reference to an attribute in a predicate."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _compare(self, op: str, other: Any) -> Predicate:
        if isinstance(other, AttrExpr):
            return AttrCompare(self.name, op, other.name)
        other = _dereference_constant(other)
        return Compare(self.name, op, other)

    def __eq__(self, other):  # type: ignore[override]
        return self._compare("==", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._compare("!=", other)

    def __lt__(self, other):
        return self._compare("<", other)

    def __le__(self, other):
        return self._compare("<=", other)

    def __gt__(self, other):
        return self._compare(">", other)

    def __ge__(self, other):
        return self._compare(">=", other)

    def is_in(self, collection) -> Predicate:
        """Membership test: ``A.name.is_in(["a", "b"])``."""
        frozen = list(collection)
        return Callable_(lambda obj, _c=frozen, _n=self.name:
                         getattr(obj, _n) in _c)

    def between(self, lo, hi) -> Predicate:
        """Inclusive range: ``A.age.between(18, 65)`` (both optimizable)."""
        return And(Compare(self.name, ">=", lo), Compare(self.name, "<=", hi))

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self):
        return "A.%s" % self.name


class _AttrBuilder:
    """``A`` — builds attribute expressions: ``A.age``, ``A.name``."""

    def __getattr__(self, name: str) -> AttrExpr:
        if name.startswith("_"):
            raise AttributeError(name)
        return AttrExpr(name)


#: The attribute-expression builder used in suchthat clauses.
A = _AttrBuilder()


# ---------------------------------------------------------------------------
# multi-variable predicates (join fusion)
# ---------------------------------------------------------------------------

class VarCompare(Predicate):
    """A single-variable condition inside a multi-variable predicate.

    Wraps an ordinary one-object predicate together with the loop
    variable index it constrains. Called with the *row tuple*; the
    optimizer pushes the inner predicate below the join so the source is
    index-filtered before joining.
    """

    __slots__ = ("var", "inner", "_compiled")

    def __init__(self, var: int, inner: Predicate):
        self.var = var
        self.inner = inner
        self._compiled = None

    def __call__(self, row) -> bool:
        return self.inner(row[self.var])

    def compiled(self) -> Callable:
        if self._compiled is None:
            def check(row, _var=self.var, _inner=self.inner.compiled()):
                return _inner(row[_var])
            self._compiled = check
        return self._compiled

    def shape(self):
        inner = self.inner.shape()
        return None if inner is None else ("var", self.var, inner)

    def __repr__(self):
        return "V[%d]%r" % (self.var, self.inner)


class JoinCompare(Predicate):
    """``V[i].a <op> V[j].b`` — a condition across two loop variables.

    Equality joins (op ``==``) are executed as hash-join keys; other
    operators become residual filters over the joined tuples. Called
    with the row tuple.
    """

    __slots__ = ("lvar", "lattr", "op", "rvar", "rattr", "_compiled")

    def __init__(self, lvar: int, lattr: str, op: str, rvar: int,
                 rattr: str):
        if op not in _OPS:
            raise QueryError("unknown comparison operator %r" % op)
        self.lvar = lvar
        self.lattr = lattr
        self.op = op
        self.rvar = rvar
        self.rattr = rattr
        self._compiled = None

    def __call__(self, row) -> bool:
        return _OPS[self.op](getattr(row[self.lvar], self.lattr),
                             getattr(row[self.rvar], self.rattr))

    def compiled(self) -> Callable:
        if self._compiled is None:
            def check(row, _op=_OPS[self.op], _lv=self.lvar, _la=self.lattr,
                      _rv=self.rvar, _ra=self.rattr, _getattr=getattr):
                return _op(_getattr(row[_lv], _la), _getattr(row[_rv], _ra))
            self._compiled = check
        return self._compiled

    def shape(self):
        return ("join", self.lvar, self.lattr, self.op, self.rvar,
                self.rattr)

    def __repr__(self):
        return "(V[%d].%s %s V[%d].%s)" % (self.lvar, self.lattr, self.op,
                                           self.rvar, self.rattr)


class VarAttrExpr:
    """``V[i].field`` — an attribute of one loop variable of a join."""

    __slots__ = ("var", "name")

    def __init__(self, var: int, name: str):
        self.var = var
        self.name = name

    def _compare(self, op: str, other: Any) -> Predicate:
        if isinstance(other, VarAttrExpr):
            if other.var == self.var:
                return VarCompare(self.var,
                                  AttrCompare(self.name, op, other.name))
            return JoinCompare(self.var, self.name, op, other.var,
                               other.name)
        if isinstance(other, AttrExpr):
            raise QueryError(
                "cannot mix A.%s with V[...] expressions; use V[i].%s"
                % (other.name, other.name))
        other = _dereference_constant(other)
        return VarCompare(self.var, Compare(self.name, op, other))

    def __eq__(self, other):  # type: ignore[override]
        return self._compare("==", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._compare("!=", other)

    def __lt__(self, other):
        return self._compare("<", other)

    def __le__(self, other):
        return self._compare("<=", other)

    def __gt__(self, other):
        return self._compare(">", other)

    def __ge__(self, other):
        return self._compare(">=", other)

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self):
        return "V[%d].%s" % (self.var, self.name)


class _VarRef:
    """``V[i]`` — one loop variable; attribute access builds expressions."""

    __slots__ = ("var",)

    def __init__(self, var: int):
        self.var = var

    def __getattr__(self, name: str) -> VarAttrExpr:
        if name.startswith("_"):
            raise AttributeError(name)
        return VarAttrExpr(self.var, name)


class _VarBuilder:
    """``V`` — loop-variable builder for multi-source suchthat clauses.

    ``V[0]`` is the first loop variable (first forall source), ``V[1]``
    the second, and so on::

        forall(emps, kids).suchthat(
            (V[0].name == V[1].parent) & (V[0].age > 30))
    """

    def __getitem__(self, var: int) -> _VarRef:
        if not isinstance(var, int) or var < 0:
            raise QueryError("V[...] takes a non-negative variable index")
        return _VarRef(var)


#: The loop-variable builder used in multi-source suchthat clauses.
V = _VarBuilder()


def max_var(pred: Predicate) -> int:
    """Largest loop-variable index referenced by *pred* (-1 if none)."""
    if isinstance(pred, VarCompare):
        return pred.var
    if isinstance(pred, JoinCompare):
        return max(pred.lvar, pred.rvar)
    if isinstance(pred, (And, Or)):
        return max((max_var(p) for p in pred.parts), default=-1)
    if isinstance(pred, Not):
        return max_var(pred.part)
    return -1


def is_multivar(pred) -> bool:
    """Whether *pred* is a predicate over a row tuple (uses V[...])."""
    return isinstance(pred, Predicate) and max_var(pred) >= 0


def _dereference_constant(value: Any) -> Any:
    """Live persistent objects compare as their ids (pointer equality)."""
    from ..core.objects import OdeObject
    if isinstance(value, OdeObject) and value.is_persistent:
        return value.oid
    return value


def _as_predicate(cond) -> Predicate:
    """Accept a Predicate or any callable; None means 'true'."""
    if cond is None:
        return TrueP()
    if isinstance(cond, Predicate):
        return cond
    if callable(cond):
        return Callable_(cond)
    raise QueryError("suchthat expects a predicate or callable, got %r"
                     % (cond,))


def as_predicate(cond) -> Predicate:
    """Public alias of the coercion used by forall()."""
    return _as_predicate(cond)
