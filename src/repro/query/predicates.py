"""Predicate expressions for ``suchthat`` clauses.

A ``suchthat`` clause can always be an opaque Python callable, but opaque
code forces a full cluster scan. Building the predicate from attribute
expressions instead keeps it *introspectable*, which is what lets the
optimizer (section 3.1: "iterators can be qualified with clauses ... which
can be used to advantage in query optimization") push equality and range
conditions into indexes::

    from repro.query import A, forall

    forall(items).suchthat(A.price < 3.0)
    forall(items).suchthat((A.supplier == att) & (A.qty >= 100))

``A.field`` creates an attribute expression; comparisons produce
:class:`Compare` nodes; ``&`` / ``|`` / ``~`` combine them. Every predicate
is also a callable ``pred(obj) -> bool``, so the same object drives both
the optimizer and the residual filter.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterator, List, Optional

from ..errors import QueryError

_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


class Predicate:
    """Base class: a boolean condition over one object."""

    def __call__(self, obj) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, _as_predicate(other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, _as_predicate(other))

    def __invert__(self) -> "Predicate":
        return Not(self)

    def conjuncts(self) -> List["Predicate"]:
        """Flatten top-level ANDs into a conjunct list."""
        return [self]


class Compare(Predicate):
    """``attr <op> constant`` — the optimizable leaf."""

    __slots__ = ("attr", "op", "value")

    def __init__(self, attr: str, op: str, value: Any):
        if op not in _OPS:
            raise QueryError("unknown comparison operator %r" % op)
        self.attr = attr
        self.op = op
        self.value = value

    def __call__(self, obj) -> bool:
        try:
            return _OPS[self.op](getattr(obj, self.attr), self.value)
        except TypeError:
            return False

    def __repr__(self):
        return "(%s %s %r)" % (self.attr, self.op, self.value)


class AttrCompare(Predicate):
    """``attr1 <op> attr2`` — join-style comparison on one object."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: str, op: str, right: str):
        self.left = left
        self.op = op
        self.right = right

    def __call__(self, obj) -> bool:
        return _OPS[self.op](getattr(obj, self.left),
                             getattr(obj, self.right))

    def __repr__(self):
        return "(%s %s %s)" % (self.left, self.op, self.right)


class And(Predicate):
    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)

    def __call__(self, obj) -> bool:
        return all(p(obj) for p in self.parts)

    def conjuncts(self) -> List[Predicate]:
        out: List[Predicate] = []
        for p in self.parts:
            out.extend(p.conjuncts())
        return out

    def __repr__(self):
        return "(" + " and ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)

    def __call__(self, obj) -> bool:
        return any(p(obj) for p in self.parts)

    def __repr__(self):
        return "(" + " or ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    __slots__ = ("part",)

    def __init__(self, part: Predicate):
        self.part = part

    def __call__(self, obj) -> bool:
        return not self.part(obj)

    def __repr__(self):
        return "(not %r)" % (self.part,)


class Callable_(Predicate):
    """Wrapper for an opaque Python callable (never optimized)."""

    __slots__ = ("func",)

    def __init__(self, func: Callable):
        self.func = func

    def __call__(self, obj) -> bool:
        return bool(self.func(obj))

    def __repr__(self):
        return "<opaque %s>" % getattr(self.func, "__name__", "lambda")


class TrueP(Predicate):
    """The always-true predicate (empty suchthat)."""

    def __call__(self, obj) -> bool:
        return True

    def conjuncts(self) -> List[Predicate]:
        return []

    def __repr__(self):
        return "true"


class AttrExpr:
    """``A.field`` — a reference to an attribute in a predicate."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _compare(self, op: str, other: Any) -> Predicate:
        if isinstance(other, AttrExpr):
            return AttrCompare(self.name, op, other.name)
        other = _dereference_constant(other)
        return Compare(self.name, op, other)

    def __eq__(self, other):  # type: ignore[override]
        return self._compare("==", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._compare("!=", other)

    def __lt__(self, other):
        return self._compare("<", other)

    def __le__(self, other):
        return self._compare("<=", other)

    def __gt__(self, other):
        return self._compare(">", other)

    def __ge__(self, other):
        return self._compare(">=", other)

    def is_in(self, collection) -> Predicate:
        """Membership test: ``A.name.is_in(["a", "b"])``."""
        frozen = list(collection)
        return Callable_(lambda obj, _c=frozen, _n=self.name:
                         getattr(obj, _n) in _c)

    def between(self, lo, hi) -> Predicate:
        """Inclusive range: ``A.age.between(18, 65)`` (both optimizable)."""
        return And(Compare(self.name, ">=", lo), Compare(self.name, "<=", hi))

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self):
        return "A.%s" % self.name


class _AttrBuilder:
    """``A`` — builds attribute expressions: ``A.age``, ``A.name``."""

    def __getattr__(self, name: str) -> AttrExpr:
        if name.startswith("_"):
            raise AttributeError(name)
        return AttrExpr(name)


#: The attribute-expression builder used in suchthat clauses.
A = _AttrBuilder()


def _dereference_constant(value: Any) -> Any:
    """Live persistent objects compare as their ids (pointer equality)."""
    from ..core.objects import OdeObject
    if isinstance(value, OdeObject) and value.is_persistent:
        return value.oid
    return value


def _as_predicate(cond) -> Predicate:
    """Accept a Predicate or any callable; None means 'true'."""
    if cond is None:
        return TrueP()
    if isinstance(cond, Predicate):
        return cond
    if callable(cond):
        return Callable_(cond)
    raise QueryError("suchthat expects a predicate or callable, got %r"
                     % (cond,))


def as_predicate(cond) -> Predicate:
    """Public alias of the coercion used by forall()."""
    return _as_predicate(cond)
